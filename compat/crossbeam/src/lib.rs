//! Offline shim for `crossbeam` (API subset).
//!
//! Only `crossbeam::thread::scope` is used by this workspace; it maps
//! directly onto `std::thread::scope` (stable since 1.63). One semantic
//! difference: a panicking child causes the *scope itself* to propagate the
//! panic instead of surfacing it as `Err`, so the `Result` returned here is
//! always `Ok`. Callers that `.expect(...)` the result behave identically —
//! the process still aborts the evaluation with the panic payload.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Handle for spawning threads inside a scope. Mirrors
    /// `crossbeam::thread::Scope`, but borrows the std scope.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again (as
        /// upstream does) so nested spawns remain possible.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(scope))
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins all of them before returning.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut items = vec![0u64; 64];
        super::thread::scope(|s| {
            for chunk in items.chunks_mut(16) {
                s.spawn(move |_| {
                    for it in chunk.iter_mut() {
                        *it += 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(items.iter().all(|&v| v == 1));
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|_| 7).unwrap();
        assert_eq!(v, 7);
    }
}
