//! Offline shim for `crossbeam` (API subset).
//!
//! Two surfaces are used by this workspace:
//!
//! * `crossbeam::thread::scope`, mapping directly onto `std::thread::scope`
//!   (stable since 1.63). One semantic difference: a panicking child causes
//!   the *scope itself* to propagate the panic instead of surfacing it as
//!   `Err`, so the `Result` returned here is always `Ok`. Callers that
//!   `.expect(...)` the result behave identically — the process still aborts
//!   the evaluation with the panic payload.
//! * `crossbeam::queue::{SegQueue, ArrayQueue}`, the concurrent queues the
//!   GP evaluation pool uses for worker-record hand-off. Upstream's are
//!   lock-free; these shims keep the exact API on a mutexed `VecDeque`,
//!   which is plenty for the pool's low-frequency producer/consumer traffic
//!   (one record per worker per run, not per candidate).

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Handle for spawning threads inside a scope. Mirrors
    /// `crossbeam::thread::Scope`, but borrows the std scope.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again (as
        /// upstream does) so nested spawns remain possible.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(scope))
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins all of them before returning.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

pub mod queue {
    //! Concurrent queues (API subset of `crossbeam-queue`).

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue. API mirror of `crossbeam::queue::SegQueue`.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // Poisoning only matters mid-panic; the data is still coherent.
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Append an element at the back.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Pop the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }
    }

    /// Bounded MPMC FIFO queue. API mirror of `crossbeam::queue::ArrayQueue`.
    #[derive(Debug)]
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        cap: usize,
    }

    impl<T> ArrayQueue<T> {
        /// A queue holding at most `cap` elements.
        ///
        /// # Panics
        /// Panics when `cap` is zero, matching upstream.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(cap)),
                cap,
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Append at the back; returns the value back when full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.lock();
            if q.len() >= self.cap {
                return Err(value);
            }
            q.push_back(value);
            Ok(())
        }

        /// Append at the back, evicting the front element when full (and
        /// returning it).
        pub fn force_push(&self, value: T) -> Option<T> {
            let mut q = self.lock();
            let evicted = if q.len() >= self.cap {
                q.pop_front()
            } else {
                None
            };
            q.push_back(value);
            evicted
        }

        /// Pop the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Maximum number of elements.
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// True when at capacity.
        pub fn is_full(&self) -> bool {
            self.lock().len() >= self.cap
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut items = vec![0u64; 64];
        super::thread::scope(|s| {
            for chunk in items.chunks_mut(16) {
                s.spawn(move |_| {
                    for it in chunk.iter_mut() {
                        *it += 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(items.iter().all(|&v| v == 1));
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|_| 7).unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn seg_queue_fifo_round_trip() {
        let q = super::queue::SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn seg_queue_concurrent_producers() {
        use std::sync::Arc;
        let q = Arc::new(super::queue::SegQueue::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    q.push(t * 100 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut drained = Vec::new();
        while let Some(v) = q.pop() {
            drained.push(v);
        }
        drained.sort_unstable();
        assert_eq!(drained, (0..400).collect::<Vec<u64>>());
    }

    #[test]
    fn array_queue_bounded_semantics() {
        let q = super::queue::ArrayQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.force_push(4), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert!(q.is_empty());
    }
}
