//! `any::<T>()`: whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range; avoids NaN/inf which
        // upstream generates only with low probability anyway.
        let mantissa = rng.rng().gen_range(-1.0f64..1.0);
        let exp = rng.rng().gen_range(-60i32..60);
        mantissa * (exp as f64).exp2()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::deterministic("arbitrary-tests");
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = TestRng::deterministic("arbitrary-f64");
        let s = any::<f64>();
        for _ in 0..1000 {
            assert!(s.generate(&mut rng).is_finite());
        }
    }
}
