//! Strategies: composable random-value generators.
//!
//! The shim keeps upstream proptest's `Strategy` combinator surface
//! (`prop_map`, `prop_recursive`, `prop_oneof!`, `Just`, ranges, tuples,
//! pattern strings) but generates values directly instead of building
//! shrinkable value trees — failing cases are reported unshrunk.

use crate::string::generate_from_pattern;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Filter generated values; regenerates until `f` accepts (bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }

    /// Build recursive structures: `f` receives a strategy for the smaller
    /// substructure and returns the strategy for one enclosing layer.
    /// `depth` bounds the recursion; `_max_nodes`/`_items_per_collection`
    /// are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _max_nodes: u32,
        _items_per_collection: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut layer = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so generated depths vary
            // instead of always bottoming out at `depth`.
            layer = Union::weighted(vec![(1, leaf.clone()), (3, f(layer).boxed())]).boxed();
        }
        layer
    }

    /// Type-erase (and reference-count) the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// Weighted choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<T: fmt::Debug> Union<T> {
    /// Uniform choice.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { options, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.rng().gen_range(0..self.total);
        for (w, s) in &self.options {
            if roll < *w {
                return s.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Pattern strings are string strategies (regex subset: atoms `.`,
/// `[class]`, literals; quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
