//! Pattern-string generation: the regex subset used as string strategies.
//!
//! Supported syntax: atoms `.` (printable char), `[...]` character classes
//! (ranges `a-z`, `\` escapes, trailing/leading literal `-`), literal
//! characters (with `\` escapes); quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`
//! (unbounded quantifiers are capped at 8 repetitions).

use crate::test_runner::TestRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Mostly-printable-ASCII alphabet for `.`, salted with a few multi-byte
/// code points so byte-indexed consumers get exercised on char boundaries.
const DOT_EXTRAS: [char; 4] = ['µ', 'λ', '→', 'é'];

fn dot_char(rng: &mut TestRng) -> char {
    if rng.rng().gen_bool(0.05) {
        *DOT_EXTRAS.choose(rng.rng()).expect("non-empty")
    } else {
        rng.rng().gen_range(0x20u32..0x7F) as u8 as char
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Dot,
    Literal(char),
    Class(Vec<(char, char)>),
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Dot => dot_char(rng),
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut k = rng.rng().gen_range(0..total);
                for (a, b) in ranges {
                    let span = *b as u32 - *a as u32 + 1;
                    if k < span {
                        return char::from_u32(*a as u32 + k).expect("valid class char");
                    }
                    k -= span;
                }
                unreachable!("k < total")
            }
        }
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => break,
            '\\' => {
                let esc = chars.next().expect("dangling escape in class");
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(esc);
            }
            '-' => {
                // A dash is a range operator only between two chars.
                match (pending.take(), chars.peek()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        let hi = if hi == '\\' {
                            chars.next();
                            chars.next().expect("dangling escape in class")
                        } else {
                            chars.next();
                            hi
                        };
                        assert!(lo <= hi, "inverted class range {lo}-{hi}");
                        ranges.push((lo, hi));
                    }
                    (prev, _) => {
                        if let Some(p) = prev {
                            ranges.push((p, p));
                        }
                        pending = Some('-');
                    }
                }
            }
            other => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(other);
            }
        }
    }
    if let Some(p) = pending {
        ranges.push((p, p));
    }
    assert!(!ranges.is_empty(), "empty character class");
    ranges
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Option<(usize, usize)> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier lower bound"),
                    hi.trim().parse().expect("bad quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            };
            Some((lo, hi))
        }
        Some('*') => {
            chars.next();
            Some((0, 8))
        }
        Some('+') => {
            chars.next();
            Some((1, 8))
        }
        Some('?') => {
            chars.next();
            Some((0, 1))
        }
        _ => None,
    }
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            other => Atom::Literal(other),
        };
        let (lo, hi) = parse_quantifier(&mut chars).unwrap_or((1, 1));
        let n = rng.rng().gen_range(lo..=hi);
        for _ in 0..n {
            out.push(atom.generate(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests")
    }

    #[test]
    fn counted_dot_pattern_bounds_length() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern(".{0,64}", &mut r);
            assert!(s.chars().count() <= 64);
        }
    }

    #[test]
    fn class_pattern_stays_in_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[ 0-9a-zA-Z_+*/().,\\[\\]-]{0,80}", &mut r);
            assert!(s
                .chars()
                .all(|c| c == ' ' || c.is_ascii_alphanumeric() || "_+*/().,[]-".contains(c)));
        }
    }

    #[test]
    fn exact_count_and_literals() {
        let mut r = rng();
        let s = generate_from_pattern("ab{3}c", &mut r);
        assert_eq!(s, "abbbc");
        let t = generate_from_pattern("[#$%&@^~]{1,8}", &mut r);
        assert!((1..=8).contains(&t.chars().count()));
        assert!(t.chars().all(|c| "#$%&@^~".contains(c)));
    }

    #[test]
    fn star_plus_question_quantifiers() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_from_pattern("a*b+c?", &mut r);
            assert!(s.contains('b'));
            assert!(s.chars().all(|c| "abc".contains(c)));
        }
    }
}
