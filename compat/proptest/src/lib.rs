//! Offline shim for `proptest` (API subset, no shrinking).
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the slice of proptest the workspace's property tests rely on:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_recursive`, `boxed`; [`strategy::Just`]; ranges, tuples and
//!   pattern strings as strategies; `prop_oneof!`;
//! * [`collection::vec`] and [`arbitrary::any`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Differences from upstream: case generation is seeded deterministically
//! from the test's fully-qualified name (stable across runs and machines,
//! no persistence files), and failing inputs are reported **unshrunk** —
//! the full generated value is printed instead of a minimised one.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a boolean property inside `proptest!`, failing the case (not
/// panicking directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case without failing it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Define property tests. Each `fn` body runs once per generated case; the
/// bindings before `in` destructure values drawn from the strategy after it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let qualified = concat!(module_path!(), "::", stringify!($name));
                $crate::test_runner::run_property(qualified, &config, |rng| {
                    let mut bindings = String::new();
                    $(
                        let value = $crate::strategy::Strategy::generate(&($strategy), rng);
                        bindings.push_str(&format!(
                            "  {} = {:?}\n", stringify!($pat), &value,
                        ));
                        let $pat = value;
                    )*
                    let outcome: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    (bindings, outcome)
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u8..10, 5usize..9), x in -1.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u8..3).prop_map(|x| x as u32),
            Just(99u32),
        ]) {
            prop_assert!(v < 3 || v == 99);
        }

        #[test]
        fn collections(v in prop::collection::vec(0u8..4, 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn assume_discards(n in any::<u64>()) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_bound_depth() {
        use crate::test_runner::TestRng;

        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(5, 64, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::deterministic("recursive");
        let mut max_seen = 0;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            max_seen = max_seen.max(depth(&t));
            assert!(depth(&t) <= 6);
        }
        assert!(max_seen > 2, "recursion should actually recurse");
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_bindings() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
