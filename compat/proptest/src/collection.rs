//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Sizes accepted by [`vec`]: a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.rng().gen_range(self.size.lo..self.size.hi_exclusive);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors whose elements come from `element` and whose length comes from
/// `size` (a fixed `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = TestRng::deterministic("collection-tests");
        let fixed = vec(0.0f64..1.0, 4);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
        let ranged = vec(0u8..10, 2..6);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
