//! The case-running machinery behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Per-test configuration. Only `cases` is honoured by the shim; the struct
/// keeps upstream's constructor so annotations port unchanged. The
/// `PROPTEST_CASES` environment variable overrides the case count globally.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count after environment override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert*` failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the case does not apply.
    Reject(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type the generated per-case closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG driving strategy generation.
///
/// Seeded from the fully-qualified test name, so every property runs the
/// same case sequence on every machine and every run — failures reproduce
/// without persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Derive a generator from a stable string label.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, then SplitMix in StdRng's seeding.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Access the underlying entropy source.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Run `cases` generated cases of one property. `generate_and_run` produces
/// the bound values' debug rendering and runs the body.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut generate_and_run: impl FnMut(&mut TestRng) -> (String, TestCaseResult),
) {
    let mut rng = TestRng::deterministic(name);
    let cases = config.effective_cases();
    let mut ran: u32 = 0;
    let mut rejected: u32 = 0;
    while ran < cases {
        let (bindings, outcome) = generate_and_run(&mut rng);
        match outcome {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < cases.saturating_mul(8).max(1024),
                    "property {name}: too many prop_assume! rejections \
                     ({rejected} rejects for {ran} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} failed at case {ran} (of {cases}):\n  {msg}\n\
                     minimal failing input (unshrunk):\n{bindings}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_rng_is_stable_per_label() {
        use rand::Rng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.rng().gen::<u64>(), b.rng().gen::<u64>());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.rng().gen::<u64>(), c.rng().gen::<u64>());
    }

    #[test]
    fn run_property_counts_only_accepted_cases() {
        let mut calls = 0;
        let mut accepted = 0;
        run_property("toy", &ProptestConfig::with_cases(10), |_rng| {
            calls += 1;
            if calls % 2 == 0 {
                (String::new(), Err(TestCaseError::Reject("even".into())))
            } else {
                accepted += 1;
                (String::new(), Ok(()))
            }
        });
        assert_eq!(accepted, 10);
    }

    #[test]
    #[should_panic(expected = "property failing failed")]
    fn run_property_panics_on_failure() {
        run_property("failing", &ProptestConfig::with_cases(5), |_rng| {
            (String::new(), Err(TestCaseError::Fail("nope".into())))
        });
    }
}
