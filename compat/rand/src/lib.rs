//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal, deterministic reimplementation of exactly the surface it uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64 (not the
//!   upstream ChaCha12, but a high-quality generator with the same
//!   determinism contract: one seed, one stream);
//! * [`seq::SliceRandom`] — `choose`, `choose_mut`, `shuffle`.
//!
//! Streams differ numerically from upstream `rand`; every consumer in this
//! workspace only relies on seeded determinism, not on specific draws.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform index in `[0, n)` via widening multiply (no modulo bias to
/// speak of at the ranges this workspace uses).
fn index<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics on empty ranges, matching upstream.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(index(rng, span as u64) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    lo.wrapping_add(index(rng, span) as $t)
                }
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Range types `gen_range` accepts. Implemented once over `SampleUniform`
/// element types (a single blanket impl per range shape, like upstream) so
/// that numeric-literal fallback at call sites such as
/// `gen_range(0.35..0.75)` resolves through ordinary unification.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from one `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// state-expanded from the seed with SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state; SplitMix64
            // cannot produce four consecutive zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (`SliceRandom` subset).

    use super::{index, Rng};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniformly random mutable element, `None` on an empty slice.
        fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[index(rng, self.len() as u64) as usize])
            }
        }

        fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let i = index(rng, self.len() as u64) as usize;
                Some(&mut self[i])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = index(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(5..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));

        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "a 20-element shuffle virtually never fixes all");
    }
}
