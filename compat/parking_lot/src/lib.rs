//! Offline shim for `parking_lot` (API subset).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly and a lock held across a panic is
//! recovered rather than poisoned, matching upstream semantics closely
//! enough for the fitness-cache sharding this workspace does.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// RAII read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
