//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of dataset
//! types but performs all (de)serialization through its own hand-rolled CSV
//! layer (`gmr-hydro::io`), never through serde itself. The derives are
//! therefore declarative markers, and this shim expands them to nothing —
//! keeping the annotations (and the upstream migration path) while removing
//! the network dependency.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
