//! Offline shim for `serde` (marker subset).
//!
//! See `compat/serde_derive` for the rationale: the workspace serializes
//! through its own flat-file layer and uses serde derives purely as
//! declarative markers. This crate supplies the two trait names and re-exports
//! the no-op derives so `use serde::{Deserialize, Serialize}` keeps working
//! unchanged. The `derive` feature is accepted (and ignored) for manifest
//! compatibility with the upstream crate.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
