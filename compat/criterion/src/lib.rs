//! Offline shim for `criterion` (API subset).
//!
//! Implements the measurement surface this workspace's benches use —
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `BenchmarkId`, `BatchSize`, `black_box`, and the two harness macros —
//! with a simple median-of-samples wall-clock measurement instead of
//! upstream's full statistical pipeline. Output is one line per benchmark:
//!
//! ```text
//! bench-name              median   12.345 µs   (30 samples)
//! ```
//!
//! Passing `--test` (what `cargo test` sends to harness-false targets)
//! runs every routine exactly once, so benches double as smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The shim treats all variants
/// identically (one setup per measured invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier with a parameter, e.g. `compile/depth-4`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Per-iteration measurement driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    smoke: bool,
    /// Median per-invocation time of the last routine, for reporting.
    last_median: Duration,
}

impl Bencher {
    fn measure<F: FnMut() -> Duration>(&mut self, mut once: F) {
        if self.smoke {
            self.last_median = once();
            return;
        }
        let mut times: Vec<Duration> = (0..self.samples.max(1)).map(|_| once()).collect();
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }

    /// Measure a routine directly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Measure a routine with untimed per-invocation setup.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            smoke,
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (upstream's builder method).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            smoke: self.smoke,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{label:<40} median {:>12}   ({} samples)",
            human(b.last_median),
            if self.smoke { 1 } else { self.sample_size }
        );
    }

    /// Benchmark a routine under a plain name.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run(name, f);
        self
    }

    /// Open a named group; member benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmark a routine parameterised by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = id.label.clone();
        self.run(&label, |b| f(b, input));
        self
    }
}

/// A set of related benchmarks sharing a label prefix (upstream's
/// `Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a routine as `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        self.criterion.run(&label, f);
        self
    }

    /// Benchmark a routine parameterised by an input, as `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run(&label, |b| f(b, input));
        self
    }

    /// End the group. The shim reports eagerly, so this is a no-op.
    pub fn finish(self) {}
}

/// Declare a benchmark group: either `criterion_group!(name, target...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            sample_size: 3,
            smoke: false,
        };
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion {
            sample_size: 2,
            smoke: false,
        };
        let mut setups = 0;
        c.bench_with_input(BenchmarkId::new("b", 1), &10, |b, &n| {
            b.iter_batched(
                || {
                    setups += 1;
                    n
                },
                |v| v * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 2);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(Duration::from_nanos(10)), "10 ns");
        assert_eq!(human(Duration::from_micros(2)), "2.000 µs");
        assert_eq!(human(Duration::from_millis(3)), "3.000 ms");
    }
}
