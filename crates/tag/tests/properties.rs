//! Property tests for the TAG layer: every random derivation the grammar can
//! generate must validate, derive to a completed tree, and lower to an
//! evaluable expression — this is the "TAG guarantees syntactic validity"
//! invariant the whole evolutionary search relies on.

use gmr_expr::EvalContext;
use gmr_tag::grammar::test_fixtures::tiny_grammar;
use gmr_tag::lower;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_trees_always_validate(seed in any::<u64>(), min in 1usize..5, extra in 0usize..20) {
        let (g, _) = tiny_grammar();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = g.random_tree(&mut rng, min, min + extra);
        prop_assert!(t.validate(&g).is_ok());
        prop_assert!(t.size() >= min);
        prop_assert!(t.size() <= min + extra);
    }

    #[test]
    fn random_trees_derive_completed(seed in any::<u64>()) {
        let (g, _) = tiny_grammar();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = g.random_tree(&mut rng, 1, 12);
        let d = t.derived(&g);
        prop_assert!(!d.has_open_nonterminals());
    }

    #[test]
    fn random_trees_lower_and_evaluate(seed in any::<u64>(), s0 in -100.0_f64..100.0, v0 in -100.0_f64..100.0) {
        let (g, _) = tiny_grammar();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = g.random_tree(&mut rng, 1, 12);
        let e = lower(&t.derived(&g)).expect("grammar-generated trees always lower");
        let ctx = EvalContext { vars: &[v0], state: &[s0] };
        prop_assert!(e.eval(&ctx).is_finite());
    }

    #[test]
    fn frontier_grows_with_chromosome_size(seed in any::<u64>()) {
        // Each β adjunction adds exactly one operator and one operand to the
        // tiny grammar's frontier: |frontier| = 3 + 2 * (size - 1).
        let (g, _) = tiny_grammar();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = g.random_tree(&mut rng, 1, 15);
        let d = t.derived(&g);
        prop_assert_eq!(d.frontier().len(), 3 + 2 * (t.size() - 1));
    }

    #[test]
    fn derivation_is_deterministic(seed in any::<u64>()) {
        let (g, _) = tiny_grammar();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = g.random_tree(&mut rng, 1, 10);
        prop_assert_eq!(t.derived(&g), t.derived(&g));
    }

    #[test]
    fn detach_attach_preserves_derivation(seed in any::<u64>()) {
        let (g, _) = tiny_grammar();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = g.random_tree(&mut rng, 2, 10);
        let before = t.derived(&g);
        // Detach the first child of the root and re-attach at the same spot.
        let (addr, sub) = t.detach(&[0]);
        t.attach(&[], addr, sub);
        prop_assert_eq!(t.derived(&g), before);
    }

    #[test]
    fn lowered_size_tracks_frontier(seed in any::<u64>()) {
        let (g, _) = tiny_grammar();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = g.random_tree(&mut rng, 1, 10);
        let d = t.derived(&g);
        let e = lower(&d).unwrap();
        // Every frontier token becomes exactly one Expr node.
        prop_assert_eq!(e.size(), d.frontier().len());
    }
}
