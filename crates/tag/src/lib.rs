//! Tree-adjoining grammar (TAG) formalism for genetic model revision.
//!
//! This crate implements the representation layer of the paper's §III-A:
//! dynamic processes and their potential revisions are expressed as a TAG —
//! a quintuple (T, N, I, A, S) of terminals, non-terminals, initial
//! (α) trees, auxiliary (β) trees and a start symbol — and an *individual*
//! of the evolutionary search is a **derivation tree**: a record of which
//! α-tree the derivation started from, which β-trees were adjoined at which
//! addresses, and which lexemes were substituted into the open frontier
//! nodes.
//!
//! The crate provides:
//!
//! * [`tree`] — elementary (α/β) trees as index-based arenas, with the
//!   structural validation rules of the formalism (exactly one foot node per
//!   auxiliary tree, foot label = root label, interior nodes non-terminal…);
//! * [`derivation`] — derivation trees with per-instance parameter values
//!   (the paper's restricted-substitution formulation, where substituted
//!   α-trees are single lexemes living *inside* the derivation node);
//! * [`mod@derive`] — the adjoining and substitution machinery that turns a
//!   derivation tree into a **derived tree**;
//! * [`mod@lower`] — lowering of a completed derived tree to a
//!   [`gmr_expr::Expr`] for fitness evaluation;
//! * [`grammar`] — grammars bundling elementary trees with lexeme pools and
//!   the *connector/extender* symbol discipline of §III-B3, plus random
//!   individual generation for population initialisation;
//! * [`analysis`] — static structural analysis (reachability of elementary
//!   trees, dead lexeme pools, inert adjunction sites) consumed by the
//!   `gmr-lint` diagnostics layer.
//!
//! The genetic operators that act on derivation trees (crossover, subtree
//! mutation, insertion/deletion) live one layer up in `gmr-gp`; this crate
//! deliberately contains only the formalism.

pub mod analysis;
pub mod derivation;
pub mod derive;
pub mod grammar;
pub mod lower;
pub mod tree;

pub use analysis::GrammarNote;
pub use derivation::{DerivNode, DerivTree};
pub use derive::DerivedTree;
pub use grammar::{Grammar, GrammarBuilder, GrammarError, TreeId};
pub use lower::{lower, LowerError};
pub use tree::{ElemTree, NodeIdx, NodeKind, SymId, Token, TreeError, TreeKind};
