//! Elementary trees: the α- and β-trees of the TAG quintuple.
//!
//! An elementary tree is stored as an index-based arena (`Vec<ENode>` with
//! node 0 as root). Interior nodes carry non-terminal symbols; frontier
//! nodes are either **anchors** (terminal tokens: operators, variables,
//! constants), **substitution slots** (non-terminals marked ↓ in the paper's
//! figures, filled by lexemes at derivation time), or — in auxiliary trees —
//! the unique **foot node** (marked ∗), whose symbol must equal the root's.

use gmr_expr::{BinOp, UnOp};
use std::fmt;

/// Interned non-terminal symbol. The symbol table lives in the
/// [`crate::grammar::Grammar`]; elementary trees only store ids so they stay
/// `Copy`-cheap to clone during derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u16);

/// Index of a node within an elementary tree's arena. Node 0 is the root.
/// This doubles as the *adjoining address* in derivation trees (the paper's
/// "address of the node at which the adjunction took place").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub u32);

impl fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A terminal token — the payload of anchor nodes and lexemes. Tokens are
/// the bridge between the TAG layer and the expression layer: lowering maps
/// them onto [`gmr_expr::Expr`] leaves and operators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Token {
    /// Numeric literal.
    Num(f64),
    /// Mutable constant parameter (Gaussian-mutation target). `kind` indexes
    /// the domain parameter table; `value` here is the *default* — each
    /// derivation-node instance carries its own evolved copy.
    Param { kind: u16, value: f64 },
    /// Temporal variable index.
    Var(u8),
    /// State variable index.
    State(u8),
    /// Binary operator.
    Bin(BinOp),
    /// Unary operator.
    Un(UnOp),
}

impl Token {
    /// True for tokens that occupy an operand position when lowered.
    pub fn is_operand(&self) -> bool {
        matches!(
            self,
            Token::Num(_) | Token::Param { .. } | Token::Var(_) | Token::State(_)
        )
    }
}

/// The role of a node within an elementary tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// Interior node labelled with a non-terminal; candidate adjoining site.
    Interior(SymId),
    /// Frontier terminal with its token payload.
    Anchor(Token),
    /// Frontier non-terminal marked ↓: filled by a lexeme (restricted
    /// substitution — the substituted α-tree is a single token).
    Subst(SymId),
    /// The foot node of an auxiliary tree (marked ∗). The excised subtree is
    /// re-attached here during adjoining.
    Foot(SymId),
}

/// Whether an elementary tree is initial (α) or auxiliary (β).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// α-tree: roots a derivation (or, in unrestricted TAG, substitutes).
    Initial,
    /// β-tree: adjoins into a matching interior node.
    Auxiliary,
}

/// One node of an elementary tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ENode {
    /// Role and label.
    pub kind: NodeKind,
    /// Child indices, in left-to-right order. Empty for frontier nodes.
    pub children: Vec<NodeIdx>,
}

/// Structural problems detected by [`ElemTree::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The arena is empty.
    Empty,
    /// A child index points outside the arena or to itself.
    BadChildIndex { node: u32, child: u32 },
    /// A node is referenced as a child more than once (not a tree).
    NotATree { node: u32 },
    /// A frontier kind (anchor/subst/foot) has children.
    FrontierWithChildren { node: u32 },
    /// An interior node has no children.
    InteriorWithoutChildren { node: u32 },
    /// An initial tree contains a foot node.
    FootInInitialTree { node: u32 },
    /// An auxiliary tree has no foot node.
    MissingFoot,
    /// An auxiliary tree has more than one foot node.
    MultipleFeet { first: u32, second: u32 },
    /// Foot symbol differs from the root symbol.
    FootSymbolMismatch,
    /// The root is not an interior node.
    RootNotInterior,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "elementary tree has no nodes"),
            TreeError::BadChildIndex { node, child } => {
                write!(f, "node {node} references invalid child {child}")
            }
            TreeError::NotATree { node } => write!(f, "node {node} has multiple parents"),
            TreeError::FrontierWithChildren { node } => {
                write!(f, "frontier node {node} has children")
            }
            TreeError::InteriorWithoutChildren { node } => {
                write!(f, "interior node {node} has no children")
            }
            TreeError::FootInInitialTree { node } => {
                write!(f, "initial tree contains foot node {node}")
            }
            TreeError::MissingFoot => write!(f, "auxiliary tree has no foot node"),
            TreeError::MultipleFeet { first, second } => {
                write!(f, "auxiliary tree has multiple feet ({first}, {second})")
            }
            TreeError::FootSymbolMismatch => {
                write!(f, "foot node symbol differs from root symbol")
            }
            TreeError::RootNotInterior => write!(f, "root must be an interior node"),
        }
    }
}

impl std::error::Error for TreeError {}

/// An elementary tree (α or β) of the grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemTree {
    /// Human-readable name for display and debugging (e.g. `"β1-connector"`).
    pub name: String,
    /// α or β.
    pub kind: TreeKind,
    /// Node arena; index 0 is the root.
    pub nodes: Vec<ENode>,
}

impl ElemTree {
    /// Root node index.
    pub const ROOT: NodeIdx = NodeIdx(0);

    /// Create and validate.
    pub fn new(
        name: impl Into<String>,
        kind: TreeKind,
        nodes: Vec<ENode>,
    ) -> Result<Self, TreeError> {
        let t = ElemTree {
            name: name.into(),
            kind,
            nodes,
        };
        t.validate()?;
        Ok(t)
    }

    /// The root symbol.
    pub fn root_symbol(&self) -> SymId {
        match self.nodes[0].kind {
            NodeKind::Interior(s) => s,
            // validate() guarantees the root is interior.
            _ => unreachable!("validated tree has interior root"),
        }
    }

    /// Node accessor.
    pub fn node(&self, idx: NodeIdx) -> &ENode {
        &self.nodes[idx.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the arena is empty (never true for a validated tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the foot node, if this is an auxiliary tree.
    pub fn foot(&self) -> Option<NodeIdx> {
        self.nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Foot(_)))
            .map(|i| NodeIdx(i as u32))
    }

    /// Indices of substitution slots, in arena order. Lexeme vectors in
    /// derivation nodes align with this ordering.
    pub fn subst_slots(&self) -> Vec<NodeIdx> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Subst(_)))
            .map(|(i, _)| NodeIdx(i as u32))
            .collect()
    }

    /// Symbols of the substitution slots, aligned with [`Self::subst_slots`].
    pub fn subst_symbols(&self) -> Vec<SymId> {
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Subst(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// Indices of `Param` anchors, in arena order. Per-instance evolved
    /// values in derivation nodes align with this ordering.
    pub fn param_anchors(&self) -> Vec<NodeIdx> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Anchor(Token::Param { .. })))
            .map(|(i, _)| NodeIdx(i as u32))
            .collect()
    }

    /// Default values of the `Param` anchors, aligned with
    /// [`Self::param_anchors`].
    pub fn param_defaults(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Anchor(Token::Param { value, .. }) => Some(value),
                _ => None,
            })
            .collect()
    }

    /// Interior node indices whose symbol is `sym` — the candidate adjoining
    /// addresses for a β-tree rooted at `sym`.
    pub fn adjoinable_at(&self, sym: SymId) -> Vec<NodeIdx> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Interior(s) if s == sym))
            .map(|(i, _)| NodeIdx(i as u32))
            .collect()
    }

    /// All interior symbols present, deduplicated.
    pub fn interior_symbols(&self) -> Vec<SymId> {
        let mut syms: Vec<SymId> = self
            .nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Interior(s) => Some(s),
                _ => None,
            })
            .collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    /// Full structural validation per the TAG formalism.
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.nodes.is_empty() {
            return Err(TreeError::Empty);
        }
        if !matches!(self.nodes[0].kind, NodeKind::Interior(_)) {
            return Err(TreeError::RootNotInterior);
        }
        let n = self.nodes.len() as u32;
        let mut seen_parent = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let is_frontier = !matches!(node.kind, NodeKind::Interior(_));
            if is_frontier && !node.children.is_empty() {
                return Err(TreeError::FrontierWithChildren { node: i as u32 });
            }
            if !is_frontier && node.children.is_empty() {
                return Err(TreeError::InteriorWithoutChildren { node: i as u32 });
            }
            for &c in &node.children {
                if c.0 >= n || c.0 == i as u32 || c.0 == 0 {
                    return Err(TreeError::BadChildIndex {
                        node: i as u32,
                        child: c.0,
                    });
                }
                if seen_parent[c.0 as usize] {
                    return Err(TreeError::NotATree { node: c.0 });
                }
                seen_parent[c.0 as usize] = true;
            }
        }
        // Foot discipline.
        let feet: Vec<u32> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| matches!(node.kind, NodeKind::Foot(_)))
            .map(|(i, _)| i as u32)
            .collect();
        match self.kind {
            TreeKind::Initial => {
                if let Some(&f) = feet.first() {
                    return Err(TreeError::FootInInitialTree { node: f });
                }
            }
            TreeKind::Auxiliary => match feet.as_slice() {
                [] => return Err(TreeError::MissingFoot),
                [f] => {
                    let foot_sym = match self.nodes[*f as usize].kind {
                        NodeKind::Foot(s) => s,
                        _ => unreachable!(),
                    };
                    let root_sym = match self.nodes[0].kind {
                        NodeKind::Interior(s) => s,
                        _ => unreachable!(),
                    };
                    if foot_sym != root_sym {
                        return Err(TreeError::FootSymbolMismatch);
                    }
                }
                [a, b, ..] => {
                    return Err(TreeError::MultipleFeet {
                        first: *a,
                        second: *b,
                    })
                }
            },
        }
        Ok(())
    }
}

/// Fluent builder for elementary trees, used heavily by the domain grammar.
///
/// ```
/// use gmr_tag::tree::{ElemTreeBuilder, SymId, Token, TreeKind};
/// use gmr_expr::BinOp;
///
/// let exp = SymId(0);
/// // Exp -> Exp* "+" Var(0)    (a β-tree appending `+ V0`)
/// let mut b = ElemTreeBuilder::new("beta", TreeKind::Auxiliary, exp);
/// let root = b.root();
/// b.foot(root, exp);
/// b.anchor(root, Token::Bin(BinOp::Add));
/// b.anchor(root, Token::Var(0));
/// let tree = b.build().unwrap();
/// assert_eq!(tree.len(), 4);
/// ```
#[derive(Debug)]
pub struct ElemTreeBuilder {
    name: String,
    kind: TreeKind,
    nodes: Vec<ENode>,
}

impl ElemTreeBuilder {
    /// Start a tree whose root is an interior node labelled `root_sym`.
    pub fn new(name: impl Into<String>, kind: TreeKind, root_sym: SymId) -> Self {
        ElemTreeBuilder {
            name: name.into(),
            kind,
            nodes: vec![ENode {
                kind: NodeKind::Interior(root_sym),
                children: Vec::new(),
            }],
        }
    }

    /// The root index.
    pub fn root(&self) -> NodeIdx {
        NodeIdx(0)
    }

    fn push(&mut self, parent: NodeIdx, kind: NodeKind) -> NodeIdx {
        let idx = NodeIdx(self.nodes.len() as u32);
        self.nodes.push(ENode {
            kind,
            children: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(idx);
        idx
    }

    /// Add an interior child.
    pub fn interior(&mut self, parent: NodeIdx, sym: SymId) -> NodeIdx {
        self.push(parent, NodeKind::Interior(sym))
    }

    /// Add an anchor (terminal) child.
    pub fn anchor(&mut self, parent: NodeIdx, token: Token) -> NodeIdx {
        self.push(parent, NodeKind::Anchor(token))
    }

    /// Add a substitution slot child.
    pub fn subst(&mut self, parent: NodeIdx, sym: SymId) -> NodeIdx {
        self.push(parent, NodeKind::Subst(sym))
    }

    /// Add the foot node child.
    pub fn foot(&mut self, parent: NodeIdx, sym: SymId) -> NodeIdx {
        self.push(parent, NodeKind::Foot(sym))
    }

    /// Finish and validate.
    pub fn build(self) -> Result<ElemTree, TreeError> {
        ElemTree::new(self.name, self.kind, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXP: SymId = SymId(0);
    const OP: SymId = SymId(1);

    fn alpha() -> ElemTree {
        // Exp -> State(0) Mul Param
        let mut b = ElemTreeBuilder::new("alpha", TreeKind::Initial, EXP);
        let r = b.root();
        b.anchor(r, Token::State(0));
        b.anchor(r, Token::Bin(BinOp::Mul));
        b.anchor(
            r,
            Token::Param {
                kind: 0,
                value: 1.89,
            },
        );
        b.build().unwrap()
    }

    fn beta() -> ElemTree {
        // Exp -> Exp* Minus Subst(R)
        let mut b = ElemTreeBuilder::new("beta", TreeKind::Auxiliary, EXP);
        let r = b.root();
        b.foot(r, EXP);
        b.anchor(r, Token::Bin(BinOp::Sub));
        b.subst(r, OP);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_trees() {
        assert_eq!(alpha().len(), 4);
        assert_eq!(beta().len(), 4);
    }

    #[test]
    fn root_symbol() {
        assert_eq!(alpha().root_symbol(), EXP);
    }

    #[test]
    fn foot_discovery() {
        assert_eq!(alpha().foot(), None);
        assert_eq!(beta().foot(), Some(NodeIdx(1)));
    }

    #[test]
    fn subst_slots_in_order() {
        let t = beta();
        assert_eq!(t.subst_slots(), vec![NodeIdx(3)]);
        assert_eq!(t.subst_symbols(), vec![OP]);
    }

    #[test]
    fn param_anchors() {
        let t = alpha();
        assert_eq!(t.param_anchors(), vec![NodeIdx(3)]);
        assert_eq!(t.param_defaults(), vec![1.89]);
    }

    #[test]
    fn adjoinable_addresses() {
        let t = alpha();
        assert_eq!(t.adjoinable_at(EXP), vec![NodeIdx(0)]);
        assert_eq!(t.adjoinable_at(OP), Vec::<NodeIdx>::new());
    }

    #[test]
    fn rejects_missing_foot() {
        let mut b = ElemTreeBuilder::new("bad", TreeKind::Auxiliary, EXP);
        let r = b.root();
        b.anchor(r, Token::Num(1.0));
        assert_eq!(b.build().unwrap_err(), TreeError::MissingFoot);
    }

    #[test]
    fn rejects_foot_in_initial() {
        let mut b = ElemTreeBuilder::new("bad", TreeKind::Initial, EXP);
        let r = b.root();
        b.foot(r, EXP);
        assert!(matches!(
            b.build().unwrap_err(),
            TreeError::FootInInitialTree { .. }
        ));
    }

    #[test]
    fn rejects_foot_symbol_mismatch() {
        let mut b = ElemTreeBuilder::new("bad", TreeKind::Auxiliary, EXP);
        let r = b.root();
        b.foot(r, OP);
        assert_eq!(b.build().unwrap_err(), TreeError::FootSymbolMismatch);
    }

    #[test]
    fn rejects_multiple_feet() {
        let mut b = ElemTreeBuilder::new("bad", TreeKind::Auxiliary, EXP);
        let r = b.root();
        b.foot(r, EXP);
        b.foot(r, EXP);
        assert!(matches!(
            b.build().unwrap_err(),
            TreeError::MultipleFeet { .. }
        ));
    }

    #[test]
    fn rejects_interior_leaf() {
        let mut b = ElemTreeBuilder::new("bad", TreeKind::Initial, EXP);
        let r = b.root();
        b.interior(r, EXP);
        assert!(matches!(
            b.build().unwrap_err(),
            TreeError::InteriorWithoutChildren { .. }
        ));
    }

    #[test]
    fn rejects_hand_rolled_cycles() {
        // Bypass the builder to construct a malformed arena.
        let nodes = vec![
            ENode {
                kind: NodeKind::Interior(EXP),
                children: vec![NodeIdx(1)],
            },
            ENode {
                kind: NodeKind::Interior(EXP),
                children: vec![NodeIdx(1)],
            },
        ];
        let err = ElemTree::new("cyclic", TreeKind::Initial, nodes).unwrap_err();
        assert!(matches!(
            err,
            TreeError::BadChildIndex { .. } | TreeError::NotATree { .. }
        ));
    }

    #[test]
    fn token_operand_classification() {
        assert!(Token::Num(1.0).is_operand());
        assert!(Token::Var(0).is_operand());
        assert!(Token::State(1).is_operand());
        assert!(Token::Param {
            kind: 0,
            value: 0.0
        }
        .is_operand());
        assert!(!Token::Bin(BinOp::Add).is_operand());
        assert!(!Token::Un(gmr_expr::UnOp::Log).is_operand());
    }
}
