//! Static structural analysis of grammars.
//!
//! A [`Grammar`] can be well-formed (every check in `GrammarBuilder::build`
//! passes) and still contain material that no derivation will ever use: a
//! β-tree rooted at a symbol that never labels an interior node, a lexeme
//! pool for a symbol no reachable tree substitutes at, an operator token
//! sitting in an operand pool. None of these make derivation *wrong* — they
//! make the encoded prior knowledge silently inert, which for a
//! knowledge-guided system is a specification bug worth surfacing.
//!
//! [`Grammar::analyze`] computes the reachable-tree fixpoint and reports
//! everything dead or inert as [`GrammarNote`]s. The notes are purely
//! informational here; `gmr-lint` converts them into levelled diagnostics
//! and adds the domain-specific (connector/extender, dimensional) rules on
//! top.

use crate::grammar::{Grammar, TreeId};
use crate::tree::{NodeKind, SymId, Token, TreeKind};
use std::collections::BTreeSet;

/// One finding of the structural analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum GrammarNote {
    /// The tree can never participate in a derivation: an α-tree not rooted
    /// at the start symbol (restricted TAG never substitutes α-trees), or a
    /// β-tree whose root symbol never labels an interior node of any
    /// reachable tree.
    UnreachableTree {
        /// The dead tree.
        tree: TreeId,
        /// Its name, for display.
        name: String,
    },
    /// A non-empty lexeme pool whose symbol is never used as a substitution
    /// slot by any reachable tree — the encoded vocabulary is inert.
    DeadPool {
        /// The pool's symbol.
        sym: SymId,
        /// Symbol name.
        name: String,
        /// Number of inert tokens.
        tokens: usize,
    },
    /// A symbol labels adjunction sites (interior nodes) in reachable trees
    /// but no β-tree roots at it, so adjunction there can never fire. For
    /// grammars using the connector/extender discipline this is often
    /// deliberate (plain `Exp` nodes are untouchable by construction), hence
    /// a note rather than an error.
    InertAdjunctionSite {
        /// The site symbol.
        sym: SymId,
        /// Symbol name.
        name: String,
        /// How many interior nodes across reachable trees carry it.
        sites: usize,
    },
    /// A pool contains an operator token. Restricted substitution grounds a
    /// slot with a single lexeme in operand position, so an operator lexeme
    /// can never ground — lowering any derivation that drew it would fail.
    NonOperandLexeme {
        /// The pool's symbol.
        sym: SymId,
        /// Symbol name.
        name: String,
        /// Display form of the offending token.
        token: String,
    },
}

fn token_label(tok: &Token) -> String {
    match tok {
        Token::Num(v) => format!("Num({v})"),
        Token::Param { kind, .. } => format!("Param(kind {kind})"),
        Token::Var(i) => format!("Var({i})"),
        Token::State(i) => format!("State({i})"),
        Token::Bin(op) => format!("Bin({})", op.symbol()),
        Token::Un(op) => format!("Un({})", op.symbol()),
    }
}

impl Grammar {
    /// Tree ids reachable from the start α-trees under adjunction: the least
    /// fixpoint of "a β-tree is reachable iff its root symbol labels an
    /// interior node of some reachable tree".
    pub fn reachable_trees(&self) -> BTreeSet<TreeId> {
        let mut reachable: BTreeSet<TreeId> = self.start_alphas().iter().copied().collect();
        let mut interior: BTreeSet<SymId> = BTreeSet::new();
        for id in &reachable {
            interior.extend(self.tree(*id).interior_symbols());
        }
        loop {
            let mut grew = false;
            for (id, tree) in self.trees() {
                if reachable.contains(&id) || tree.kind != TreeKind::Auxiliary {
                    continue;
                }
                if interior.contains(&tree.root_symbol()) {
                    reachable.insert(id);
                    interior.extend(tree.interior_symbols());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        reachable
    }

    /// Run the full structural analysis. Deterministic: notes are ordered by
    /// rule, then by tree/symbol id.
    pub fn analyze(&self) -> Vec<GrammarNote> {
        let mut notes = Vec::new();
        let reachable = self.reachable_trees();

        // Unreachable trees.
        for (id, tree) in self.trees() {
            if !reachable.contains(&id) {
                notes.push(GrammarNote::UnreachableTree {
                    tree: id,
                    name: tree.name.clone(),
                });
            }
        }

        // Substitution slots and adjunction sites of the reachable forest.
        let mut live_slots: BTreeSet<SymId> = BTreeSet::new();
        let mut site_counts = vec![0usize; self.symbol_count()];
        for id in &reachable {
            for node in &self.tree(*id).nodes {
                match node.kind {
                    NodeKind::Subst(s) => {
                        live_slots.insert(s);
                    }
                    NodeKind::Interior(s) => site_counts[s.0 as usize] += 1,
                    _ => {}
                }
            }
        }

        // Dead pools.
        for i in 0..self.symbol_count() {
            let sym = SymId(i as u16);
            if !self.pool(sym).is_empty() && !live_slots.contains(&sym) {
                notes.push(GrammarNote::DeadPool {
                    sym,
                    name: self.symbol_name(sym).to_string(),
                    tokens: self.pool(sym).len(),
                });
            }
        }

        // Adjunction sites that can never fire.
        for (i, &sites) in site_counts.iter().enumerate() {
            let sym = SymId(i as u16);
            if sites > 0 && self.betas_for(sym).is_empty() {
                notes.push(GrammarNote::InertAdjunctionSite {
                    sym,
                    name: self.symbol_name(sym).to_string(),
                    sites,
                });
            }
        }

        // Operator tokens in operand pools.
        for i in 0..self.symbol_count() {
            let sym = SymId(i as u16);
            for tok in self.pool(sym) {
                if !tok.is_operand() {
                    notes.push(GrammarNote::NonOperandLexeme {
                        sym,
                        name: self.symbol_name(sym).to_string(),
                        token: token_label(tok),
                    });
                }
            }
        }

        notes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::test_fixtures::tiny_grammar;
    use crate::grammar::GrammarBuilder;
    use crate::tree::{ElemTreeBuilder, Token, TreeKind};
    use gmr_expr::BinOp;

    #[test]
    fn tiny_grammar_is_fully_live() {
        let (g, _) = tiny_grammar();
        let notes = g.analyze();
        assert!(
            notes.is_empty(),
            "tiny grammar should be clean, got {notes:?}"
        );
    }

    #[test]
    fn unreachable_beta_is_reported() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let ghost = gb.sym("Ghost");
        gb.start(s);
        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        a.anchor(r, Token::Num(1.0));
        gb.tree(a.build().unwrap());
        // β rooted at a symbol no interior node carries.
        let mut b = ElemTreeBuilder::new("ghost-beta", TreeKind::Auxiliary, ghost);
        let r = b.root();
        b.foot(r, ghost);
        b.anchor(r, Token::Bin(BinOp::Add));
        b.anchor(r, Token::Num(2.0));
        gb.tree(b.build().unwrap());
        let g = gb.build().unwrap();
        let notes = g.analyze();
        assert!(notes.iter().any(
            |n| matches!(n, GrammarNote::UnreachableTree { name, .. } if name == "ghost-beta")
        ));
    }

    #[test]
    fn unreachable_alpha_is_reported() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let other = gb.sym("Other");
        gb.start(s);
        for (name, sym) in [("start-alpha", s), ("stray-alpha", other)] {
            let mut a = ElemTreeBuilder::new(name, TreeKind::Initial, sym);
            let r = a.root();
            a.anchor(r, Token::Num(1.0));
            gb.tree(a.build().unwrap());
        }
        let g = gb.build().unwrap();
        let notes = g.analyze();
        assert!(notes.iter().any(
            |n| matches!(n, GrammarNote::UnreachableTree { name, .. } if name == "stray-alpha")
        ));
    }

    #[test]
    fn dead_pool_is_reported() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let unused = gb.sym("Unused");
        gb.start(s);
        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        a.anchor(r, Token::Num(1.0));
        gb.tree(a.build().unwrap());
        gb.pool(unused, [Token::Var(0)]);
        let g = gb.build().unwrap();
        let notes = g.analyze();
        assert!(notes.iter().any(
            |n| matches!(n, GrammarNote::DeadPool { name, tokens: 1, .. } if name == "Unused")
        ));
    }

    #[test]
    fn inert_site_is_reported_per_symbol() {
        // The α has an interior "Inner" node, but no β roots at Inner.
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let inner = gb.sym("Inner");
        gb.start(s);
        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        let n = a.interior(r, inner);
        a.anchor(n, Token::Num(1.0));
        gb.tree(a.build().unwrap());
        let g = gb.build().unwrap();
        let notes = g.analyze();
        let inert: Vec<_> = notes
            .iter()
            .filter(|n| matches!(n, GrammarNote::InertAdjunctionSite { .. }))
            .collect();
        // Both S (the root site) and Inner have no βs.
        assert_eq!(inert.len(), 2);
    }

    #[test]
    fn operator_lexeme_is_reported() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let v = gb.sym("V");
        gb.start(s);
        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        a.subst(r, v);
        gb.tree(a.build().unwrap());
        gb.pool(v, [Token::Var(0), Token::Bin(BinOp::Mul)]);
        let g = gb.build().unwrap();
        let notes = g.analyze();
        assert!(notes.iter().any(
            |n| matches!(n, GrammarNote::NonOperandLexeme { token, .. } if token == "Bin(*)")
        ));
    }

    #[test]
    fn reachability_fixpoint_chains_through_betas() {
        // β1 roots at S and introduces interior "Mid"; β2 roots at Mid.
        // β2 is only reachable *because* β1 is.
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let mid = gb.sym("Mid");
        gb.start(s);
        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        a.anchor(r, Token::Num(1.0));
        gb.tree(a.build().unwrap());
        let mut b1 = ElemTreeBuilder::new("b1", TreeKind::Auxiliary, s);
        let r = b1.root();
        b1.foot(r, s);
        b1.anchor(r, Token::Bin(BinOp::Add));
        let m = b1.interior(r, mid);
        b1.anchor(m, Token::Num(2.0));
        let b1_id = gb.tree(b1.build().unwrap());
        let mut b2 = ElemTreeBuilder::new("b2", TreeKind::Auxiliary, mid);
        let r = b2.root();
        b2.foot(r, mid);
        b2.anchor(r, Token::Bin(BinOp::Mul));
        b2.anchor(r, Token::Num(3.0));
        let b2_id = gb.tree(b2.build().unwrap());
        let g = gb.build().unwrap();
        let reachable = g.reachable_trees();
        assert!(reachable.contains(&b1_id));
        assert!(reachable.contains(&b2_id));
        assert!(g.analyze().is_empty());
    }
}
