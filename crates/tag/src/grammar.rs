//! Grammars: the TAG quintuple plus the lexeme pools and parameter ranges
//! that drive knowledge-guided search.
//!
//! A [`Grammar`] bundles the interned non-terminal alphabet, the start
//! symbol, the elementary trees, and — per the paper's restricted
//! substitution — a *pool* of candidate lexemes for every substitution
//! symbol. The domain layer expresses its prior knowledge here: which
//! variables may enter which subprocess (Table II) becomes "which tokens are
//! in which pool" and "which β-trees exist for which `Ext` symbol".
//!
//! The grammar also implements TAG3P population initialisation
//! ([`Grammar::random_tree`]): choose a size, seed with an α-tree, then
//! repeatedly adjoin random compatible β-trees at random open addresses.

use crate::derivation::{Adjunction, DerivNode, DerivTree};
use crate::tree::{ElemTree, NodeKind, SymId, Token, TreeError, TreeKind};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;

/// Identifier of an elementary tree within a grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeId(pub u32);

/// Errors raised while assembling a [`Grammar`].
#[derive(Debug, Clone, PartialEq)]
pub enum GrammarError {
    /// `build` called without a start symbol.
    NoStart,
    /// No initial tree roots at the start symbol.
    NoStartAlpha,
    /// An elementary tree references a symbol id that was never interned.
    UnknownSymbol { tree: String, sym: u16 },
    /// A substitution slot's symbol has an empty lexeme pool.
    EmptyPool { sym: u16 },
    /// Structural validation of an elementary tree failed.
    Tree(TreeError),
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::NoStart => write!(f, "grammar has no start symbol"),
            GrammarError::NoStartAlpha => write!(f, "no initial tree for the start symbol"),
            GrammarError::UnknownSymbol { tree, sym } => {
                write!(f, "tree '{tree}' references unknown symbol #{sym}")
            }
            GrammarError::EmptyPool { sym } => {
                write!(f, "substitution symbol #{sym} has an empty lexeme pool")
            }
            GrammarError::Tree(e) => write!(f, "invalid elementary tree: {e}"),
        }
    }
}

impl std::error::Error for GrammarError {}

impl From<TreeError> for GrammarError {
    fn from(e: TreeError) -> Self {
        GrammarError::Tree(e)
    }
}

/// A validated TAG with lexeme pools and parameter-initialisation ranges.
#[derive(Debug, Clone)]
pub struct Grammar {
    symbols: Vec<String>,
    start: SymId,
    trees: Vec<ElemTree>,
    /// Lexeme pool per symbol id (empty for symbols never used as slots).
    pools: Vec<Vec<Token>>,
    /// β-trees grouped by root symbol.
    betas_by_symbol: Vec<Vec<TreeId>>,
    /// α-trees rooted at the start symbol.
    start_alphas: Vec<TreeId>,
    /// Uniform initialisation ranges for `Param` lexemes drawn from pools
    /// (the paper's "R denotes a variable that is randomly initialized").
    param_ranges: HashMap<u16, (f64, f64)>,
}

impl Grammar {
    /// The start symbol.
    pub fn start(&self) -> SymId {
        self.start
    }

    /// Resolve a symbol name.
    pub fn symbol(&self, name: &str) -> Option<SymId> {
        self.symbols
            .iter()
            .position(|s| s == name)
            .map(|i| SymId(i as u16))
    }

    /// Name of a symbol id.
    pub fn symbol_name(&self, sym: SymId) -> &str {
        &self.symbols[sym.0 as usize]
    }

    /// Number of interned symbols.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }

    /// Access an elementary tree.
    pub fn tree(&self, id: TreeId) -> &ElemTree {
        &self.trees[id.0 as usize]
    }

    /// All elementary trees with their ids.
    pub fn trees(&self) -> impl Iterator<Item = (TreeId, &ElemTree)> {
        self.trees
            .iter()
            .enumerate()
            .map(|(i, t)| (TreeId(i as u32), t))
    }

    /// Find a tree by name.
    pub fn tree_by_name(&self, name: &str) -> Option<TreeId> {
        self.trees
            .iter()
            .position(|t| t.name == name)
            .map(|i| TreeId(i as u32))
    }

    /// α-trees rooted at the start symbol (derivation roots).
    pub fn start_alphas(&self) -> &[TreeId] {
        &self.start_alphas
    }

    /// β-trees whose root symbol is `sym`.
    pub fn betas_for(&self, sym: SymId) -> &[TreeId] {
        self.betas_by_symbol
            .get(sym.0 as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Lexeme pool for a substitution symbol.
    pub fn pool(&self, sym: SymId) -> &[Token] {
        self.pools
            .get(sym.0 as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Uniform init range for a `Param` kind, if registered.
    pub fn param_range(&self, kind: u16) -> Option<(f64, f64)> {
        self.param_ranges.get(&kind).copied()
    }

    /// Membership test used by derivation validation. `Param` lexemes match
    /// by kind (each instance carries its own evolved value) and `Num`
    /// lexemes match any literal; other tokens match exactly.
    pub fn lexeme_in_pool(&self, sym: SymId, token: &Token) -> bool {
        self.pool(sym).iter().any(|p| match (p, token) {
            (Token::Param { kind: a, .. }, Token::Param { kind: b, .. }) => a == b,
            (Token::Num(_), Token::Num(_)) => true,
            _ => p == token,
        })
    }

    /// Draw a random lexeme for `sym`, applying the parameter-range
    /// initialisation for `Param` pool entries.
    pub fn random_lexeme<R: Rng>(&self, sym: SymId, rng: &mut R) -> Token {
        let pool = self.pool(sym);
        assert!(
            !pool.is_empty(),
            "empty pool for symbol {}",
            self.symbol_name(sym)
        );
        let tok = *pool.choose(rng).expect("non-empty pool");
        match tok {
            Token::Param { kind, value } => {
                let value = match self.param_range(kind) {
                    Some((lo, hi)) if lo < hi => rng.gen_range(lo..hi),
                    _ => value,
                };
                Token::Param { kind, value }
            }
            other => other,
        }
    }

    /// Instantiate a fresh derivation node for `tree`: lexemes drawn from
    /// pools, params at their defaults ("in the beginning, parameters are
    /// set to the expected value", §III-B3).
    pub fn instantiate<R: Rng>(&self, id: TreeId, rng: &mut R) -> DerivNode {
        let elem = self.tree(id);
        let lexemes = elem
            .subst_symbols()
            .into_iter()
            .map(|sym| self.random_lexeme(sym, rng))
            .collect();
        DerivNode {
            tree: id,
            lexemes,
            params: elem.param_defaults(),
            children: Vec::new(),
        }
    }

    /// TAG3P population initialisation: seed with a random start α-tree and
    /// adjoin random β-trees at random open addresses until the chromosome
    /// size reaches a target drawn from `[min_size, max_size]`.
    pub fn random_tree<R: Rng>(&self, rng: &mut R, min_size: usize, max_size: usize) -> DerivTree {
        assert!(min_size >= 1 && min_size <= max_size);
        let target = rng.gen_range(min_size..=max_size);
        let root_id = *self
            .start_alphas
            .choose(rng)
            .expect("validated grammar has a start alpha");
        let mut tree = DerivTree {
            root: self.instantiate(root_id, rng),
        };
        while tree.size() < target {
            let open = tree.open_addresses(self);
            let Some((path, addr, sym)) = open.choose(rng).cloned() else {
                break;
            };
            let beta = *self
                .betas_for(sym)
                .choose(rng)
                .expect("open address implies a beta");
            let child = self.instantiate(beta, rng);
            tree.node_mut(&path)
                .children
                .push(Adjunction { addr, child });
        }
        tree
    }
}

/// Incremental construction of a [`Grammar`].
///
/// End-to-end: a one-rule grammar whose β appends `- lexeme`, grown into a
/// random individual, derived and lowered to an expression.
///
/// ```
/// use gmr_expr::BinOp;
/// use gmr_tag::tree::ElemTreeBuilder;
/// use gmr_tag::{lower, GrammarBuilder, Token, TreeKind};
/// use rand::SeedableRng;
///
/// let mut gb = GrammarBuilder::new();
/// let s = gb.sym("S");
/// let r = gb.sym("R");
/// gb.start(s);
/// // α: S → x  (state 0)
/// let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
/// let root = a.root();
/// a.anchor(root, Token::State(0));
/// gb.tree(a.build().unwrap());
/// // β: S → S* "-" R↓
/// let mut b = ElemTreeBuilder::new("beta", TreeKind::Auxiliary, s);
/// let root = b.root();
/// b.foot(root, s);
/// b.anchor(root, Token::Bin(BinOp::Sub));
/// b.subst(root, r);
/// gb.tree(b.build().unwrap());
/// gb.pool(r, [Token::Num(1.0)]);
///
/// let grammar = gb.build().unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let individual = grammar.random_tree(&mut rng, 3, 3);
/// let expr = lower(&individual.derived(&grammar)).unwrap();
/// // x - 1 - 1: the α plus two adjoined βs.
/// assert_eq!(expr.size(), 5);
/// ```
#[derive(Debug, Default)]
pub struct GrammarBuilder {
    symbols: Vec<String>,
    start: Option<SymId>,
    trees: Vec<ElemTree>,
    pools: HashMap<u16, Vec<Token>>,
    param_ranges: HashMap<u16, (f64, f64)>,
}

impl GrammarBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern (or look up) a symbol name.
    pub fn sym(&mut self, name: &str) -> SymId {
        if let Some(i) = self.symbols.iter().position(|s| s == name) {
            return SymId(i as u16);
        }
        let id = SymId(self.symbols.len() as u16);
        self.symbols.push(name.to_string());
        id
    }

    /// Set the start symbol.
    pub fn start(&mut self, sym: SymId) -> &mut Self {
        self.start = Some(sym);
        self
    }

    /// Add a validated elementary tree.
    pub fn tree(&mut self, tree: ElemTree) -> TreeId {
        let id = TreeId(self.trees.len() as u32);
        self.trees.push(tree);
        id
    }

    /// Extend the lexeme pool for a substitution symbol.
    pub fn pool(&mut self, sym: SymId, tokens: impl IntoIterator<Item = Token>) -> &mut Self {
        self.pools.entry(sym.0).or_default().extend(tokens);
        self
    }

    /// Register the uniform initialisation range for a `Param` kind.
    pub fn param_range(&mut self, kind: u16, lo: f64, hi: f64) -> &mut Self {
        self.param_ranges.insert(kind, (lo, hi));
        self
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<Grammar, GrammarError> {
        let start = self.start.ok_or(GrammarError::NoStart)?;
        let nsyms = self.symbols.len() as u16;
        let mut pools = vec![Vec::new(); self.symbols.len()];
        for (sym, toks) in &self.pools {
            if *sym >= nsyms {
                return Err(GrammarError::UnknownSymbol {
                    tree: "<pool>".into(),
                    sym: *sym,
                });
            }
            pools[*sym as usize] = toks.clone();
        }
        let mut betas_by_symbol = vec![Vec::new(); self.symbols.len()];
        let mut start_alphas = Vec::new();
        for (i, tree) in self.trees.iter().enumerate() {
            tree.validate()?;
            // Check every symbol referenced by the tree is interned, and
            // every substitution slot has a pool.
            for node in &tree.nodes {
                let sym = match node.kind {
                    NodeKind::Interior(s) | NodeKind::Subst(s) | NodeKind::Foot(s) => Some(s),
                    NodeKind::Anchor(_) => None,
                };
                if let Some(s) = sym {
                    if s.0 >= nsyms {
                        return Err(GrammarError::UnknownSymbol {
                            tree: tree.name.clone(),
                            sym: s.0,
                        });
                    }
                }
                if let NodeKind::Subst(s) = node.kind {
                    if pools[s.0 as usize].is_empty() {
                        return Err(GrammarError::EmptyPool { sym: s.0 });
                    }
                }
            }
            match tree.kind {
                TreeKind::Auxiliary => {
                    betas_by_symbol[tree.root_symbol().0 as usize].push(TreeId(i as u32));
                }
                TreeKind::Initial => {
                    if tree.root_symbol() == start {
                        start_alphas.push(TreeId(i as u32));
                    }
                }
            }
        }
        if start_alphas.is_empty() {
            return Err(GrammarError::NoStartAlpha);
        }
        Ok(Grammar {
            symbols: self.symbols,
            start,
            trees: self.trees,
            pools,
            betas_by_symbol,
            start_alphas,
            param_ranges: self.param_ranges,
        })
    }
}

/// Shared fixtures for tests in this crate and in `gmr-gp`.
#[doc(hidden)]
pub mod test_fixtures {
    use super::*;
    use crate::tree::ElemTreeBuilder;
    use gmr_expr::BinOp;

    /// A minimal grammar ("Exp" start symbol, one α, one β subtracting a
    /// lexeme) plus a deterministic 3-node derivation:
    /// `((State0 * C0) - lex) - lex` with `lex = Param{kind 1, value 0.5}`.
    pub fn tiny_grammar() -> (Grammar, DerivTree) {
        let mut gb = GrammarBuilder::new();
        let exp = gb.sym("Exp");
        let rsym = gb.sym("R");
        gb.start(exp);

        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, exp);
        let r = a.root();
        a.anchor(r, Token::State(0));
        a.anchor(r, Token::Bin(BinOp::Mul));
        a.anchor(
            r,
            Token::Param {
                kind: 0,
                value: 2.0,
            },
        );
        let alpha = gb.tree(a.build().unwrap());

        let mut b = ElemTreeBuilder::new("beta-sub", TreeKind::Auxiliary, exp);
        let r = b.root();
        b.foot(r, exp);
        b.anchor(r, Token::Bin(BinOp::Sub));
        b.subst(r, rsym);
        let beta = gb.tree(b.build().unwrap());

        gb.pool(
            rsym,
            [
                Token::Param {
                    kind: 1,
                    value: 0.5,
                },
                Token::Var(0),
            ],
        );
        gb.param_range(1, 0.0, 1.0);
        let g = gb.build().unwrap();

        let lex = Token::Param {
            kind: 1,
            value: 0.5,
        };
        let grandchild = DerivNode {
            tree: beta,
            lexemes: vec![lex],
            params: vec![],
            children: vec![],
        };
        let child = DerivNode {
            tree: beta,
            lexemes: vec![lex],
            params: vec![],
            children: vec![Adjunction {
                addr: crate::tree::NodeIdx(0),
                child: grandchild,
            }],
        };
        let root = DerivNode {
            tree: alpha,
            lexemes: vec![],
            params: vec![2.0],
            children: vec![Adjunction {
                addr: crate::tree::NodeIdx(0),
                child,
            }],
        };
        (g, DerivTree { root })
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::tiny_grammar;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn symbol_interning_round_trips() {
        let (g, _) = tiny_grammar();
        let exp = g.symbol("Exp").unwrap();
        assert_eq!(g.symbol_name(exp), "Exp");
        assert_eq!(g.symbol("nope"), None);
        assert_eq!(g.symbol_count(), 2);
    }

    #[test]
    fn betas_indexed_by_symbol() {
        let (g, _) = tiny_grammar();
        let exp = g.symbol("Exp").unwrap();
        let r = g.symbol("R").unwrap();
        assert_eq!(g.betas_for(exp).len(), 1);
        assert!(g.betas_for(r).is_empty());
    }

    #[test]
    fn pool_membership_semantics() {
        let (g, _) = tiny_grammar();
        let r = g.symbol("R").unwrap();
        // Param matches by kind regardless of value.
        assert!(g.lexeme_in_pool(
            r,
            &Token::Param {
                kind: 1,
                value: 0.123
            }
        ));
        assert!(!g.lexeme_in_pool(
            r,
            &Token::Param {
                kind: 9,
                value: 0.5
            }
        ));
        assert!(g.lexeme_in_pool(r, &Token::Var(0)));
        assert!(!g.lexeme_in_pool(r, &Token::Var(3)));
    }

    #[test]
    fn random_lexeme_respects_param_range() {
        let (g, _) = tiny_grammar();
        let r = g.symbol("R").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            match g.random_lexeme(r, &mut rng) {
                Token::Param { kind, value } => {
                    assert_eq!(kind, 1);
                    assert!((0.0..1.0).contains(&value), "{value} outside init range");
                }
                Token::Var(0) => {}
                other => panic!("unexpected lexeme {other:?}"),
            }
        }
    }

    #[test]
    fn instantiate_uses_param_defaults() {
        let (g, t) = tiny_grammar();
        let mut rng = StdRng::seed_from_u64(1);
        let inst = g.instantiate(t.root.tree, &mut rng);
        assert_eq!(inst.params, vec![2.0]);
        assert!(inst.children.is_empty());
    }

    #[test]
    fn random_tree_respects_size_bounds() {
        let (g, _) = tiny_grammar();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let t = g.random_tree(&mut rng, 2, 10);
            assert!(t.size() >= 2 && t.size() <= 10, "size {}", t.size());
            t.validate(&g).unwrap();
        }
    }

    #[test]
    fn random_tree_min_one_allows_bare_alpha() {
        let (g, _) = tiny_grammar();
        let mut rng = StdRng::seed_from_u64(3);
        let t = g.random_tree(&mut rng, 1, 1);
        assert_eq!(t.size(), 1);
    }

    #[test]
    fn builder_rejects_missing_start() {
        let gb = GrammarBuilder::new();
        assert_eq!(gb.build().unwrap_err(), GrammarError::NoStart);
    }

    #[test]
    fn builder_rejects_missing_start_alpha() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        gb.start(s);
        assert_eq!(gb.build().unwrap_err(), GrammarError::NoStartAlpha);
    }

    #[test]
    fn builder_rejects_empty_pool() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let r = gb.sym("R");
        gb.start(s);
        let mut a = crate::tree::ElemTreeBuilder::new("a", TreeKind::Initial, s);
        let root = a.root();
        a.subst(root, r);
        gb.tree(a.build().unwrap());
        assert_eq!(
            gb.build().unwrap_err(),
            GrammarError::EmptyPool { sym: r.0 }
        );
    }

    #[test]
    fn builder_rejects_unknown_symbol() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        gb.start(s);
        // An interior node labelled with a symbol id that was never interned.
        let mut a = crate::tree::ElemTreeBuilder::new("a", TreeKind::Initial, s);
        let root = a.root();
        let inner = a.interior(root, SymId(99));
        a.anchor(inner, Token::Num(1.0));
        gb.tree(a.build().unwrap());
        assert!(matches!(
            gb.build().unwrap_err(),
            GrammarError::UnknownSymbol { .. }
        ));
    }
}
