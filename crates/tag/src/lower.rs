//! Lowering completed derived trees to expression ASTs.
//!
//! A completed derived tree's frontier spells a process equation; its
//! interior structure dictates the parse. Lowering walks the derived tree
//! and maps the three shapes the grammar produces onto [`gmr_expr::Expr`]
//! nodes:
//!
//! * a non-terminal with a single child — a pass-through level introduced by
//!   adjunction — lowers to its child;
//! * `[operand, BinOp, operand]` lowers to a binary node (infix);
//! * `[UnOp, operand]` lowers to a unary node (prefix);
//! * a frontier operand token lowers to the matching `Expr` leaf.
//!
//! Anything else is a malformed tree — which the grammar layer makes
//! unrepresentable, but lowering still reports precise errors rather than
//! panicking, since the GP engine treats a lowering failure as a lethal
//! fitness (belt *and* braces).

use crate::derive::{DKind, DerivedTree};
use crate::tree::Token;
use gmr_expr::{Expr, ParamSlot};
use std::fmt;

/// Lowering failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// An operator token appeared where an operand was required.
    OperatorAsOperand,
    /// An operand (or non-operator token) appeared in operator position.
    OperandAsOperator,
    /// A non-terminal frontier node (open foot / unfilled slot).
    OpenNonTerminal,
    /// An interior node whose child pattern matches none of the shapes.
    MalformedShape { arity: usize },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::OperatorAsOperand => write!(f, "operator token in operand position"),
            LowerError::OperandAsOperator => write!(f, "operand token in operator position"),
            LowerError::OpenNonTerminal => write!(f, "open non-terminal on the frontier"),
            LowerError::MalformedShape { arity } => {
                write!(
                    f,
                    "interior node with unsupported child pattern (arity {arity})"
                )
            }
        }
    }
}

impl std::error::Error for LowerError {}

fn token_leaf(tok: Token) -> Result<Expr, LowerError> {
    match tok {
        Token::Num(v) => Ok(Expr::Num(v)),
        Token::Param { kind, value } => Ok(Expr::Param(ParamSlot { kind, value })),
        Token::Var(i) => Ok(Expr::Var(i)),
        Token::State(i) => Ok(Expr::State(i)),
        Token::Bin(_) | Token::Un(_) => Err(LowerError::OperatorAsOperand),
    }
}

fn lower_node(tree: &DerivedTree, idx: usize) -> Result<Expr, LowerError> {
    let node = &tree.nodes[idx];
    match &node.kind {
        DKind::Tok(tok) => token_leaf(*tok),
        DKind::Sym(_) => match node.children.as_slice() {
            [] => Err(LowerError::OpenNonTerminal),
            [only] => lower_node(tree, *only),
            [a, op, b] => {
                let op = match &tree.nodes[*op].kind {
                    DKind::Tok(Token::Bin(o)) => *o,
                    _ => return Err(LowerError::OperandAsOperator),
                };
                Ok(Expr::bin(op, lower_node(tree, *a)?, lower_node(tree, *b)?))
            }
            [op, a] => {
                let op = match &tree.nodes[*op].kind {
                    DKind::Tok(Token::Un(o)) => *o,
                    _ => return Err(LowerError::OperandAsOperator),
                };
                Ok(Expr::un(op, lower_node(tree, *a)?))
            }
            other => Err(LowerError::MalformedShape { arity: other.len() }),
        },
    }
}

/// Lower a completed derived tree to an expression.
pub fn lower(tree: &DerivedTree) -> Result<Expr, LowerError> {
    lower_node(tree, tree.root)
}

/// Lower a *system* of equations: the paper combines multiple differential
/// equations into one α-tree "under a new, common root node" and decomposes
/// them again at fitness-evaluation time. The root's children are the
/// individual equations, lowered independently, in order.
pub fn lower_system(tree: &DerivedTree, expected: usize) -> Result<Vec<Expr>, LowerError> {
    let root = &tree.nodes[tree.root];
    if root.children.len() != expected {
        return Err(LowerError::MalformedShape {
            arity: root.children.len(),
        });
    }
    root.children.iter().map(|&c| lower_node(tree, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::DNode;
    use crate::grammar::test_fixtures::tiny_grammar;
    use crate::tree::SymId;
    use gmr_expr::{BinOp, EvalContext, UnOp};

    #[test]
    fn lowers_tiny_fixture() {
        let (g, t) = tiny_grammar();
        let e = lower(&t.derived(&g)).unwrap();
        // ((State0 * 2.0) - 0.5) - 0.5 at State0 = 3 → 5.0
        let ctx = EvalContext {
            vars: &[],
            state: &[3.0],
        };
        assert_eq!(e.eval(&ctx), 3.0 * 2.0 - 0.5 - 0.5);
    }

    #[test]
    fn pass_through_levels_collapse() {
        // Sym -> Sym -> Tok(Num)
        let tree = DerivedTree {
            nodes: vec![
                DNode {
                    kind: DKind::Sym(SymId(0)),
                    children: vec![1],
                },
                DNode {
                    kind: DKind::Sym(SymId(0)),
                    children: vec![2],
                },
                DNode {
                    kind: DKind::Tok(Token::Num(4.0)),
                    children: vec![],
                },
            ],
            root: 0,
        };
        assert_eq!(lower(&tree).unwrap(), Expr::Num(4.0));
    }

    #[test]
    fn unary_prefix_shape() {
        let tree = DerivedTree {
            nodes: vec![
                DNode {
                    kind: DKind::Sym(SymId(0)),
                    children: vec![1, 2],
                },
                DNode {
                    kind: DKind::Tok(Token::Un(UnOp::Log)),
                    children: vec![],
                },
                DNode {
                    kind: DKind::Tok(Token::Var(0)),
                    children: vec![],
                },
            ],
            root: 0,
        };
        assert_eq!(lower(&tree).unwrap(), Expr::un(UnOp::Log, Expr::Var(0)));
    }

    #[test]
    fn rejects_operator_as_operand() {
        let tree = DerivedTree {
            nodes: vec![DNode {
                kind: DKind::Tok(Token::Bin(BinOp::Add)),
                children: vec![],
            }],
            root: 0,
        };
        assert_eq!(lower(&tree), Err(LowerError::OperatorAsOperand));
    }

    #[test]
    fn rejects_operand_in_operator_position() {
        let tree = DerivedTree {
            nodes: vec![
                DNode {
                    kind: DKind::Sym(SymId(0)),
                    children: vec![1, 2, 3],
                },
                DNode {
                    kind: DKind::Tok(Token::Num(1.0)),
                    children: vec![],
                },
                DNode {
                    kind: DKind::Tok(Token::Num(2.0)),
                    children: vec![],
                },
                DNode {
                    kind: DKind::Tok(Token::Num(3.0)),
                    children: vec![],
                },
            ],
            root: 0,
        };
        assert_eq!(lower(&tree), Err(LowerError::OperandAsOperator));
    }

    #[test]
    fn rejects_open_nonterminal() {
        let tree = DerivedTree {
            nodes: vec![DNode {
                kind: DKind::Sym(SymId(0)),
                children: vec![],
            }],
            root: 0,
        };
        assert_eq!(lower(&tree), Err(LowerError::OpenNonTerminal));
    }

    #[test]
    fn rejects_malformed_arity() {
        let leaf = DNode {
            kind: DKind::Tok(Token::Num(1.0)),
            children: vec![],
        };
        let tree = DerivedTree {
            nodes: vec![
                DNode {
                    kind: DKind::Sym(SymId(0)),
                    children: vec![1, 2, 3, 4],
                },
                leaf.clone(),
                leaf.clone(),
                leaf.clone(),
                leaf,
            ],
            root: 0,
        };
        assert_eq!(lower(&tree), Err(LowerError::MalformedShape { arity: 4 }));
    }
}
