//! Derivation trees — the genotype of the evolutionary search.
//!
//! Following the paper's restricted-substitution formulation (§III-A2):
//!
//! 1. the root node is labelled with an α-tree whose root carries the start
//!    symbol (the expert's input process);
//! 2. every other node is labelled with a β-tree and the *address* (node
//!    index within the parent's elementary tree) where it adjoins;
//! 3. substituted α-trees are restricted to single tokens ("lexemes") stored
//!    inside the node, one per open substitution slot ("lexicon") of its
//!    elementary tree.
//!
//! Each derivation node additionally carries its own evolved copies of the
//! `Param` anchor values of its elementary tree (`params`), because the same
//! elementary tree is shared by many individuals while each individual's
//! Gaussian mutation must move its own constants independently.

use crate::grammar::{Grammar, TreeId};
use crate::tree::{NodeIdx, NodeKind, SymId, Token};
use std::fmt;

/// Path from the root of a derivation tree to a node: a sequence of child
/// positions. The empty path is the root.
pub type Path = Vec<usize>;

/// An adjunction edge: which child adjoined at which address of the parent's
/// elementary tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Adjunction {
    /// Node index within the *parent's* elementary tree.
    pub addr: NodeIdx,
    /// The adjoined sub-derivation (labelled by a β-tree).
    pub child: DerivNode,
}

/// One node of a derivation tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivNode {
    /// The elementary tree this node is labelled with.
    pub tree: TreeId,
    /// Lexemes substituted into the open slots, aligned with
    /// `ElemTree::subst_slots()` order.
    pub lexemes: Vec<Token>,
    /// Evolved values for the `Param` anchors of the elementary tree,
    /// aligned with `ElemTree::param_anchors()` order.
    pub params: Vec<f64>,
    /// Adjunctions performed on this instance (at most one per address).
    pub children: Vec<Adjunction>,
}

impl DerivNode {
    /// Number of derivation nodes in this subtree (the paper's "chromosome
    /// size").
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|a| a.child.size()).sum::<usize>()
    }

    /// Depth of the derivation subtree.
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|a| a.child.depth())
            .max()
            .unwrap_or(0)
    }

    /// Addresses already occupied by an adjunction on this node.
    pub fn occupied(&self) -> Vec<NodeIdx> {
        self.children.iter().map(|a| a.addr).collect()
    }

    /// True if `addr` already hosts an adjunction.
    pub fn is_occupied(&self, addr: NodeIdx) -> bool {
        self.children.iter().any(|a| a.addr == addr)
    }

    fn visit_paths(&self, prefix: &mut Path, out: &mut Vec<Path>) {
        out.push(prefix.clone());
        for (i, adj) in self.children.iter().enumerate() {
            prefix.push(i);
            adj.child.visit_paths(prefix, out);
            prefix.pop();
        }
    }

    /// Mutable access to every Gaussian-mutable constant in this subtree:
    /// anchor param values (with their kind from the elementary tree) and
    /// `Param` lexemes.
    pub fn mutable_params<'a>(&'a mut self, grammar: &Grammar) -> Vec<(u16, &'a mut f64)> {
        let mut out = Vec::new();
        self.collect_params(grammar, &mut out);
        out
    }

    /// Open adjoining sites within this subtree; paths are relative to this
    /// node. See [`DerivTree::open_addresses`].
    pub fn open_addresses(&self, grammar: &Grammar) -> Vec<(Path, NodeIdx, SymId)> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.collect_open(grammar, &mut prefix, &mut out);
        out
    }

    fn collect_open(
        &self,
        grammar: &Grammar,
        prefix: &mut Path,
        out: &mut Vec<(Path, NodeIdx, SymId)>,
    ) {
        let elem = grammar.tree(self.tree);
        for (i, en) in elem.nodes.iter().enumerate() {
            if let NodeKind::Interior(sym) = en.kind {
                let addr = NodeIdx(i as u32);
                if !self.is_occupied(addr) && !grammar.betas_for(sym).is_empty() {
                    out.push((prefix.clone(), addr, sym));
                }
            }
        }
        for (i, adj) in self.children.iter().enumerate() {
            prefix.push(i);
            adj.child.collect_open(grammar, prefix, out);
            prefix.pop();
        }
    }

    /// Borrow the descendant at `path` (relative to this node).
    pub fn descendant_mut(&mut self, path: &[usize]) -> &mut DerivNode {
        let mut cur = self;
        for &i in path {
            cur = &mut cur.children[i].child;
        }
        cur
    }

    fn collect_params<'a>(&'a mut self, grammar: &Grammar, out: &mut Vec<(u16, &'a mut f64)>) {
        let elem = grammar.tree(self.tree);
        let kinds: Vec<u16> = elem
            .nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Anchor(Token::Param { kind, .. }) => Some(kind),
                _ => None,
            })
            .collect();
        debug_assert_eq!(kinds.len(), self.params.len());
        for (kind, v) in kinds.iter().zip(self.params.iter_mut()) {
            out.push((*kind, v));
        }
        for lex in self.lexemes.iter_mut() {
            if let Token::Param { kind, value } = lex {
                out.push((*kind, value));
            }
        }
        for adj in self.children.iter_mut() {
            adj.child.collect_params(grammar, out);
        }
    }
}

/// A complete derivation tree (an individual).
#[derive(Debug, Clone, PartialEq)]
pub struct DerivTree {
    /// Root derivation node, labelled by an initial tree.
    pub root: DerivNode,
}

/// Problems found by [`DerivTree::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivError {
    /// The root's elementary tree is not an α-tree with the start symbol.
    RootNotStartAlpha,
    /// A non-root node is labelled by an initial tree.
    InitialBelowRoot,
    /// An adjunction address is out of range for the parent tree.
    AddressOutOfRange,
    /// An adjunction address does not name an interior node.
    AddressNotInterior,
    /// The β-tree's root symbol does not match the symbol at the address.
    SymbolMismatch,
    /// Two adjunctions share an address on the same node.
    DuplicateAddress,
    /// The lexeme vector length differs from the tree's slot count.
    LexemeCountMismatch,
    /// A lexeme is an operator where the slot expects an operand (or vice
    /// versa, per the grammar's pool for that symbol).
    LexemeNotInPool,
    /// The params vector length differs from the tree's param-anchor count.
    ParamCountMismatch,
}

impl fmt::Display for DerivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            DerivError::RootNotStartAlpha => "root must be an initial tree with the start symbol",
            DerivError::InitialBelowRoot => "initial tree used below the root",
            DerivError::AddressOutOfRange => "adjunction address out of range",
            DerivError::AddressNotInterior => "adjunction address is not an interior node",
            DerivError::SymbolMismatch => "β-tree root symbol does not match the adjoining site",
            DerivError::DuplicateAddress => "two adjunctions at the same address",
            DerivError::LexemeCountMismatch => "lexeme count does not match substitution slots",
            DerivError::LexemeNotInPool => "lexeme is not in the grammar's pool for its slot",
            DerivError::ParamCountMismatch => "param count does not match param anchors",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DerivError {}

impl DerivTree {
    /// Number of derivation nodes.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Depth of the derivation tree.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Preorder paths to every node; `paths()[0]` is the root.
    pub fn paths(&self) -> Vec<Path> {
        let mut out = Vec::with_capacity(self.size());
        self.root.visit_paths(&mut Vec::new(), &mut out);
        out
    }

    /// Borrow the node at `path` (panics on an invalid path — paths come
    /// from [`Self::paths`] on the same tree).
    pub fn node(&self, path: &[usize]) -> &DerivNode {
        let mut cur = &self.root;
        for &i in path {
            cur = &cur.children[i].child;
        }
        cur
    }

    /// Mutably borrow the node at `path`.
    pub fn node_mut(&mut self, path: &[usize]) -> &mut DerivNode {
        let mut cur = &mut self.root;
        for &i in path {
            cur = &mut cur.children[i].child;
        }
        cur
    }

    /// Detach the adjunction at `path` (which must be non-empty: the root
    /// cannot be detached). Returns the address it occupied and the subtree.
    pub fn detach(&mut self, path: &[usize]) -> (NodeIdx, DerivNode) {
        let (last, parent_path) = path.split_last().expect("cannot detach the root");
        let parent = self.node_mut(parent_path);
        let adj = parent.children.remove(*last);
        (adj.addr, adj.child)
    }

    /// Attach `child` under the node at `parent_path`, adjoining at `addr`.
    pub fn attach(&mut self, parent_path: &[usize], addr: NodeIdx, child: DerivNode) {
        let parent = self.node_mut(parent_path);
        debug_assert!(!parent.is_occupied(addr), "address already occupied");
        parent.children.push(Adjunction { addr, child });
    }

    /// Every open adjoining site: `(path to node, address, symbol at that
    /// address)` for each interior node of each instance's elementary tree
    /// that is not yet occupied **and** for which the grammar has at least
    /// one compatible β-tree.
    pub fn open_addresses(&self, grammar: &Grammar) -> Vec<(Path, NodeIdx, SymId)> {
        self.root.open_addresses(grammar)
    }

    /// Render the derivation structure as an indented tree — the paper's
    /// Fig. 4 view: which elementary tree each node is labelled with, the
    /// adjunction address, and the substituted lexemes.
    pub fn describe(&self, grammar: &Grammar) -> String {
        let mut out = String::new();
        fn go(
            node: &DerivNode,
            grammar: &Grammar,
            depth: usize,
            addr: Option<NodeIdx>,
            out: &mut String,
        ) {
            let elem = grammar.tree(node.tree);
            out.push_str(&"  ".repeat(depth));
            match addr {
                Some(a) => out.push_str(&format!("{a} ")),
                None => out.push_str("root "),
            }
            out.push_str(&elem.name);
            if !node.lexemes.is_empty() {
                out.push_str(&format!(" lexemes={:?}", node.lexemes));
            }
            if !node.params.is_empty() {
                out.push_str(&format!(" params={:?}", node.params));
            }
            out.push('\n');
            for adj in &node.children {
                go(&adj.child, grammar, depth + 1, Some(adj.addr), out);
            }
        }
        go(&self.root, grammar, 0, None, &mut out);
        out
    }

    /// Validate the whole derivation against `grammar`.
    pub fn validate(&self, grammar: &Grammar) -> Result<(), DerivError> {
        let root_elem = grammar.tree(self.root.tree);
        if root_elem.kind != crate::tree::TreeKind::Initial
            || root_elem.root_symbol() != grammar.start()
        {
            return Err(DerivError::RootNotStartAlpha);
        }
        validate_node(&self.root, grammar, true)
    }
}

fn validate_node(node: &DerivNode, grammar: &Grammar, is_root: bool) -> Result<(), DerivError> {
    let elem = grammar.tree(node.tree);
    if !is_root && elem.kind != crate::tree::TreeKind::Auxiliary {
        return Err(DerivError::InitialBelowRoot);
    }
    if node.lexemes.len() != elem.subst_slots().len() {
        return Err(DerivError::LexemeCountMismatch);
    }
    for (tok, sym) in node.lexemes.iter().zip(elem.subst_symbols()) {
        if !grammar.lexeme_in_pool(sym, tok) {
            return Err(DerivError::LexemeNotInPool);
        }
    }
    if node.params.len() != elem.param_anchors().len() {
        return Err(DerivError::ParamCountMismatch);
    }
    let mut seen: Vec<NodeIdx> = Vec::with_capacity(node.children.len());
    for adj in &node.children {
        if adj.addr.0 as usize >= elem.len() {
            return Err(DerivError::AddressOutOfRange);
        }
        let site = elem.node(adj.addr);
        let site_sym = match site.kind {
            NodeKind::Interior(s) => s,
            _ => return Err(DerivError::AddressNotInterior),
        };
        let child_elem = grammar.tree(adj.child.tree);
        if child_elem.root_symbol() != site_sym {
            return Err(DerivError::SymbolMismatch);
        }
        if seen.contains(&adj.addr) {
            return Err(DerivError::DuplicateAddress);
        }
        seen.push(adj.addr);
        validate_node(&adj.child, grammar, false)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::test_fixtures::tiny_grammar;
    use gmr_expr::BinOp;

    #[test]
    fn size_depth_paths() {
        let (g, t) = tiny_grammar();
        assert_eq!(t.size(), 3);
        assert_eq!(t.depth(), 3);
        let paths = t.paths();
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0], Vec::<usize>::new());
        assert_eq!(paths[1], vec![0]);
        assert_eq!(paths[2], vec![0, 0]);
        t.validate(&g).unwrap();
    }

    #[test]
    fn node_navigation() {
        let (g, t) = tiny_grammar();
        let child = t.node(&[0]);
        assert_eq!(g.tree(child.tree).kind, crate::tree::TreeKind::Auxiliary);
    }

    #[test]
    fn detach_attach_round_trip() {
        let (g, mut t) = tiny_grammar();
        let before = t.clone();
        let (addr, sub) = t.detach(&[0]);
        assert_eq!(t.size(), 1);
        t.attach(&[], addr, sub);
        assert_eq!(t, before);
        t.validate(&g).unwrap();
    }

    #[test]
    fn open_addresses_exclude_occupied() {
        let (g, t) = tiny_grammar();
        let open = t.open_addresses(&g);
        // The root's only Exp interior (address 0) is occupied by the first
        // β; each β instance exposes its own root address.
        assert!(open.iter().all(|(p, a, _)| !(p.is_empty() && a.0 == 0)));
        assert!(!open.is_empty());
    }

    #[test]
    fn validate_rejects_duplicate_address() {
        let (g, mut t) = tiny_grammar();
        let dup = t.root.children[0].clone();
        t.root.children.push(dup);
        assert_eq!(t.validate(&g), Err(DerivError::DuplicateAddress));
    }

    #[test]
    fn validate_rejects_symbol_mismatch() {
        let (g, mut t) = tiny_grammar();
        // Point the child's adjunction at an address whose node is a
        // frontier anchor.
        t.root.children[0].addr = NodeIdx(1);
        assert!(matches!(
            t.validate(&g),
            Err(DerivError::AddressNotInterior | DerivError::SymbolMismatch)
        ));
    }

    #[test]
    fn validate_rejects_bad_lexeme_count() {
        let (g, mut t) = tiny_grammar();
        t.node_mut(&[0]).lexemes.clear();
        assert_eq!(t.validate(&g), Err(DerivError::LexemeCountMismatch));
    }

    #[test]
    fn validate_rejects_foreign_lexeme() {
        let (g, mut t) = tiny_grammar();
        // The tiny grammar's pool for the slot symbol holds operand tokens;
        // an operator token is not in the pool.
        t.node_mut(&[0]).lexemes[0] = Token::Bin(BinOp::Add);
        assert_eq!(t.validate(&g), Err(DerivError::LexemeNotInPool));
    }

    #[test]
    fn describe_renders_every_node_with_addresses() {
        let (g, t) = tiny_grammar();
        let text = t.describe(&g);
        assert_eq!(text.lines().count(), t.size());
        assert!(text.starts_with("root alpha"));
        // Both β nodes carry their adjunction address.
        assert_eq!(text.matches("@0 beta-sub").count(), 2);
        assert!(text.contains("lexemes="));
    }

    #[test]
    fn mutable_params_cover_anchors_and_lexemes() {
        let (g, mut t) = tiny_grammar();
        let params = t.root.mutable_params(&g);
        // tiny_grammar: root α has one Param anchor; each β lexeme slot is
        // filled with a Param lexeme.
        assert!(
            params.len() >= 2,
            "expected anchor + lexeme params, got {}",
            params.len()
        );
    }

    #[test]
    fn mutating_params_changes_only_this_individual() {
        let (g, mut t) = tiny_grammar();
        let t2 = t.clone();
        for (_, v) in t.root.mutable_params(&g) {
            *v += 1.0;
        }
        assert_ne!(t, t2);
    }
}
