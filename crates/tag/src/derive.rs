//! Constructing derived trees from derivation trees.
//!
//! This is the operational core of the TAG formalism (paper Fig. 2): given a
//! derivation tree — "start from α, adjoin these β-trees at these addresses,
//! substitute these lexemes" — produce the *derived tree*, the actual parse
//! tree whose frontier spells out the revised process equation.
//!
//! Adjoining of β into τ at interior node *n* (all three steps of §III-A1):
//!
//! 1. the subtree of τ rooted at *n* is disconnected;
//! 2. β is attached where *n* was;
//! 3. the disconnected subtree is re-attached at β's foot node (the foot is
//!    *identified with* the subtree's root — both carry the same symbol).
//!
//! Substitution is the restricted, in-node form: each substitution slot of
//! an elementary tree is replaced by the corresponding lexeme token.

use crate::derivation::{DerivNode, DerivTree};
use crate::grammar::Grammar;
use crate::tree::{NodeKind, SymId, Token, TreeKind};

/// A node of a derived tree: either a non-terminal (interior or a foot that
/// is still open, for partially derived auxiliary material) or a terminal
/// token on the frontier.
#[derive(Debug, Clone, PartialEq)]
pub enum DKind {
    /// Non-terminal node.
    Sym(SymId),
    /// Terminal token.
    Tok(Token),
}

/// One node of a derived tree arena.
#[derive(Debug, Clone, PartialEq)]
pub struct DNode {
    /// Label.
    pub kind: DKind,
    /// Children indices (empty on the frontier).
    pub children: Vec<usize>,
}

/// A derived tree. Nodes live in an arena; splicing during adjunction may
/// leave unreachable entries, so always traverse from [`DerivedTree::root`].
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedTree {
    /// Node arena.
    pub nodes: Vec<DNode>,
    /// Index of the root node.
    pub root: usize,
}

impl DerivedTree {
    /// Frontier tokens in left-to-right order — the yield of the tree.
    pub fn frontier(&self) -> Vec<Token> {
        let mut out = Vec::new();
        self.collect_frontier(self.root, &mut out);
        out
    }

    fn collect_frontier(&self, idx: usize, out: &mut Vec<Token>) {
        let node = &self.nodes[idx];
        if let DKind::Tok(t) = node.kind {
            out.push(t);
        }
        for &c in &node.children {
            self.collect_frontier(c, out);
        }
    }

    /// Number of nodes reachable from the root.
    pub fn reachable_len(&self) -> usize {
        fn go(t: &DerivedTree, i: usize) -> usize {
            1 + t.nodes[i].children.iter().map(|&c| go(t, c)).sum::<usize>()
        }
        go(self, self.root)
    }

    /// True if any reachable node is an un-filled non-terminal frontier
    /// node (an open foot) — i.e. the tree is not *completed*.
    pub fn has_open_nonterminals(&self) -> bool {
        fn go(t: &DerivedTree, i: usize) -> bool {
            let n = &t.nodes[i];
            if n.children.is_empty() && matches!(n.kind, DKind::Sym(_)) {
                return true;
            }
            n.children.iter().any(|&c| go(t, c))
        }
        go(self, self.root)
    }
}

/// Internal: instantiate one derivation node (and recursively its
/// adjunctions) into an arena. Returns (arena, foot index if auxiliary).
fn instantiate(grammar: &Grammar, dnode: &DerivNode) -> (DerivedTree, Option<usize>) {
    let elem = grammar.tree(dnode.tree);
    let mut nodes: Vec<DNode> = Vec::with_capacity(elem.len());
    let mut parent: Vec<Option<usize>> = Vec::with_capacity(elem.len());
    let mut foot: Option<usize> = None;
    let mut lex_iter = dnode.lexemes.iter();
    let mut par_iter = dnode.params.iter();

    // 1. Clone the elementary tree, substituting lexemes into slots and the
    // instance's evolved values into Param anchors. Elementary-tree arenas
    // index children by position, and we keep indices identical, so the
    // original node index *is* the adjoining address.
    for en in &elem.nodes {
        let kind = match en.kind {
            NodeKind::Interior(s) => DKind::Sym(s),
            NodeKind::Foot(s) => DKind::Sym(s),
            NodeKind::Subst(_) => {
                let lex = lex_iter
                    .next()
                    .expect("lexeme count validated against slot count");
                DKind::Tok(*lex)
            }
            NodeKind::Anchor(Token::Param { kind, .. }) => {
                let value = *par_iter.next().expect("param count validated");
                DKind::Tok(Token::Param { kind, value })
            }
            NodeKind::Anchor(t) => DKind::Tok(t),
        };
        nodes.push(DNode {
            kind,
            children: en.children.iter().map(|c| c.0 as usize).collect(),
        });
        parent.push(None);
    }
    for (i, en) in elem.nodes.iter().enumerate() {
        for c in &en.children {
            parent[c.0 as usize] = Some(i);
        }
        if matches!(en.kind, NodeKind::Foot(_)) {
            foot = Some(i);
        }
    }

    let mut tree = DerivedTree { nodes, root: 0 };

    // 2. Apply each adjunction. Addresses are indices into the elementary
    // tree, and step 1 preserved those indices, so the target is `addr`
    // itself; later splices never remove original nodes, only re-parent
    // them, so targets of sibling adjunctions stay valid.
    for adj in &dnode.children {
        let (child, child_foot) = instantiate(grammar, &adj.child);
        let child_foot = child_foot.expect("adjoined derivation nodes are auxiliary");
        let target = adj.addr.0 as usize;

        // Splice the child's arena in, remapping indices.
        let offset = tree.nodes.len();
        for cn in &child.nodes {
            tree.nodes.push(DNode {
                kind: cn.kind.clone(),
                children: cn.children.iter().map(|c| c + offset).collect(),
            });
            parent.push(None);
        }
        for (i, cn) in child.nodes.iter().enumerate() {
            for &c in &cn.children {
                parent[c + offset] = Some(i + offset);
            }
        }
        let beta_root = child.root + offset;
        let beta_foot = child_foot + offset;

        // Step (2): β takes the place of the target node.
        match parent[target] {
            Some(p) => {
                for slot in &mut tree.nodes[p].children {
                    if *slot == target {
                        *slot = beta_root;
                    }
                }
                parent[beta_root] = Some(p);
            }
            None => {
                debug_assert_eq!(target, tree.root);
                tree.root = beta_root;
            }
        }

        // Step (3): the excised subtree (rooted at `target`) is identified
        // with β's foot node: the foot's parent now points at `target`.
        let fp = parent[beta_foot].expect("foot is never the root of a validated β-tree");
        for slot in &mut tree.nodes[fp].children {
            if *slot == beta_foot {
                *slot = target;
            }
        }
        parent[target] = Some(fp);
        // The foot DNode itself is now unreachable garbage in the arena.
    }

    // Track this instance's foot through the splices: it keeps its index
    // because splicing re-parents but never re-indexes original nodes.
    (tree, foot)
}

impl DerivTree {
    /// Produce the derived tree for this derivation under `grammar`.
    ///
    /// The derivation must be rooted at an initial tree (guaranteed by
    /// [`DerivTree::validate`]); the result is a completed tree whenever
    /// every elementary tree's substitution slots are filled — which the
    /// derivation-node representation makes true by construction.
    pub fn derived(&self, grammar: &Grammar) -> DerivedTree {
        debug_assert_eq!(
            grammar.tree(self.root.tree).kind,
            TreeKind::Initial,
            "derivation root must be an initial tree"
        );
        let (tree, foot) = instantiate(grammar, &self.root);
        debug_assert!(foot.is_none(), "initial trees have no foot");
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::test_fixtures::tiny_grammar;
    use gmr_expr::BinOp;

    #[test]
    fn root_alpha_alone_derives_itself() {
        let (g, mut t) = tiny_grammar();
        t.root.children.clear();
        let d = t.derived(&g);
        assert_eq!(
            d.frontier(),
            vec![
                Token::State(0),
                Token::Bin(BinOp::Mul),
                Token::Param {
                    kind: 0,
                    value: 2.0
                }
            ]
        );
        assert!(!d.has_open_nonterminals());
    }

    #[test]
    fn single_adjunction_wraps_the_root() {
        let (g, mut t) = tiny_grammar();
        // Keep only the first-level β.
        t.node_mut(&[0]).children.clear();
        let d = t.derived(&g);
        // (State0 * 2.0) - 0.5 : frontier reads left-to-right.
        assert_eq!(
            d.frontier(),
            vec![
                Token::State(0),
                Token::Bin(BinOp::Mul),
                Token::Param {
                    kind: 0,
                    value: 2.0
                },
                Token::Bin(BinOp::Sub),
                Token::Param {
                    kind: 1,
                    value: 0.5
                },
            ]
        );
    }

    #[test]
    fn nested_adjunction_composes() {
        let (g, t) = tiny_grammar();
        let d = t.derived(&g);
        // ((State0 * 2.0) - 0.5) - 0.5
        let frontier = d.frontier();
        assert_eq!(frontier.len(), 7);
        assert_eq!(frontier[3], Token::Bin(BinOp::Sub));
        assert_eq!(frontier[5], Token::Bin(BinOp::Sub));
        assert!(!d.has_open_nonterminals());
    }

    #[test]
    fn instance_param_values_flow_into_derived_tree() {
        let (g, mut t) = tiny_grammar();
        t.root.params[0] = 3.25;
        let d = t.derived(&g);
        assert!(d.frontier().contains(&Token::Param {
            kind: 0,
            value: 3.25
        }));
    }

    #[test]
    fn lexeme_values_flow_into_derived_tree() {
        let (g, mut t) = tiny_grammar();
        t.node_mut(&[0]).lexemes[0] = Token::Param {
            kind: 1,
            value: 0.75,
        };
        let d = t.derived(&g);
        assert!(d.frontier().contains(&Token::Param {
            kind: 1,
            value: 0.75
        }));
    }

    #[test]
    fn reachable_len_excludes_spliced_out_feet() {
        let (g, t) = tiny_grammar();
        let d = t.derived(&g);
        // Arena holds garbage foot nodes; reachable set must not.
        assert!(d.reachable_len() < d.nodes.len());
        assert_eq!(d.frontier().len(), 7);
    }
}
