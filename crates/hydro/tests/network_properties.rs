//! Property tests over *random* river networks: the flow mass balance and
//! the topology machinery must hold on any valid tree-shaped network, not
//! just the Nakdong.

use gmr_hydro::flow::route_flows;
use gmr_hydro::network::{Edge, RiverNetwork, Station, StationId, StationKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a random tree-shaped network: node 0 is the outlet; every other
/// node drains to a random node with a smaller index (guaranteeing a DAG
/// with a single outlet).
fn random_network(seed: u64, n: usize) -> RiverNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let stations: Vec<Station> = (0..n)
        .map(|i| Station {
            name: format!("N{i}"),
            kind: if rng.gen_bool(0.2) && i != 0 {
                StationKind::Virtual
            } else {
                StationKind::Measuring
            },
            retention: rng.gen_range(0.0..0.6),
        })
        .collect();
    let edges: Vec<Edge> = (1..n)
        .map(|i| Edge {
            from: StationId(i),
            to: StationId(rng.gen_range(0..i)),
            distance_km: rng.gen_range(1.0..60.0),
            delay_days: rng.gen_range(1..4),
        })
        .collect();
    RiverNetwork::new(stations, edges).expect("construction guarantees validity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_networks_validate_and_have_one_outlet(seed in any::<u64>(), n in 2usize..20) {
        let net = random_network(seed, n);
        prop_assert_eq!(net.len(), n);
        prop_assert_eq!(net.outlet(), StationId(0));
        // Topological order puts every station after all its upstreams.
        let order = net.topo_order();
        for e in net.edges() {
            let pos = |id: StationId| order.iter().position(|&s| s == id).expect("in order");
            prop_assert!(pos(e.from) < pos(e.to));
        }
    }

    #[test]
    fn flows_stay_nonnegative_and_finite(seed in any::<u64>(), n in 2usize..15) {
        let net = random_network(seed, n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF10);
        let days = 50;
        let runoff: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..days).map(|_| rng.gen_range(-5.0..40.0)).collect())
            .collect();
        let init: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let flows = route_flows(&net, &runoff, &init, days);
        for series in &flows {
            prop_assert_eq!(series.len(), days);
            for &f in series {
                prop_assert!(f.is_finite() && f >= 0.0);
            }
        }
    }

    #[test]
    fn lossless_network_conserves_steady_state_inflow(seed in any::<u64>(), n in 2usize..12) {
        // Zero retention + constant headwater inflow: total outlet flow
        // converges to the sum of all runoff, regardless of topology.
        let base = random_network(seed, n);
        let stations: Vec<Station> = base
            .stations()
            .map(|(_, s)| Station { name: s.name.clone(), kind: s.kind, retention: 0.0 })
            .collect();
        let net = RiverNetwork::new(stations, base.edges().to_vec()).expect("still valid");
        let days = 600;
        let per_station = 3.0;
        let runoff: Vec<Vec<f64>> = (0..n).map(|_| vec![per_station; days]).collect();
        let flows = route_flows(&net, &runoff, &vec![0.0; n], days);
        let outlet_flow = flows[net.outlet().0][days - 1];
        let expected = per_station * n as f64;
        prop_assert!(
            (outlet_flow - expected).abs() < 1e-6,
            "outlet {} != {}", outlet_flow, expected
        );
    }

    #[test]
    fn retention_reaches_the_analytic_steady_state(seed in any::<u64>(), n in 2usize..12) {
        // Eq. 9's measured flow at a station includes its retained water, so
        // at the outlet (which discharges nothing onward) the steady state is
        // total_inflow / (1 − r_outlet): retained water recirculates into the
        // next day's measurement. Interior retention only delays transport.
        let net = random_network(seed, n);
        let days = 3000;
        let per_station = 2.0;
        let runoff: Vec<Vec<f64>> = (0..n).map(|_| vec![per_station; days]).collect();
        let flows = route_flows(&net, &runoff, &vec![0.0; n], days);
        let outlet = net.outlet().0;
        let r_out = net.station(net.outlet()).retention;
        let expected = per_station * n as f64 / (1.0 - r_out);
        prop_assert!(
            (flows[outlet][days - 1] - expected).abs() / expected < 0.05,
            "outlet {} vs analytic {}", flows[outlet][days - 1], expected
        );
        // Growth toward the fixed point from below — no overshoot.
        prop_assert!(flows[outlet].iter().all(|&f| f <= expected * 1.01));
    }
}

/// Generate a random *braided* network: heavier preferential attachment
/// onto nodes that already have a child, so multi-parent confluences are
/// common (the scenario engine's braided topologies look like this), with
/// one forced confluence so every sampled network genuinely merges.
fn braided_network(seed: u64, n: usize) -> RiverNetwork {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB8A1);
    let mut child_count = vec![0usize; n];
    let mut parent = vec![0usize; n];
    for (i, p) in parent.iter_mut().enumerate().skip(1) {
        // Prefer a parent that is already a junction: scan a few random
        // candidates and keep the busiest.
        let mut best = rng.gen_range(0..i);
        for _ in 0..2 {
            let c = rng.gen_range(0..i);
            if child_count[c] > child_count[best] {
                best = c;
            }
        }
        *p = best;
        child_count[best] += 1;
    }
    if n >= 3 && !child_count.iter().any(|&c| c >= 2) {
        // Degenerate chain: rewire the tail onto the second-to-last
        // node's parent to force one confluence.
        child_count[parent[n - 1]] -= 1;
        parent[n - 1] = parent[n - 2];
        child_count[parent[n - 1]] += 1;
    }
    let stations: Vec<Station> = (0..n)
        .map(|i| Station {
            name: format!("B{i}"),
            // In-degree >= 2 nodes are virtual confluences, like the
            // generated scenario topologies.
            kind: if i != 0 && child_count[i] >= 2 {
                StationKind::Virtual
            } else {
                StationKind::Measuring
            },
            retention: 0.0,
        })
        .collect();
    let edges: Vec<Edge> = (1..n)
        .map(|i| Edge {
            from: StationId(i),
            to: StationId(parent[i]),
            distance_km: rng.gen_range(1.0..60.0),
            delay_days: rng.gen_range(1..4),
        })
        .collect();
    RiverNetwork::new(stations, edges).expect("construction guarantees validity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `topo_order` on large braided DAGs (up to 256 stations): a
    /// permutation of all stations, outlet last, and every edge points
    /// later in the order.
    #[test]
    fn topo_order_is_a_permutation_respecting_every_edge(seed in any::<u64>(), n in 2usize..=256) {
        let net = braided_network(seed, n);
        let order = net.topo_order();
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![usize::MAX; n];
        for (p, &s) in order.iter().enumerate() {
            prop_assert_eq!(pos[s.0], usize::MAX, "station listed twice");
            pos[s.0] = p;
        }
        prop_assert_eq!(*order.last().unwrap(), net.outlet(), "outlet drains last");
        for e in net.edges() {
            prop_assert!(
                pos[e.from.0] < pos[e.to.0],
                "edge {:?} -> {:?} violates topo order", e.from, e.to
            );
        }
    }

    /// Confluence merging: in a lossless braided network under constant
    /// runoff, every station's steady-state flow is the sum of runoff over
    /// its upstream closure — i.e. a confluence's flow is exactly its
    /// tributaries' flows merged, with nothing duplicated or dropped.
    #[test]
    fn confluences_merge_exactly_their_upstream_closures(seed in any::<u64>(), n in 3usize..40) {
        let net = braided_network(seed, n);
        // Out-degree <= 1 makes the network a tree, so upstream closures
        // are disjoint: |closure(s)| = 1 + sum over direct upstreams.
        let mut closure = vec![1usize; n];
        for &s in net.topo_order() {
            for e in net.upstream_of(s) {
                closure[s.0] += closure[e.from.0];
            }
        }
        prop_assert_eq!(closure[net.outlet().0], n);
        let n_confluences = net
            .stations()
            .filter(|(sid, _)| net.upstream_of(*sid).count() >= 2)
            .count();
        prop_assert!(n_confluences >= 1, "braided generator must merge somewhere");

        let days = 1200;
        let per_station = 2.0;
        let runoff: Vec<Vec<f64>> = (0..n).map(|_| vec![per_station; days]).collect();
        let flows = route_flows(&net, &runoff, &vec![0.0; n], days);
        for (sid, _) in net.stations() {
            let expected = per_station * closure[sid.0] as f64;
            prop_assert!(
                (flows[sid.0][days - 1] - expected).abs() < 1e-6,
                "station {:?}: steady flow {} != merged closure {}",
                sid, flows[sid.0][days - 1], expected
            );
        }
    }
}
