//! Property tests over *random* river networks: the flow mass balance and
//! the topology machinery must hold on any valid tree-shaped network, not
//! just the Nakdong.

use gmr_hydro::flow::route_flows;
use gmr_hydro::network::{Edge, RiverNetwork, Station, StationId, StationKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a random tree-shaped network: node 0 is the outlet; every other
/// node drains to a random node with a smaller index (guaranteeing a DAG
/// with a single outlet).
fn random_network(seed: u64, n: usize) -> RiverNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let stations: Vec<Station> = (0..n)
        .map(|i| Station {
            name: format!("N{i}"),
            kind: if rng.gen_bool(0.2) && i != 0 {
                StationKind::Virtual
            } else {
                StationKind::Measuring
            },
            retention: rng.gen_range(0.0..0.6),
        })
        .collect();
    let edges: Vec<Edge> = (1..n)
        .map(|i| Edge {
            from: StationId(i),
            to: StationId(rng.gen_range(0..i)),
            distance_km: rng.gen_range(1.0..60.0),
            delay_days: rng.gen_range(1..4),
        })
        .collect();
    RiverNetwork::new(stations, edges).expect("construction guarantees validity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_networks_validate_and_have_one_outlet(seed in any::<u64>(), n in 2usize..20) {
        let net = random_network(seed, n);
        prop_assert_eq!(net.len(), n);
        prop_assert_eq!(net.outlet(), StationId(0));
        // Topological order puts every station after all its upstreams.
        let order = net.topo_order();
        for e in net.edges() {
            let pos = |id: StationId| order.iter().position(|&s| s == id).expect("in order");
            prop_assert!(pos(e.from) < pos(e.to));
        }
    }

    #[test]
    fn flows_stay_nonnegative_and_finite(seed in any::<u64>(), n in 2usize..15) {
        let net = random_network(seed, n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF10);
        let days = 50;
        let runoff: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..days).map(|_| rng.gen_range(-5.0..40.0)).collect())
            .collect();
        let init: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let flows = route_flows(&net, &runoff, &init, days);
        for series in &flows {
            prop_assert_eq!(series.len(), days);
            for &f in series {
                prop_assert!(f.is_finite() && f >= 0.0);
            }
        }
    }

    #[test]
    fn lossless_network_conserves_steady_state_inflow(seed in any::<u64>(), n in 2usize..12) {
        // Zero retention + constant headwater inflow: total outlet flow
        // converges to the sum of all runoff, regardless of topology.
        let base = random_network(seed, n);
        let stations: Vec<Station> = base
            .stations()
            .map(|(_, s)| Station { name: s.name.clone(), kind: s.kind, retention: 0.0 })
            .collect();
        let net = RiverNetwork::new(stations, base.edges().to_vec()).expect("still valid");
        let days = 600;
        let per_station = 3.0;
        let runoff: Vec<Vec<f64>> = (0..n).map(|_| vec![per_station; days]).collect();
        let flows = route_flows(&net, &runoff, &vec![0.0; n], days);
        let outlet_flow = flows[net.outlet().0][days - 1];
        let expected = per_station * n as f64;
        prop_assert!(
            (outlet_flow - expected).abs() < 1e-6,
            "outlet {} != {}", outlet_flow, expected
        );
    }

    #[test]
    fn retention_reaches_the_analytic_steady_state(seed in any::<u64>(), n in 2usize..12) {
        // Eq. 9's measured flow at a station includes its retained water, so
        // at the outlet (which discharges nothing onward) the steady state is
        // total_inflow / (1 − r_outlet): retained water recirculates into the
        // next day's measurement. Interior retention only delays transport.
        let net = random_network(seed, n);
        let days = 3000;
        let per_station = 2.0;
        let runoff: Vec<Vec<f64>> = (0..n).map(|_| vec![per_station; days]).collect();
        let flows = route_flows(&net, &runoff, &vec![0.0; n], days);
        let outlet = net.outlet().0;
        let r_out = net.station(net.outlet()).retention;
        let expected = per_station * n as f64 / (1.0 - r_out);
        prop_assert!(
            (flows[outlet][days - 1] - expected).abs() / expected < 0.05,
            "outlet {} vs analytic {}", flows[outlet][days - 1], expected
        );
        // Growth toward the fixed point from below — no overshoot.
        prop_assert!(flows[outlet].iter().all(|&f| f <= expected * 1.01));
    }
}
