//! Dataset import/export.
//!
//! The paper ships its data as flat files; this module does the same so a
//! downstream user can (a) inspect the synthetic record with ordinary
//! tools, and (b) swap in a *real* monitoring record without touching any
//! code — the CSV schema is the only contract.
//!
//! Schema (one file per dataset):
//!
//! ```csv
//! station,day,flow,chla,Vlgt,Vn,Vp,Vsi,Vtmp,Vdo,Vcd,Vph,Valk,Vsd
//! S1,0,102.35,12.41,8.21,2.05,0.049,2.98,4.33,12.9,311.2,7.61,54.2,1.84
//! ```
//!
//! Station rows may appear in any order; days must be dense (0..days) per
//! station. Network topology, split boundaries and metadata travel in a
//! small sidecar header (`# key=value` comment lines at the top).

use crate::data::{RiverDataset, Split, StationSeries};
use crate::network::RiverNetwork;
use crate::vars::{NAMES, NUM_VARS};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised by dataset import.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(io::Error),
    /// Structural problem in the file.
    Malformed { line: usize, msg: String },
    /// The file's stations do not match the expected network.
    StationMismatch(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Malformed { line, msg } => write!(f, "line {line}: {msg}"),
            IoError::StationMismatch(name) => write!(f, "unknown station '{name}'"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serialise a dataset to the CSV schema (with the metadata header).
pub fn to_csv(ds: &RiverDataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# start_year={}", ds.start_year);
    let _ = writeln!(out, "# days={}", ds.days);
    let _ = writeln!(out, "# train={}..{}", ds.train.start, ds.train.end);
    let _ = writeln!(out, "# test={}..{}", ds.test.start, ds.test.end);
    let _ = writeln!(out, "# target={}", ds.network.station(ds.target).name);
    out.push_str("station,day,flow,chla");
    for name in NAMES {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    for (sid, st) in ds.network.stations() {
        let series = &ds.stations[sid.0];
        for day in 0..ds.days {
            let _ = write!(
                out,
                "{},{},{:.6},{:.6}",
                st.name, day, series.flow[day], series.chla[day]
            );
            for v in 0..NUM_VARS {
                let _ = write!(out, ",{:.6}", series.vars[day][v]);
            }
            out.push('\n');
        }
    }
    out
}

/// Write a dataset to a file.
pub fn save_csv(ds: &RiverDataset, path: impl AsRef<Path>) -> Result<(), IoError> {
    fs::write(path, to_csv(ds))?;
    Ok(())
}

/// Parse a dataset from the CSV schema, attaching it to `network` (the
/// station names in the file must all resolve against it).
pub fn from_csv(text: &str, network: RiverNetwork) -> Result<RiverDataset, IoError> {
    let mut start_year = 1996i32;
    let mut days = 0usize;
    let mut train = Split { start: 0, end: 0 };
    let mut test = Split { start: 0, end: 0 };
    let mut target_name = String::from("S1");

    let parse_range = |v: &str, line: usize| -> Result<Split, IoError> {
        let (a, b) = v.split_once("..").ok_or_else(|| IoError::Malformed {
            line,
            msg: format!("bad range '{v}'"),
        })?;
        let parse = |s: &str| {
            s.trim().parse::<usize>().map_err(|_| IoError::Malformed {
                line,
                msg: format!("bad number '{s}'"),
            })
        };
        Ok(Split {
            start: parse(a)?,
            end: parse(b)?,
        })
    };

    let mut header_seen = false;
    let mut stations: Vec<StationSeries> = Vec::new();
    let mut filled: Vec<Vec<bool>> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            if let Some((k, v)) = meta.split_once('=') {
                match k.trim() {
                    "start_year" => {
                        start_year = v.trim().parse().map_err(|_| IoError::Malformed {
                            line: line_no,
                            msg: "bad start_year".into(),
                        })?;
                    }
                    "days" => {
                        days = v.trim().parse().map_err(|_| IoError::Malformed {
                            line: line_no,
                            msg: "bad days".into(),
                        })?;
                        stations = (0..network.len())
                            .map(|_| StationSeries::zeroed(days))
                            .collect();
                        filled = vec![vec![false; days]; network.len()];
                    }
                    "train" => train = parse_range(v.trim(), line_no)?,
                    "test" => test = parse_range(v.trim(), line_no)?,
                    "target" => target_name = v.trim().to_string(),
                    _ => {}
                }
            }
            continue;
        }
        if !header_seen {
            // Column header row.
            if !line.starts_with("station,") {
                return Err(IoError::Malformed {
                    line: line_no,
                    msg: "expected column header".into(),
                });
            }
            header_seen = true;
            continue;
        }
        let mut fields = line.split(',');
        let name = fields.next().ok_or_else(|| IoError::Malformed {
            line: line_no,
            msg: "missing station".into(),
        })?;
        let sid = network
            .by_name(name)
            .ok_or_else(|| IoError::StationMismatch(name.to_string()))?;
        if stations.is_empty() {
            return Err(IoError::Malformed {
                line: line_no,
                msg: "data row before the '# days=' header".into(),
            });
        }
        let mut next_f64 = |what: &str| -> Result<f64, IoError> {
            fields
                .next()
                .ok_or_else(|| IoError::Malformed {
                    line: line_no,
                    msg: format!("missing {what}"),
                })?
                .trim()
                .parse::<f64>()
                .map_err(|_| IoError::Malformed {
                    line: line_no,
                    msg: format!("bad {what}"),
                })
        };
        let day = next_f64("day")? as usize;
        if day >= days {
            return Err(IoError::Malformed {
                line: line_no,
                msg: format!("day {day} out of range (days={days})"),
            });
        }
        let series = &mut stations[sid.0];
        series.flow[day] = next_f64("flow")?;
        series.chla[day] = next_f64("chla")?;
        for (v, name) in NAMES.iter().enumerate() {
            series.vars[day][v] = next_f64(name)?;
        }
        filled[sid.0][day] = true;
    }

    if days == 0 {
        return Err(IoError::Malformed {
            line: 0,
            msg: "missing '# days=' header".into(),
        });
    }
    for (sid, st) in network.stations() {
        if let Some(day) = filled[sid.0].iter().position(|f| !f) {
            return Err(IoError::Malformed {
                line: 0,
                msg: format!("station {} missing day {day}", st.name),
            });
        }
    }
    let target = network
        .by_name(&target_name)
        .ok_or(IoError::StationMismatch(target_name))?;
    Ok(RiverDataset {
        network,
        days,
        start_year,
        stations,
        target,
        train,
        test,
    })
}

/// Read a dataset file.
pub fn load_csv(path: impl AsRef<Path>, network: RiverNetwork) -> Result<RiverDataset, IoError> {
    let text = fs::read_to_string(path)?;
    from_csv(&text, network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};

    fn small() -> RiverDataset {
        generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1996,
            train_end_year: 1996,
            ..Default::default()
        })
    }

    #[test]
    fn round_trip_preserves_everything_within_precision() {
        let ds = small();
        let text = to_csv(&ds);
        let back = from_csv(&text, RiverNetwork::nakdong()).expect("parses");
        assert_eq!(back.days, ds.days);
        assert_eq!(back.start_year, ds.start_year);
        assert_eq!(back.train, ds.train);
        assert_eq!(back.test, ds.test);
        assert_eq!(back.target, ds.target);
        for s in 0..ds.stations.len() {
            for day in 0..ds.days {
                assert!((back.stations[s].chla[day] - ds.stations[s].chla[day]).abs() < 1e-5);
                assert!((back.stations[s].flow[day] - ds.stations[s].flow[day]).abs() < 1e-5);
                for v in 0..NUM_VARS {
                    assert!(
                        (back.stations[s].vars[day][v] - ds.stations[s].vars[day][v]).abs() < 1e-5
                    );
                }
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let ds = small();
        let dir = std::env::temp_dir().join("gmr-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nakdong.csv");
        save_csv(&ds, &path).expect("writes");
        let back = load_csv(&path, RiverNetwork::nakdong()).expect("reads");
        assert_eq!(back.days, ds.days);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_unknown_station() {
        let text =
            "# days=1\nstation,day,flow,chla,a,b,c,d,e,f,g,h,i,j\nXX,0,1,1,0,0,0,0,0,0,0,0,0,0\n";
        let err = from_csv(text, RiverNetwork::nakdong()).unwrap_err();
        assert!(matches!(err, IoError::StationMismatch(_)));
    }

    #[test]
    fn rejects_missing_days() {
        let ds = small();
        let text = to_csv(&ds);
        // Drop the final data row: some station now misses a day.
        let truncated: String = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            lines.join("\n")
        };
        let err = from_csv(&truncated, RiverNetwork::nakdong()).unwrap_err();
        assert!(matches!(err, IoError::Malformed { .. }), "{err}");
    }

    #[test]
    fn rejects_headerless_input() {
        let err = from_csv("S1,0,1,1", RiverNetwork::nakdong()).unwrap_err();
        assert!(matches!(err, IoError::Malformed { .. }));
    }

    #[test]
    fn rejects_day_out_of_range() {
        let mut text = String::from("# days=1\nstation,day,flow,chla");
        for n in NAMES {
            text.push(',');
            text.push_str(n);
        }
        text.push_str("\nS1,5,1,1,0,0,0,0,0,0,0,0,0,0\n");
        let err = from_csv(&text, RiverNetwork::nakdong()).unwrap_err();
        assert!(matches!(err, IoError::Malformed { .. }));
    }
}
