//! Synthetic Nakdong dataset generator.
//!
//! The paper's 13-year observational dataset (1996–2008, nine stations) is
//! not publicly retrievable, so this module simulates a *ground-truth* river
//! ecosystem over the exact Nakdong topology and then observes it the way
//! the monitoring network did: daily sensors for physical variables, weekly
//! (S1) / bi-weekly (elsewhere) grab samples for nutrients and
//! chlorophyll-a, linearly re-interpolated to daily resolution.
//!
//! The ground truth deliberately **extends** the expert model of eqs. 1–2
//! with the hidden mechanisms the paper reports GMR discovering (§IV-E):
//!
//! * zooplankton mortality rises with water temperature (cf. eq. 7);
//! * phytoplankton growth receives an additive alkalinity/pH/conductivity
//!   term (cf. eq. 8);
//! * its rate constants sit *near* the Table III prior means but not on
//!   them.
//!
//! That combination is what gives the evaluation its published shape:
//! the uncalibrated expert model (MANUAL) fails badly, parameter calibration
//! closes most of the gap, and only structural revision can close the rest —
//! by finding exactly the pH/alkalinity/temperature structure hidden here.
//!
//! Everything is deterministic for a fixed seed.

use crate::data::{
    days_in_range, days_in_year, subsample_and_interpolate, RiverDataset, Split, StationSeries,
};
use crate::flow::{route_flows, WaterBody};
use crate::network::{RiverNetwork, StationKind};
use crate::vars::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// RNG seed; every draw flows from this.
    pub seed: u64,
    /// First calendar year (paper: 1996).
    pub start_year: i32,
    /// Last calendar year, inclusive (paper: 2008).
    pub end_year: i32,
    /// Last *training* year, inclusive (paper: 2005).
    pub train_end_year: i32,
    /// Relative observation noise applied to chlorophyll-a grab samples.
    pub obs_noise: f64,
    /// Standard deviation of the latent zooplankton-mortality log-AR(1)
    /// innovation (0 disables the unobservable ecological forcing).
    pub process_noise: f64,
    /// Eutrophication trend: fractional nutrient-loading increase per study
    /// year.
    pub nutrient_trend: f64,
    /// Warming trend in °C per study year.
    pub warming: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            seed: 0x6d72_6776,
            start_year: 1996,
            end_year: 2008,
            train_end_year: 2005,
            obs_noise: 0.10,
            process_noise: 0.07,
            nutrient_trend: 0.03,
            warming: 0.11,
        }
    }
}

/// Ground-truth biological state carried by each water body.
#[derive(Debug, Clone, Copy)]
struct TruthState {
    bphy: f64,
    bzoo: f64,
    vn: f64,
    vp: f64,
    vsi: f64,
}

impl TruthState {
    fn initial() -> Self {
        TruthState {
            bphy: 8.0,
            bzoo: 1.2,
            vn: 2.2,
            vp: 0.05,
            vsi: 3.0,
        }
    }
}

/// Ground-truth rate constants: near the Table III priors, but displaced —
/// so calibration helps and the *structure* gaps remain.
struct TruthParams {
    cua: f64,
    cbl: f64,
    cn: f64,
    cp: f64,
    csi: f64,
    cpt: f64,
    cbtp1: f64,
    cbtp2: f64,
    cbra: f64,
    cmfr: f64,
    cfmin: f64,
    cfs: f64,
    cuz: f64,
    cbrz: f64,
    cbmt: f64,
    cdz: f64,
    /// Hidden: amplitude of the alkalinity/pH/conductivity growth term.
    k_ph: f64,
    /// Hidden: temperature sensitivity of zooplankton mortality.
    k_ztmp: f64,
}

impl TruthParams {
    fn nakdong() -> Self {
        TruthParams {
            cua: 1.62,   // prior mean 1.89
            cbl: 24.5,   // prior mean 26.78
            cn: 0.040,   // prior 0.0351
            cp: 0.012,   // prior 0.00167 (stronger P limitation closes blooms)
            csi: 0.0055, // prior 0.00467
            cpt: 0.013,  // prior 0.005 (sharper optima: warm summers roll over)
            cbtp1: 26.0, // prior 27.0
            cbtp2: 6.5,  // prior 5.0
            cbra: 0.045, // prior 0.021
            cmfr: 0.34,  // prior 0.19 (strong grazing: internal cycles)
            cfmin: 0.8,  // prior 1.0
            cfs: 5.2,    // prior 5.0
            cuz: 0.22,   // prior 0.15
            cbrz: 0.06,  // prior 0.05
            cbmt: 0.05,  // prior 0.04
            cdz: 0.028,  // prior 0.04
            k_ph: 1.35,
            k_ztmp: 0.045,
        }
    }
}

/// Per-station environment offsets (tributaries carry more nutrients; the
/// lower main channel is warmer and more conductive). Scenario generators
/// supply one of these per station to drive [`generate_on`] over networks
/// other than the Nakdong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationEnv {
    /// Multiplier on the nutrient loading base (1.0 = reference reach).
    pub nutrient_scale: f64,
    /// Additive water-temperature offset in °C.
    pub temp_offset: f64,
    /// Additive conductivity offset in µS/cm.
    pub cond_offset: f64,
    /// Catchment responsiveness: how strongly rain becomes runoff.
    pub catchment: f64,
}

impl StationEnv {
    /// The env of a pure mixing point (virtual confluences).
    pub fn neutral() -> StationEnv {
        StationEnv {
            nutrient_scale: 1.0,
            temp_offset: 0.0,
            cond_offset: 0.0,
            catchment: 0.0,
        }
    }
}

fn station_env(name: &str) -> StationEnv {
    match name {
        // Lower main channel: warm, polluted, slow.
        "S1" => StationEnv {
            nutrient_scale: 1.15,
            temp_offset: 1.2,
            cond_offset: 60.0,
            catchment: 9.0,
        },
        "S2" => StationEnv {
            nutrient_scale: 1.10,
            temp_offset: 0.9,
            cond_offset: 45.0,
            catchment: 7.0,
        },
        "S3" => StationEnv {
            nutrient_scale: 1.05,
            temp_offset: 0.6,
            cond_offset: 30.0,
            catchment: 6.0,
        },
        "S4" => StationEnv {
            nutrient_scale: 1.00,
            temp_offset: 0.3,
            cond_offset: 20.0,
            catchment: 5.0,
        },
        "S5" => StationEnv {
            nutrient_scale: 0.95,
            temp_offset: 0.0,
            cond_offset: 10.0,
            catchment: 5.0,
        },
        "S6" => StationEnv {
            nutrient_scale: 0.90,
            temp_offset: -0.5,
            cond_offset: 0.0,
            catchment: 4.0,
        },
        // Tributaries: nutrient-rich agricultural/urban feeds.
        "T1" => StationEnv {
            nutrient_scale: 1.45,
            temp_offset: 0.8,
            cond_offset: 90.0,
            catchment: 3.0,
        },
        "T2" => StationEnv {
            nutrient_scale: 1.35,
            temp_offset: 0.5,
            cond_offset: 70.0,
            catchment: 3.0,
        },
        "T3" => StationEnv {
            nutrient_scale: 1.25,
            temp_offset: 0.2,
            cond_offset: 55.0,
            catchment: 2.5,
        },
        // Virtual stations: pure mixing points (env unused beyond defaults).
        _ => StationEnv::neutral(),
    }
}

const TWO_PI: f64 = std::f64::consts::TAU;

/// Gaussian draw via Box–Muller (keeps us off rand_distr).
fn gauss<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + sd * (-2.0 * u1.ln()).sqrt() * (TWO_PI * u2).cos()
}

/// Liebig nutrient limitation (eq. 1's `g`).
fn g_nutrient(p: &TruthParams, n: f64, ph: f64, si: f64) -> f64 {
    let a = n / (p.cn + n);
    let b = ph / (p.cp + ph);
    let c = si / (p.csi + si);
    a.min(b).min(c)
}

/// Two-optimum temperature response (eq. 1's `h`).
fn h_temp(p: &TruthParams, t: f64) -> f64 {
    let d1 = t - p.cbtp1;
    let d2 = t - p.cbtp2;
    (-p.cpt * d1 * d1).exp().max((-p.cpt * d2 * d2).exp())
}

/// Steele light response (eq. 1's `f`).
fn f_light(p: &TruthParams, l: f64) -> f64 {
    (l / p.cbl) * (1.0 - l / p.cbl).exp()
}

/// One Euler day of the ground-truth biology, *including* the hidden
/// mechanisms. `zoo_mort_mult` is a latent multiplier on zooplankton
/// mortality (fish predation waves, pesticide pulses — real rivers have
/// ecological events no monitoring network records). Returns the new
/// (bphy, bzoo).
#[allow(clippy::too_many_arguments)] // a forcing row reads clearer than a struct here
fn truth_step(
    p: &TruthParams,
    st: &TruthState,
    vlgt: f64,
    vtmp: f64,
    vph: f64,
    valk: f64,
    vcd: f64,
    zoo_mort_mult: f64,
) -> (f64, f64) {
    let lambda = ((st.bphy - p.cfmin) / (p.cfs + st.bphy - p.cfmin)).clamp(0.0, 1.0);
    let phi = p.cmfr * lambda;
    // Self-shading: dense blooms attenuate their own light supply. This is
    // the density dependence that keeps the ecosystem bounded.
    let shade = (-0.005 * st.bphy).exp();
    let mu_phy =
        p.cua * f_light(p, vlgt) * g_nutrient(p, st.vn, st.vp, st.vsi) * h_temp(p, vtmp) * shade;
    // Hidden mechanism 1 (cf. discovered eq. 8): carbonate-system boost.
    let ph_term = p.k_ph * valk / (10.0 * vph - 0.08 * vcd + 84.0).max(1.0);
    // Grazing takes the paper's form: −B_Zoo · φ (φ = C_MFR · λ_Phy).
    let dbphy = st.bphy * (mu_phy - p.cbra) - st.bzoo * phi + ph_term;
    let mu_zoo = p.cuz * lambda;
    let gamma_zoo = p.cbrz + p.cbmt * phi;
    // Hidden mechanism 2 (cf. discovered eq. 7): warm water kills grazers.
    let delta_zoo = (p.cdz * (1.0 + p.k_ztmp * (vtmp - 14.0)) * zoo_mort_mult).max(0.004);
    let dbzoo = st.bzoo * (mu_zoo - gamma_zoo - delta_zoo);
    let bphy = (st.bphy + dbphy).clamp(0.05, 400.0);
    let bzoo = (st.bzoo + dbzoo).clamp(0.02, 60.0);
    (bphy, bzoo)
}

/// Generate the full dataset over the Nakdong network of Fig. 8.
pub fn generate(cfg: &SyntheticConfig) -> RiverDataset {
    let net = RiverNetwork::nakdong();
    let envs: Vec<StationEnv> = net
        .stations()
        .map(|(_, st)| station_env(&st.name))
        .collect();
    generate_on(cfg, net, &envs)
}

/// Generate the full dataset over an arbitrary validated network.
///
/// `envs[i]` is the environment of station `i`. The ground-truth physics,
/// hidden mechanisms, and observation model are exactly those of
/// [`generate`]; only the topology and per-station environments vary. All
/// randomness flows from `cfg.seed`, and the draw order is fixed by the
/// network's station count and topological order — so for a fixed
/// `(cfg, net, envs)` the dataset is bit-identical across runs.
pub fn generate_on(cfg: &SyntheticConfig, net: RiverNetwork, envs: &[StationEnv]) -> RiverDataset {
    assert_eq!(envs.len(), net.len(), "one StationEnv per station required");
    let days = days_in_range(cfg.start_year, cfg.end_year);
    let train_days = days_in_range(cfg.start_year, cfg.train_end_year);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let p = TruthParams::nakdong();
    let n_st = net.len();

    // ---- Calendar: day-of-year and year index for every day. ----
    let mut doy = Vec::with_capacity(days);
    let mut year_idx = Vec::with_capacity(days);
    {
        let mut year = cfg.start_year;
        let mut d = 0usize;
        while doy.len() < days {
            doy.push(d as f64);
            year_idx.push((year - cfg.start_year) as f64);
            d += 1;
            if d >= days_in_year(year) {
                d = 0;
                year += 1;
            }
        }
    }
    // ---- Inter-annual regime drift. ----
    // The Nakdong catchment saw intensifying development over the study
    // period: nutrient loading trends upward, water warms slightly, and
    // monsoon strength varies by year. This is what separates process
    // models (which generalise across the shift) from black-box regressions
    // fitted to the 1996–2005 joint distribution.
    let n_years = (cfg.end_year - cfg.start_year + 1) as usize;
    let monsoon_strength: Vec<f64> = (0..n_years).map(|_| rng.gen_range(0.55..1.55)).collect();

    // ---- Weather: shared regional signal + station noise. ----
    // Rainfall (mm/day): East-Asian monsoon concentrated in Jun–Aug.
    let mut rain = vec![0.0f64; days];
    for (t, r) in rain.iter_mut().enumerate() {
        let season = doy[t];
        let monsoon = (160.0..=240.0).contains(&season);
        let strength = monsoon_strength[year_idx[t] as usize];
        let p_rain = if monsoon {
            (0.45 * strength).min(0.8)
        } else {
            0.18
        };
        if rng.gen_bool(p_rain) {
            let scale = if monsoon { 28.0 * strength } else { 7.0 };
            *r = -scale * rng.gen_range(1e-9_f64..1.0).ln(); // Exp(scale)
        }
    }
    // Latent ecological forcing: a slow log-AR(1) multiplier on
    // zooplankton mortality. Unobservable by any of the ten variables, it
    // decouples bloom timing from the measured forcings at month scales.
    let mut zoo_eta = 0.0f64;
    let mut zoo_mult = Vec::with_capacity(days);
    for _ in 0..days {
        zoo_eta = 0.985 * zoo_eta + gauss(&mut rng, 0.0, cfg.process_noise);
        zoo_mult.push(zoo_eta.clamp(-1.2, 1.2).exp());
    }
    // Regional temperature/irradiance AR(1) anomalies.
    let mut tmp_anom = 0.0f64;
    let mut regional_tmp = Vec::with_capacity(days);
    let mut regional_lgt = Vec::with_capacity(days);
    for t in 0..days {
        let phase = TWO_PI * (doy[t] - 110.0) / 365.0;
        tmp_anom = 0.85 * tmp_anom + gauss(&mut rng, 0.0, 0.9);
        let base_tmp = 13.5 + 10.5 * phase.sin() + cfg.warming * year_idx[t] + tmp_anom;
        regional_tmp.push(base_tmp);
        let lphase = TWO_PI * (doy[t] - 80.0) / 365.0;
        let cloud = if rain[t] > 1.0 {
            rng.gen_range(0.35..0.75)
        } else {
            rng.gen_range(0.75..1.05)
        };
        regional_lgt.push(((13.5 + 8.5 * lphase.sin()) * cloud).max(0.8));
    }

    // ---- Hydrology: runoff per station, then eq. 9 routing. ----
    let mut runoff = vec![vec![0.0f64; days]; n_st];
    for (sid, st) in net.stations() {
        let env = envs[sid.0];
        if st.kind == StationKind::Virtual {
            continue;
        }
        for t in 0..days {
            // Catchment turns rain into runoff with a 2-day recession tail,
            // plus a small groundwater baseflow at headwaters.
            let recent = rain[t]
                + 0.5 * rain.get(t.wrapping_sub(1)).copied().unwrap_or(0.0)
                + 0.25 * rain.get(t.wrapping_sub(2)).copied().unwrap_or(0.0);
            let base = if net.upstream_of(sid).count() == 0 {
                18.0
            } else {
                4.0
            };
            runoff[sid.0][t] = base + env.catchment * recent * 0.12;
        }
    }
    let init_flow = vec![60.0; n_st];
    let flows = route_flows(&net, &runoff, &init_flow, days);

    // ---- Ground-truth ecosystem: day-stepped, routed through the DAG. ----
    // Histories per station: truth state and the full variable row.
    let mut state_hist: Vec<Vec<TruthState>> = vec![Vec::with_capacity(days); n_st];
    let mut var_hist: Vec<Vec<[f64; NUM_VARS]>> = vec![Vec::with_capacity(days); n_st];

    for t in 0..days {
        for &sid in net.topo_order() {
            let s = sid.0;
            let st_meta = net.station(sid);
            let env = envs[s];

            // Merge upstream water bodies (lagged) with retained local water.
            let prev: TruthState = state_hist[s]
                .last()
                .copied()
                .unwrap_or_else(TruthState::initial);
            let mut parts: Vec<WaterBody> = Vec::new();
            let pack = |ts: &TruthState| {
                let mut a = [0.0; NUM_VARS];
                a[0] = ts.bphy;
                a[1] = ts.bzoo;
                a[2] = ts.vn;
                a[3] = ts.vp;
                a[4] = ts.vsi;
                a
            };
            let has_upstream = net.upstream_of(sid).count() > 0;
            if has_upstream {
                let prev_flow = if t > 0 { flows[s][t - 1] } else { flows[s][0] };
                parts.push(WaterBody {
                    flow: st_meta.retention * prev_flow + 1e-6,
                    attrs: pack(&prev),
                });
                for e in net.upstream_of(sid) {
                    let a = e.from.0;
                    let lag = t.saturating_sub(e.delay_days);
                    let up = state_hist[a]
                        .get(lag)
                        .copied()
                        .unwrap_or_else(TruthState::initial);
                    let upf = flows[a].get(lag).copied().unwrap_or(0.0);
                    parts.push(WaterBody {
                        flow: (1.0 - net.station(e.from).retention) * upf,
                        attrs: pack(&up),
                    });
                }
            }
            let mixed = if has_upstream {
                let m = WaterBody::merge(&parts);
                TruthState {
                    bphy: m.attrs[0],
                    bzoo: m.attrs[1],
                    vn: m.attrs[2],
                    vp: m.attrs[3],
                    vsi: m.attrs[4],
                }
            } else {
                prev
            };

            // Local physical environment.
            let vtmp =
                (regional_tmp[t] + env.temp_offset + gauss(&mut rng, 0.0, 0.3)).clamp(0.4, 33.5);
            let vlgt = (regional_lgt[t] * rng.gen_range(0.93..1.07)).clamp(0.5, 32.0);
            let flow = flows[s][t].max(1.0);
            let dilution = (80.0 / flow).min(2.5);
            let washin = (rain[t] * 0.012).min(0.6);

            // Nutrient dynamics: relax to a seasonal, flow-diluted base,
            // plus rain wash-in, minus algal uptake.
            let season_n = 1.0 + 0.25 * (TWO_PI * (doy[t] - 30.0) / 365.0).cos();
            // Eutrophication trend: +3% loading per study year.
            let loading = env.nutrient_scale * (1.0 + cfg.nutrient_trend * year_idx[t]);
            let base_n = 2.1 * loading * season_n * dilution.max(0.6);
            let base_p = 0.065 * loading * season_n * dilution.max(0.6);
            let base_si = 3.0 * loading * dilution.max(0.6);
            // Uptake scales with standing biomass; phosphorus is the
            // limiting element, so blooms visibly draw it down.
            let vn = (mixed.vn + 0.15 * (base_n - mixed.vn) + washin * 0.8 - 0.00030 * mixed.bphy
                + gauss(&mut rng, 0.0, 0.02))
            .max(0.02);
            let vp = (mixed.vp + 0.15 * (base_p - mixed.vp) + washin * 0.02 - 0.00030 * mixed.bphy
                + gauss(&mut rng, 0.0, 0.0008))
            .max(0.001);
            let vsi = (mixed.vsi + 0.12 * (base_si - mixed.vsi) + washin * 0.5
                - 0.00040 * mixed.bphy
                + gauss(&mut rng, 0.0, 0.03))
            .max(0.02);

            // Carbonate system & optics.
            let vcd = (270.0
                + env.cond_offset
                + 110.0 * (-flow / 120.0).exp()
                + gauss(&mut rng, 0.0, 6.0))
            .max(80.0);
            // pH tracks photosynthesis only weakly at the daily scale, and
            // is confounded by rain washout and a seasonal carbonate cycle
            // — informative for a process model, not a free readout of the
            // target for a regression.
            let vph = (7.55 + 0.0045 * mixed.bphy - 0.22 * washin
                + 0.10 * (TWO_PI * (doy[t] - 140.0) / 365.0).sin()
                + gauss(&mut rng, 0.0, 0.12))
            .clamp(6.3, 9.8);
            let valk = (52.0
                + 0.05 * (vcd - 270.0)
                + 6.0 * (TWO_PI * (doy[t] + 40.0) / 365.0).cos()
                + gauss(&mut rng, 0.0, 1.5))
            .max(10.0);
            let vdo =
                (14.2 - 0.33 * vtmp - 0.006 * mixed.bphy + gauss(&mut rng, 0.0, 0.45)).max(1.0);
            let vsd = ((2.8 / (1.0 + 0.008 * mixed.bphy + 1.4 * washin))
                + gauss(&mut rng, 0.0, 0.12))
            .max(0.1);

            // Biology: one Euler day on the mixed water body.
            let pre = TruthState {
                vn,
                vp,
                vsi,
                ..mixed
            };
            let (bphy, bzoo) = truth_step(&p, &pre, vlgt, vtmp, vph, valk, vcd, zoo_mult[t]);

            state_hist[s].push(TruthState {
                bphy,
                bzoo,
                vn,
                vp,
                vsi,
            });
            let mut row = [0.0; NUM_VARS];
            row[VLGT as usize] = vlgt;
            row[VN as usize] = vn;
            row[VP as usize] = vp;
            row[VSI as usize] = vsi;
            row[VTMP as usize] = vtmp;
            row[VDO as usize] = vdo;
            row[VCD as usize] = vcd;
            row[VPH as usize] = vph;
            row[VALK as usize] = valk;
            row[VSD as usize] = vsd;
            var_hist[s].push(row);
        }
    }

    // ---- Observation model: noise + measurement cadence. ----
    let outlet = net.outlet();
    let mut stations_out = Vec::with_capacity(n_st);
    for (sid, st_meta) in net.stations() {
        let s = sid.0;
        let mut series = StationSeries::zeroed(days);
        series.flow = flows[s].clone();
        // Chlorophyll-a grab samples with relative noise.
        let chla_true: Vec<f64> = state_hist[s].iter().map(|ts| ts.bphy).collect();
        let chla_noisy: Vec<f64> = chla_true
            .iter()
            .map(|&v| {
                (v * (1.0 + gauss(&mut rng, 0.0, cfg.obs_noise)) + gauss(&mut rng, 0.0, 0.8))
                    .max(0.05)
            })
            .collect();
        let interval = if sid == outlet { 7 } else { 14 };
        let chla_obs = if st_meta.kind == StationKind::Virtual {
            chla_true // virtual stations are not observed; keep truth for reference
        } else {
            subsample_and_interpolate(&chla_noisy, interval)
        };
        series.chla = chla_obs;
        // Nutrients share the grab-sample cadence; other variables are daily
        // sensor readings.
        for v in 0..NUM_VARS {
            let daily: Vec<f64> = var_hist[s].iter().map(|row| row[v]).collect();
            let observed =
                if matches!(v as u8, VN | VP | VSI) && st_meta.kind == StationKind::Measuring {
                    subsample_and_interpolate(&daily, interval)
                } else {
                    daily
                };
            for (day, val) in observed.into_iter().enumerate() {
                series.vars[day][v] = val;
            }
        }
        stations_out.push(series);
    }

    RiverDataset {
        network: net,
        days,
        start_year: cfg.start_year,
        stations: stations_out,
        target: outlet,
        train: Split {
            start: 0,
            end: train_days,
        },
        test: Split {
            start: train_days,
            end: days,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RiverDataset {
        generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1998,
            train_end_year: 1997,
            ..Default::default()
        })
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.stations[0].chla, b.stations[0].chla);
        assert_eq!(a.stations[3].vars, b.stations[3].vars);
    }

    #[test]
    fn seed_changes_data() {
        let a = small();
        let b = generate(&SyntheticConfig {
            seed: 999,
            start_year: 1996,
            end_year: 1998,
            train_end_year: 1997,
            ..Default::default()
        });
        assert_ne!(a.stations[0].chla, b.stations[0].chla);
    }

    #[test]
    fn dimensions_and_split() {
        let d = small();
        assert_eq!(d.days, 366 + 365 + 365);
        assert_eq!(d.train.len(), 366 + 365);
        assert_eq!(d.test.len(), 365);
        assert_eq!(d.stations.len(), 12);
        for s in &d.stations {
            assert_eq!(s.days(), d.days);
            assert_eq!(s.chla.len(), d.days);
            assert_eq!(s.flow.len(), d.days);
        }
        assert_eq!(d.network.station(d.target).name, "S1");
    }

    #[test]
    fn values_physically_plausible() {
        let d = small();
        for s in &d.stations {
            for row in &s.vars {
                assert!(
                    (0.0..=35.0).contains(&row[VTMP as usize]),
                    "temp {}",
                    row[VTMP as usize]
                );
                assert!(row[VLGT as usize] > 0.0 && row[VLGT as usize] < 35.0);
                assert!(row[VPH as usize] > 6.0 && row[VPH as usize] < 10.0);
                assert!(row[VN as usize] > 0.0);
                assert!(row[VP as usize] > 0.0);
                assert!(row[VDO as usize] > 0.0);
                assert!(row[VSD as usize] > 0.0);
            }
            for &c in &s.chla {
                assert!((0.0..=450.0).contains(&c), "chla {c}");
            }
            for &f in &s.flow {
                assert!(f >= 0.0);
            }
        }
    }

    #[test]
    fn seasonality_present_in_temperature() {
        let d = small();
        let s1 = d.target_series();
        // Mean July temp much warmer than mean January temp (year 1).
        let jan: f64 = (0..31).map(|t| s1.vars[t][VTMP as usize]).sum::<f64>() / 31.0;
        let jul: f64 = (182..213).map(|t| s1.vars[t][VTMP as usize]).sum::<f64>() / 31.0;
        assert!(jul - jan > 10.0, "jan {jan} jul {jul}");
    }

    #[test]
    fn blooms_exist_and_vary() {
        let d = small();
        let chla = &d.target_series().chla;
        let max = chla.iter().cloned().fold(0.0, f64::max);
        let mean = chla.iter().sum::<f64>() / chla.len() as f64;
        assert!(max > 2.0 * mean, "no blooms: max {max}, mean {mean}");
        assert!(mean > 1.0 && mean < 200.0, "implausible mean {mean}");
    }

    #[test]
    fn tributaries_more_nutrient_rich_than_headwater() {
        let d = small();
        let t1 = d.network.by_name("T1").unwrap();
        let s6 = d.network.by_name("S6").unwrap();
        let mean_n = |sid: crate::network::StationId| {
            let s = &d.stations[sid.0];
            s.vars.iter().map(|r| r[VN as usize]).sum::<f64>() / s.days() as f64
        };
        assert!(mean_n(t1) > mean_n(s6));
    }

    #[test]
    fn ph_correlates_with_biomass() {
        // The hidden mechanism must be recoverable: pH and chl-a co-move.
        let d = small();
        let s1 = d.target_series();
        let ph: Vec<f64> = s1.vars.iter().map(|r| r[VPH as usize]).collect();
        let n = ph.len() as f64;
        let mph = ph.iter().sum::<f64>() / n;
        let mch = s1.chla.iter().sum::<f64>() / n;
        let cov: f64 = ph
            .iter()
            .zip(&s1.chla)
            .map(|(a, b)| (a - mph) * (b - mch))
            .sum::<f64>()
            / n;
        let sph = (ph.iter().map(|a| (a - mph).powi(2)).sum::<f64>() / n).sqrt();
        let sch = (s1.chla.iter().map(|b| (b - mch).powi(2)).sum::<f64>() / n).sqrt();
        let corr = cov / (sph * sch);
        assert!(corr > 0.25, "pH–chla correlation too weak: {corr}");
    }

    #[test]
    fn regime_knobs_change_the_world() {
        let base = SyntheticConfig {
            start_year: 1996,
            end_year: 1998,
            train_end_year: 1997,
            ..Default::default()
        };
        let d0 = generate(&base);
        // Disabling the latent forcing changes the biology everywhere.
        let no_latent = generate(&SyntheticConfig {
            process_noise: 0.0,
            ..base.clone()
        });
        assert_ne!(d0.target_series().chla, no_latent.target_series().chla);
        // A strong warming trend lifts the final year's mean temperature
        // relative to the first by roughly the trend (±weather noise).
        let warm = generate(&SyntheticConfig {
            warming: 1.0,
            ..base.clone()
        });
        let mean_tmp = |ds: &RiverDataset, from: usize, to: usize| {
            let s = ds.target_series();
            (from..to).map(|t| s.vars[t][VTMP as usize]).sum::<f64>() / (to - from) as f64
        };
        let lift_warm = mean_tmp(&warm, 731, 1096) - mean_tmp(&warm, 0, 366);
        let lift_base = mean_tmp(&d0, 731, 1096) - mean_tmp(&d0, 0, 366);
        assert!(
            lift_warm - lift_base > 1.0,
            "warming knob too weak: {lift_warm} vs {lift_base}"
        );
        // A strong eutrophication trend lifts late-period nitrogen.
        let rich = generate(&SyntheticConfig {
            nutrient_trend: 0.5,
            ..base.clone()
        });
        let mean_n = |ds: &RiverDataset, from: usize, to: usize| {
            let s = ds.target_series();
            (from..to).map(|t| s.vars[t][VN as usize]).sum::<f64>() / (to - from) as f64
        };
        assert!(mean_n(&rich, 731, 1096) > 1.5 * mean_n(&rich, 0, 366));
    }

    #[test]
    fn generate_on_nakdong_matches_generate() {
        let cfg = SyntheticConfig {
            start_year: 1996,
            end_year: 1997,
            train_end_year: 1996,
            ..Default::default()
        };
        let a = generate(&cfg);
        let net = RiverNetwork::nakdong();
        let envs: Vec<StationEnv> = net
            .stations()
            .map(|(_, st)| station_env(&st.name))
            .collect();
        let b = generate_on(&cfg, net, &envs);
        for (sa, sb) in a.stations.iter().zip(&b.stations) {
            assert_eq!(sa.chla, sb.chla);
            assert_eq!(sa.vars, sb.vars);
            assert_eq!(sa.flow, sb.flow);
        }
    }

    #[test]
    fn generate_on_custom_network_deterministic() {
        use crate::network::{Edge, Station, StationId};
        // A 4-station mainstem: s3 -> s2 -> s1 -> s0 (outlet).
        let st = |name: &str, r| Station {
            name: name.into(),
            kind: StationKind::Measuring,
            retention: r,
        };
        let e = |from: usize, to: usize| Edge {
            from: StationId(from),
            to: StationId(to),
            distance_km: 20.0,
            delay_days: 1,
        };
        let mk = || {
            RiverNetwork::new(
                vec![st("m0", 0.2), st("m1", 0.1), st("m2", 0.1), st("m3", 0.1)],
                vec![e(3, 2), e(2, 1), e(1, 0)],
            )
            .unwrap()
        };
        let envs = vec![
            StationEnv {
                nutrient_scale: 1.1,
                temp_offset: 0.5,
                cond_offset: 20.0,
                catchment: 5.0,
            };
            4
        ];
        let cfg = SyntheticConfig {
            start_year: 1996,
            end_year: 1997,
            train_end_year: 1996,
            ..Default::default()
        };
        let a = generate_on(&cfg, mk(), &envs);
        let b = generate_on(&cfg, mk(), &envs);
        assert_eq!(a.stations.len(), 4);
        assert_eq!(a.days, 366 + 365);
        assert_eq!(a.network.station(a.target).name, "m0");
        for (sa, sb) in a.stations.iter().zip(&b.stations) {
            assert_eq!(sa.chla, sb.chla);
            assert_eq!(sa.vars, sb.vars);
            assert_eq!(sa.flow, sb.flow);
        }
        for s in &a.stations {
            for row in &s.vars {
                assert!(row[VTMP as usize].is_finite());
                assert!(row[VN as usize] > 0.0);
            }
        }
    }

    #[test]
    fn weekly_cadence_at_s1_biweekly_elsewhere() {
        let d = small();
        // Interpolated series are piecewise linear: the second difference
        // within a sampling interval must vanish away from sample days.
        let check = |series: &[f64], interval: usize| {
            for t in 1..(interval.min(series.len() - 1)) {
                if t % interval == 0 || (t + 1) % interval == 0 {
                    continue;
                }
                let dd = series[t + 1] - 2.0 * series[t] + series[t - 1];
                assert!(dd.abs() < 1e-9, "not piecewise linear at {t}: {dd}");
            }
        };
        check(&d.stations[d.target.0].chla, 7);
        let s2 = d.network.by_name("S2").unwrap();
        check(&d.stations[s2.0].chla, 14);
    }
}
