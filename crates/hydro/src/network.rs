//! The river network: stations and directed flow segments.
//!
//! Appendix A models a river system "as a directed acyclic graph where a
//! node corresponds to a measuring station and an edge denotes a segment of
//! a river between the two adjacent stations", with *virtual stations*
//! inserted wherever two or more water bodies meet. We additionally require
//! the realistic shape of a conservative, non-branching river (which the
//! paper's Extensibility section states as the modelling assumption): every
//! station drains to at most one downstream neighbour, and exactly one
//! station — the outlet — drains nowhere.

use std::fmt;

/// Index of a station within its [`RiverNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationId(pub usize);

/// Whether a node is a physical measuring station or a virtual confluence
/// node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StationKind {
    /// A real station with instruments (S1–S6, T1–T3 in the Nakdong).
    Measuring,
    /// A synthetic node inserted at a confluence (VS1–VS3).
    Virtual,
}

/// One node of the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    /// Display name (e.g. `"S1"`, `"VS2"`).
    pub name: String,
    /// Physical or virtual.
    pub kind: StationKind,
    /// The fraction of water retained at this station per step (`r_S` in
    /// eq. 9): side pools, non-laminar flow, etc. In `[0, 1)`.
    pub retention: f64,
}

/// A directed segment from one station to the next downstream.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Upstream endpoint.
    pub from: StationId,
    /// Downstream endpoint.
    pub to: StationId,
    /// Segment length in kilometres (from Fig. 8).
    pub distance_km: f64,
    /// Travel time of a water body along this segment, in whole days
    /// (`Δ` in eq. 9).
    pub delay_days: usize,
}

/// Validation failures for river networks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// No stations.
    Empty,
    /// An edge endpoint is out of range.
    BadEndpoint,
    /// A station has more than one downstream edge (branching flow).
    Branching { station: usize },
    /// The graph has a cycle.
    Cyclic,
    /// There is not exactly one outlet.
    OutletCount { found: usize },
    /// A retention ratio is outside `[0, 1)`.
    BadRetention { station: usize },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Empty => write!(f, "network has no stations"),
            NetworkError::BadEndpoint => write!(f, "edge endpoint out of range"),
            NetworkError::Branching { station } => {
                write!(f, "station {station} has multiple downstream edges")
            }
            NetworkError::Cyclic => write!(f, "network contains a cycle"),
            NetworkError::OutletCount { found } => {
                write!(f, "expected exactly one outlet, found {found}")
            }
            NetworkError::BadRetention { station } => {
                write!(f, "station {station} has retention outside [0, 1)")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A validated river network.
#[derive(Debug, Clone, PartialEq)]
pub struct RiverNetwork {
    stations: Vec<Station>,
    edges: Vec<Edge>,
    /// Stations in upstream-to-downstream topological order.
    topo: Vec<StationId>,
}

impl RiverNetwork {
    /// Build and validate a network.
    pub fn new(stations: Vec<Station>, edges: Vec<Edge>) -> Result<Self, NetworkError> {
        if stations.is_empty() {
            return Err(NetworkError::Empty);
        }
        let n = stations.len();
        for (i, s) in stations.iter().enumerate() {
            if !(0.0..1.0).contains(&s.retention) {
                return Err(NetworkError::BadRetention { station: i });
            }
        }
        let mut out_deg = vec![0usize; n];
        let mut in_deg = vec![0usize; n];
        for e in &edges {
            if e.from.0 >= n || e.to.0 >= n || e.from == e.to {
                return Err(NetworkError::BadEndpoint);
            }
            out_deg[e.from.0] += 1;
            in_deg[e.to.0] += 1;
        }
        if let Some(i) = out_deg.iter().position(|&d| d > 1) {
            return Err(NetworkError::Branching { station: i });
        }
        let outlets = out_deg.iter().filter(|&&d| d == 0).count();
        if outlets != 1 {
            return Err(NetworkError::OutletCount { found: outlets });
        }
        // Kahn's algorithm for topological order (upstream first).
        let mut topo = Vec::with_capacity(n);
        let mut indeg = in_deg.clone();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(i) = queue.pop() {
            topo.push(StationId(i));
            for e in edges.iter().filter(|e| e.from.0 == i) {
                indeg[e.to.0] -= 1;
                if indeg[e.to.0] == 0 {
                    queue.push(e.to.0);
                }
            }
        }
        if topo.len() != n {
            return Err(NetworkError::Cyclic);
        }
        Ok(RiverNetwork {
            stations,
            edges,
            topo,
        })
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// True when the network has no stations (never true once validated).
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// Station accessor.
    pub fn station(&self, id: StationId) -> &Station {
        &self.stations[id.0]
    }

    /// All stations.
    pub fn stations(&self) -> impl Iterator<Item = (StationId, &Station)> {
        self.stations
            .iter()
            .enumerate()
            .map(|(i, s)| (StationId(i), s))
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Resolve a station by name.
    pub fn by_name(&self, name: &str) -> Option<StationId> {
        self.stations
            .iter()
            .position(|s| s.name == name)
            .map(StationId)
    }

    /// Incoming edges (upstream neighbours) of a station.
    pub fn upstream_of(&self, id: StationId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.to == id)
    }

    /// The single outgoing edge, if any.
    pub fn downstream_of(&self, id: StationId) -> Option<&Edge> {
        self.edges.iter().find(|e| e.from == id)
    }

    /// The unique outlet (S1 in the Nakdong).
    pub fn outlet(&self) -> StationId {
        *self.topo.last().expect("validated network is non-empty")
    }

    /// Stations in upstream-to-downstream topological order.
    pub fn topo_order(&self) -> &[StationId] {
        &self.topo
    }

    /// The Nakdong River network of Fig. 8 / Appendix A: six main-channel
    /// stations, three tributaries, three virtual confluence stations
    /// (S6·T3, S4·T2, S3·T1), with the figure's segment distances. Travel
    /// delays assume ~25 km/day mean water-body velocity; retention ratios
    /// are modest on the free-flowing upper reaches and higher near the
    /// estuarine barrage at S1.
    pub fn nakdong() -> RiverNetwork {
        let st = |name: &str, kind, retention| Station {
            name: name.into(),
            kind,
            retention,
        };
        use StationKind::{Measuring as M, Virtual as V};
        let stations = vec![
            st("S1", M, 0.30), // 0: outlet (barrage; highest retention)
            st("S2", M, 0.15), // 1
            st("S3", M, 0.15), // 2
            st("S4", M, 0.12), // 3
            st("S5", M, 0.12), // 4
            st("S6", M, 0.10), // 5
            st("T1", M, 0.10), // 6
            st("T2", M, 0.10), // 7
            st("T3", M, 0.10), // 8
            st("VS1", V, 0.0), // 9:  S3·T1 confluence
            st("VS2", V, 0.0), // 10: S4·T2 confluence
            st("VS3", V, 0.0), // 11: S6·T3 confluence
        ];
        let e = |from: usize, to: usize, km: f64| Edge {
            from: StationId(from),
            to: StationId(to),
            distance_km: km,
            // ~25 km/day; every segment at least one day of travel.
            delay_days: ((km / 25.0).round() as usize).max(1),
        };
        let edges = vec![
            e(5, 11, 3.0),  // S6 -> VS3 (T3 joins 3 km below S6)
            e(8, 11, 3.0),  // T3 -> VS3
            e(11, 4, 27.5), // VS3 -> S5 (S6–S5 segment)
            e(4, 10, 42.0), // S5 -> VS2 (S5–S4 segment, T2 joins above S4)
            e(7, 10, 7.1),  // T2 -> VS2
            e(10, 3, 7.1),  // VS2 -> S4
            e(3, 9, 28.5),  // S4 -> VS1 (S4–S3 segment, T1 joins above S3)
            e(6, 9, 5.5),   // T1 -> VS1
            e(9, 2, 5.5),   // VS1 -> S3
            e(2, 1, 22.3),  // S3 -> S2
            e(1, 0, 32.8),  // S2 -> S1
        ];
        RiverNetwork::new(stations, edges).expect("the Nakdong topology is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station(name: &str) -> Station {
        Station {
            name: name.into(),
            kind: StationKind::Measuring,
            retention: 0.1,
        }
    }

    #[test]
    fn nakdong_shape() {
        let net = RiverNetwork::nakdong();
        assert_eq!(net.len(), 12);
        assert_eq!(net.edges().len(), 11);
        assert_eq!(net.station(net.outlet()).name, "S1");
        // Three virtual confluences with two upstream feeds each.
        for vs in ["VS1", "VS2", "VS3"] {
            let id = net.by_name(vs).unwrap();
            assert_eq!(net.station(id).kind, StationKind::Virtual);
            assert_eq!(net.upstream_of(id).count(), 2);
        }
        // Headwaters have no upstream edges.
        for hw in ["S6", "T1", "T2", "T3"] {
            assert_eq!(net.upstream_of(net.by_name(hw).unwrap()).count(), 0);
        }
    }

    #[test]
    fn topo_order_is_upstream_first() {
        let net = RiverNetwork::nakdong();
        let pos = |name: &str| {
            let id = net.by_name(name).unwrap();
            net.topo_order().iter().position(|&s| s == id).unwrap()
        };
        assert!(pos("S6") < pos("VS3"));
        assert!(pos("VS3") < pos("S5"));
        assert!(pos("S5") < pos("S4"));
        assert!(pos("S2") < pos("S1"));
        assert_eq!(pos("S1"), net.len() - 1);
    }

    #[test]
    fn delays_positive_and_distance_scaled() {
        let net = RiverNetwork::nakdong();
        for e in net.edges() {
            assert!(e.delay_days >= 1);
        }
        // The 42 km segment takes longer than the 3 km segment.
        let long = net.edges().iter().find(|e| e.distance_km == 42.0).unwrap();
        let short = net.edges().iter().find(|e| e.distance_km == 3.0).unwrap();
        assert!(long.delay_days > short.delay_days);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            RiverNetwork::new(vec![], vec![]).unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn rejects_branching() {
        let stations = vec![station("a"), station("b"), station("c")];
        let edges = vec![
            Edge {
                from: StationId(0),
                to: StationId(1),
                distance_km: 1.0,
                delay_days: 1,
            },
            Edge {
                from: StationId(0),
                to: StationId(2),
                distance_km: 1.0,
                delay_days: 1,
            },
        ];
        assert_eq!(
            RiverNetwork::new(stations, edges).unwrap_err(),
            NetworkError::Branching { station: 0 }
        );
    }

    #[test]
    fn rejects_cycle() {
        let stations = vec![station("a"), station("b"), station("c")];
        let edges = vec![
            Edge {
                from: StationId(0),
                to: StationId(1),
                distance_km: 1.0,
                delay_days: 1,
            },
            Edge {
                from: StationId(1),
                to: StationId(0),
                distance_km: 1.0,
                delay_days: 1,
            },
        ];
        // a<->b is a cycle; also yields two components... outlet check first.
        let err = RiverNetwork::new(stations, edges).unwrap_err();
        assert!(matches!(
            err,
            NetworkError::Cyclic | NetworkError::OutletCount { .. }
        ));
    }

    #[test]
    fn rejects_multiple_outlets() {
        let stations = vec![station("a"), station("b")];
        let err = RiverNetwork::new(stations, vec![]).unwrap_err();
        assert_eq!(err, NetworkError::OutletCount { found: 2 });
    }

    #[test]
    fn rejects_bad_retention() {
        let mut s = station("a");
        s.retention = 1.0;
        assert_eq!(
            RiverNetwork::new(vec![s], vec![]).unwrap_err(),
            NetworkError::BadRetention { station: 0 }
        );
    }

    #[test]
    fn rejects_self_loop() {
        let stations = vec![station("a")];
        let edges = vec![Edge {
            from: StationId(0),
            to: StationId(0),
            distance_km: 1.0,
            delay_days: 1,
        }];
        assert_eq!(
            RiverNetwork::new(stations, edges).unwrap_err(),
            NetworkError::BadEndpoint
        );
    }
}
