//! The ten temporal variables of the river process (paper Table IV).
//!
//! Every crate in the workspace indexes forcing vectors with these
//! constants, and `gmr_expr::Expr::Var(i)` uses the same indices — keeping
//! one canonical ordering is what lets an evolved equation be evaluated
//! directly against a dataset row.

/// Number of temporal variables.
pub const NUM_VARS: usize = 10;

/// Irradiance (light intensity), MJ m⁻² d⁻¹.
pub const VLGT: u8 = 0;
/// Nitrogen concentration, mg L⁻¹.
pub const VN: u8 = 1;
/// Phosphorus concentration, mg L⁻¹.
pub const VP: u8 = 2;
/// Silica concentration, mg L⁻¹.
pub const VSI: u8 = 3;
/// Water temperature, °C.
pub const VTMP: u8 = 4;
/// Dissolved oxygen, mg L⁻¹.
pub const VDO: u8 = 5;
/// Electric conductivity, µS cm⁻¹.
pub const VCD: u8 = 6;
/// pH.
pub const VPH: u8 = 7;
/// Alkalinity, mg L⁻¹ CaCO₃.
pub const VALK: u8 = 8;
/// Water transparency (Secchi depth), m.
pub const VSD: u8 = 9;

/// Canonical names, indexed by variable id.
pub const NAMES: [&str; NUM_VARS] = [
    "Vlgt", "Vn", "Vp", "Vsi", "Vtmp", "Vdo", "Vcd", "Vph", "Valk", "Vsd",
];

/// Units matching Table IV, in the same compact notation Table III uses for
/// parameters (`"-"` marks a dimensionless quantity). Consumed by the
/// dimensional-analysis pass in `gmr-lint`.
pub const UNITS: [&str; NUM_VARS] = [
    "MJ m^-2 d^-1", // Vlgt
    "mg L^-1",      // Vn
    "mg L^-1",      // Vp
    "mg L^-1",      // Vsi
    "degC",         // Vtmp
    "mg L^-1",      // Vdo
    "uS cm^-1",     // Vcd
    "-",            // Vph
    "mg L^-1",      // Valk (as CaCO3)
    "m",            // Vsd
];

/// Descriptions matching Table IV.
pub const DESCRIPTIONS: [&str; NUM_VARS] = [
    "Irradiance (light intensity)",
    "Nitrogen concentration",
    "Phosphorus concentration",
    "Silica concentration",
    "Water temperature",
    "Dissolved oxygen",
    "Electric conductivity",
    "pH",
    "Alkalinity",
    "Water transparency",
];

/// Look up a variable index by name.
pub fn index_of(name: &str) -> Option<u8> {
    NAMES.iter().position(|n| *n == name).map(|i| i as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_align_with_constants() {
        assert_eq!(NAMES[VLGT as usize], "Vlgt");
        assert_eq!(NAMES[VTMP as usize], "Vtmp");
        assert_eq!(NAMES[VSD as usize], "Vsd");
        assert_eq!(NAMES.len(), NUM_VARS);
        assert_eq!(DESCRIPTIONS.len(), NUM_VARS);
    }

    #[test]
    fn units_align_with_constants() {
        assert_eq!(UNITS[VLGT as usize], "MJ m^-2 d^-1");
        assert_eq!(UNITS[VTMP as usize], "degC");
        assert_eq!(UNITS[VPH as usize], "-");
        assert_eq!(UNITS[VSD as usize], "m");
    }

    #[test]
    fn index_lookup() {
        assert_eq!(index_of("Vph"), Some(VPH));
        assert_eq!(index_of("Valk"), Some(VALK));
        assert_eq!(index_of("Vxx"), None);
    }

    #[test]
    fn all_names_unique() {
        for (i, a) in NAMES.iter().enumerate() {
            for b in &NAMES[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
