//! The hydrological process: flow mass balance and attribute routing.
//!
//! Eq. 9 of the paper (Appendix A): the flow arriving at station *B* at time
//! *t + Δ* is
//!
//! ```text
//! F_{B,t+Δ} = r_B · F_{B,t}  +  (1 − r_A) · F_{A,t}  +  R_{B,t+Δ}
//! ```
//!
//! — water retained locally, plus the released fraction of the upstream
//! station's flow after the travel delay Δ, plus rainfall runoff. At a
//! confluence (a virtual station) the contributions of every upstream feed
//! are summed, and water-body *attributes* (the temporal variables plus any
//! transported biomass) are combined as a **flow-weighted average**.

use crate::network::RiverNetwork;
use crate::vars::NUM_VARS;

/// A parcel of water with its attribute vector, as handed to the biological
/// process: the per-day forcings plus the current flow.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterBody {
    /// Flow magnitude (m³/s).
    pub flow: f64,
    /// Attribute vector (the ten temporal variables).
    pub attrs: [f64; NUM_VARS],
}

impl WaterBody {
    /// A still, attribute-less parcel.
    pub fn empty() -> Self {
        WaterBody {
            flow: 0.0,
            attrs: [0.0; NUM_VARS],
        }
    }

    /// Flow-weighted average of several parcels (the confluence rule). With
    /// zero total flow the attributes average unweighted, keeping the result
    /// well-defined during dry spells.
    pub fn merge(parts: &[WaterBody]) -> WaterBody {
        if parts.is_empty() {
            return WaterBody::empty();
        }
        let total: f64 = parts.iter().map(|p| p.flow).sum();
        let mut attrs = [0.0; NUM_VARS];
        if total > 0.0 {
            for p in parts {
                let w = p.flow / total;
                for (a, v) in attrs.iter_mut().zip(p.attrs.iter()) {
                    *a += w * v;
                }
            }
        } else {
            let w = 1.0 / parts.len() as f64;
            for p in parts {
                for (a, v) in attrs.iter_mut().zip(p.attrs.iter()) {
                    *a += w * v;
                }
            }
        }
        WaterBody { flow: total, attrs }
    }
}

/// Route flows through the network for `days` steps via eq. 9.
///
/// * `runoff[station][day]` — rainfall runoff `R_{B,t}` entering each
///   station each day;
/// * `init[station]` — initial flow at every station.
///
/// Returns `flows[station][day]`. Upstream contributions are read at
/// `day − delay`, i.e. the water that left A `Δ` days ago arrives now; days
/// before the record start fall back to the initial flow.
pub fn route_flows(
    net: &RiverNetwork,
    runoff: &[Vec<f64>],
    init: &[f64],
    days: usize,
) -> Vec<Vec<f64>> {
    assert_eq!(runoff.len(), net.len(), "one runoff series per station");
    assert_eq!(init.len(), net.len(), "one initial flow per station");
    let mut flows: Vec<Vec<f64>> = (0..net.len())
        .map(|s| {
            let mut v = Vec::with_capacity(days);
            v.push(init[s].max(0.0));
            v
        })
        .collect();
    for day in 1..days {
        // Upstream-to-downstream order so same-day writes never feed
        // same-day reads (all upstream reads are lagged anyway).
        for &sid in net.topo_order() {
            let s = sid.0;
            let r_b = net.station(sid).retention;
            let mut f = r_b * flows[s][day - 1] + runoff[s].get(day).copied().unwrap_or(0.0);
            for e in net.upstream_of(sid) {
                let a = e.from.0;
                let r_a = net.station(e.from).retention;
                let lagged = if day >= e.delay_days {
                    flows[a][day - e.delay_days]
                } else {
                    init[a].max(0.0)
                };
                f += (1.0 - r_a) * lagged;
            }
            flows[s].push(f.max(0.0));
        }
    }
    flows
}

/// Route attribute vectors downstream alongside the flows.
///
/// `local[station][day]` supplies each *measuring* station's locally
/// generated attributes (what instruments would read in the absence of
/// upstream influence). At virtual stations the attributes are purely the
/// flow-weighted merge of the upstream feeds; at measuring stations the
/// local signal is blended with the arriving upstream water by flow weight
/// (retained local water vs. released upstream water).
///
/// Returns `attrs[station][day]`.
pub fn route_attributes(
    net: &RiverNetwork,
    flows: &[Vec<f64>],
    local: &[Vec<[f64; NUM_VARS]>],
    days: usize,
) -> Vec<Vec<[f64; NUM_VARS]>> {
    assert_eq!(flows.len(), net.len());
    assert_eq!(local.len(), net.len());
    let mut out: Vec<Vec<[f64; NUM_VARS]>> = vec![Vec::with_capacity(days); net.len()];
    for day in 0..days {
        for &sid in net.topo_order() {
            let s = sid.0;
            let mut parts: Vec<WaterBody> = Vec::new();
            // Local (retained) component.
            let r_b = net.station(sid).retention;
            let local_attrs = local[s].get(day).copied().unwrap_or([0.0; NUM_VARS]);
            let prev_flow = if day > 0 {
                flows[s][day - 1]
            } else {
                flows[s][0]
            };
            if net.upstream_of(sid).count() == 0 {
                // Headwater: attributes are the local signal outright.
                out[s].push(local_attrs);
                continue;
            }
            parts.push(WaterBody {
                flow: r_b * prev_flow,
                attrs: local_attrs,
            });
            for e in net.upstream_of(sid) {
                let a = e.from.0;
                let lag_day = day.saturating_sub(e.delay_days);
                let upstream_attrs = out[a]
                    .get(lag_day)
                    .copied()
                    .unwrap_or_else(|| local[a].first().copied().unwrap_or([0.0; NUM_VARS]));
                let r_a = net.station(e.from).retention;
                let upstream_flow = flows[a].get(lag_day).copied().unwrap_or(0.0);
                parts.push(WaterBody {
                    flow: (1.0 - r_a) * upstream_flow,
                    attrs: upstream_attrs,
                });
            }
            let merged = WaterBody::merge(&parts);
            // Measuring stations mix the merged water with the local signal
            // (in-situ processes re-equilibrate temperature, DO, etc.);
            // virtual stations are pure mixing points.
            let blended = match net.station(sid).kind {
                crate::network::StationKind::Virtual => merged.attrs,
                crate::network::StationKind::Measuring => {
                    let mut a = [0.0; NUM_VARS];
                    for i in 0..NUM_VARS {
                        a[i] = 0.5 * merged.attrs[i] + 0.5 * local_attrs[i];
                    }
                    a
                }
            };
            out[s].push(blended);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Edge, RiverNetwork, Station, StationId, StationKind};

    fn two_station_net(r_a: f64, r_b: f64, delay: usize) -> RiverNetwork {
        let stations = vec![
            Station {
                name: "A".into(),
                kind: StationKind::Measuring,
                retention: r_a,
            },
            Station {
                name: "B".into(),
                kind: StationKind::Measuring,
                retention: r_b,
            },
        ];
        let edges = vec![Edge {
            from: StationId(0),
            to: StationId(1),
            distance_km: 25.0,
            delay_days: delay,
        }];
        RiverNetwork::new(stations, edges).unwrap()
    }

    #[test]
    fn mass_balance_matches_equation_nine() {
        let net = two_station_net(0.2, 0.3, 1);
        let runoff = vec![vec![0.0; 4], vec![0.0, 5.0, 0.0, 0.0]];
        let init = vec![100.0, 50.0];
        let flows = route_flows(&net, &runoff, &init, 4);
        // Day 1 at B: r_B * F_B,0 + (1 - r_A) * F_A,0 + R_B,1
        assert!((flows[1][1] - (0.3 * 50.0 + 0.8 * 100.0 + 5.0)).abs() < 1e-12);
        // Day 1 at A (headwater): r_A * F_A,0 + runoff
        assert!((flows[0][1] - 0.2 * 100.0).abs() < 1e-12);
    }

    #[test]
    fn delay_shifts_upstream_arrival() {
        let net = two_station_net(0.0, 0.0, 2);
        // Pulse of runoff at A on day 1.
        let runoff = vec![vec![0.0, 100.0, 0.0, 0.0, 0.0], vec![0.0; 5]];
        let init = vec![0.0, 0.0];
        let flows = route_flows(&net, &runoff, &init, 5);
        assert_eq!(flows[0][1], 100.0);
        // With Δ=2 the pulse reaches B on day 3 (B reads A at day-2).
        assert_eq!(flows[1][2], 0.0);
        assert_eq!(flows[1][3], 100.0);
        assert_eq!(flows[1][4], 0.0);
    }

    #[test]
    fn flows_never_negative() {
        let net = two_station_net(0.1, 0.1, 1);
        let runoff = vec![vec![-50.0; 10], vec![-50.0; 10]];
        let flows = route_flows(&net, &runoff, &[1.0, 1.0], 10);
        for s in &flows {
            for &f in s {
                assert!(f >= 0.0);
            }
        }
    }

    #[test]
    fn merge_is_flow_weighted() {
        let mut a = WaterBody::empty();
        a.flow = 30.0;
        a.attrs[0] = 10.0;
        let mut b = WaterBody::empty();
        b.flow = 10.0;
        b.attrs[0] = 50.0;
        let m = WaterBody::merge(&[a, b]);
        assert_eq!(m.flow, 40.0);
        assert!((m.attrs[0] - (0.75 * 10.0 + 0.25 * 50.0)).abs() < 1e-12);
    }

    #[test]
    fn merge_handles_zero_flow() {
        let mut a = WaterBody::empty();
        a.attrs[0] = 10.0;
        let mut b = WaterBody::empty();
        b.attrs[0] = 30.0;
        let m = WaterBody::merge(&[a, b]);
        assert_eq!(m.flow, 0.0);
        assert_eq!(m.attrs[0], 20.0);
        assert_eq!(WaterBody::merge(&[]), WaterBody::empty());
    }

    #[test]
    fn nakdong_conserves_mass_without_retention_loss() {
        // With zero retention everywhere and constant runoff only at
        // headwaters, total outlet flow converges to total inflow.
        let mut net = RiverNetwork::nakdong();
        // Zero out retention by rebuilding (stations are plain data).
        let stations: Vec<Station> = net
            .stations()
            .map(|(_, s)| Station {
                name: s.name.clone(),
                kind: s.kind,
                retention: 0.0,
            })
            .collect();
        let edges = net.edges().to_vec();
        net = RiverNetwork::new(stations, edges).unwrap();
        let days = 400;
        let mut runoff = vec![vec![0.0; days]; net.len()];
        for hw in ["S6", "T1", "T2", "T3"] {
            let id = net.by_name(hw).unwrap();
            runoff[id.0] = vec![10.0; days];
        }
        let flows = route_flows(&net, &runoff, &vec![0.0; net.len()], days);
        let outlet = net.outlet().0;
        assert!(
            (flows[outlet][days - 1] - 40.0).abs() < 1e-6,
            "outlet flow {} != 40",
            flows[outlet][days - 1]
        );
    }

    #[test]
    fn attribute_routing_blends_upstream_signal() {
        let net = two_station_net(0.0, 0.0, 1);
        let days = 5;
        let mut local_a = vec![[0.0; NUM_VARS]; days];
        for row in &mut local_a {
            row[0] = 100.0; // A's water is hot in attribute 0
        }
        let local_b = vec![[0.0; NUM_VARS]; days];
        let flows = vec![vec![10.0; days], vec![10.0; days]];
        let attrs = route_attributes(&net, &flows, &[local_a, local_b], days);
        // B is a measuring station with zero retention: merged water is all
        // upstream (attr 100), blended 50/50 with local 0 → 50.
        assert!((attrs[1][2][0] - 50.0).abs() < 1e-9);
        // A (headwater) keeps its local attributes.
        assert_eq!(attrs[0][2][0], 100.0);
    }
}
