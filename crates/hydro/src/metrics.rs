//! Forecast accuracy metrics exactly as defined in §IV-C of the paper.

/// Root mean square error: `sqrt(mean((ŷ − y)²))`. Quadratic score that
/// weights large errors heavily; the paper's fitness function.
///
/// Returns `f64::INFINITY` for empty inputs or when any prediction is
/// non-finite — the GP engine treats that as a lethal fitness.
///
/// ```
/// assert_eq!(gmr_hydro::rmse(&[1.0, 3.0], &[1.0, 1.0]), (2.0f64).sqrt());
/// ```
pub fn rmse(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len(), "series lengths must match");
    if predicted.is_empty() {
        return f64::INFINITY;
    }
    let mut acc = 0.0;
    for (p, o) in predicted.iter().zip(observed) {
        let d = p - o;
        acc += d * d;
    }
    let v = (acc / predicted.len() as f64).sqrt();
    if v.is_finite() {
        v
    } else {
        f64::INFINITY
    }
}

/// Mean absolute error: `mean(|ŷ − y|)`. Linear score weighting all errors
/// equally.
pub fn mae(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len(), "series lengths must match");
    if predicted.is_empty() {
        return f64::INFINITY;
    }
    let acc: f64 = predicted
        .iter()
        .zip(observed)
        .map(|(p, o)| (p - o).abs())
        .sum();
    let v = acc / predicted.len() as f64;
    if v.is_finite() {
        v
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_zero() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
    }

    #[test]
    fn known_values() {
        let p = [2.0, 2.0];
        let o = [0.0, 0.0];
        assert_eq!(rmse(&p, &o), 2.0);
        assert_eq!(mae(&p, &o), 2.0);
        // RMSE > MAE when errors are unequal.
        let p2 = [3.0, 1.0];
        assert!(rmse(&p2, &o) > mae(&p2, &o));
    }

    #[test]
    fn rmse_upper_bounds_mae() {
        let p = [1.0, -2.0, 4.0, 0.5];
        let o = [0.0, 1.0, 2.0, 0.0];
        assert!(rmse(&p, &o) >= mae(&p, &o));
    }

    #[test]
    fn non_finite_predictions_are_lethal() {
        assert_eq!(rmse(&[f64::NAN], &[0.0]), f64::INFINITY);
        assert_eq!(rmse(&[f64::INFINITY], &[0.0]), f64::INFINITY);
        assert_eq!(mae(&[f64::NAN], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn empty_is_lethal() {
        assert_eq!(rmse(&[], &[]), f64::INFINITY);
        assert_eq!(mae(&[], &[]), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn length_mismatch_panics() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
