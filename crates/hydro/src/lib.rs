//! River-network substrate and dataset layer for the GMR reproduction.
//!
//! The paper models the Nakdong River catchment (Fig. 8): six stations on
//! the main channel (S1–S6), three on major tributaries (T1–T3), and three
//! *virtual stations* at the confluences. Two contemporaneous processes run
//! over this network (Appendix A): the **hydrological process** — a flow
//! mass balance routing water bodies between stations — and the
//! **biological process** that lives one crate up in `gmr-bio`.
//!
//! This crate provides:
//!
//! * [`vars`] — the ten temporal variables of Table IV and their canonical
//!   indices (shared with every other crate);
//! * [`network`] — the station DAG with per-edge travel delays and
//!   per-station retention ratios, including the exact Nakdong topology;
//! * [`flow`] — the flow mass balance of eq. 9 and flow-weighted attribute
//!   merging at confluences;
//! * [`data`] — dataset containers, the train/test split, and the
//!   weekly/bi-weekly subsample + linear re-interpolation the paper applies
//!   to nutrient and chlorophyll measurements;
//! * [`synthetic`] — the synthetic Nakdong dataset generator (the paper's
//!   13-year observational dataset is not publicly retrievable; see
//!   DESIGN.md for why this substitution preserves the evaluation's shape);
//! * [`io`] — CSV import/export, the contract for swapping in a real
//!   monitoring record;
//! * [`metrics`] — RMSE and MAE exactly as defined in §IV-C.

pub mod data;
pub mod flow;
pub mod io;
pub mod metrics;
pub mod network;
pub mod synthetic;
pub mod vars;

pub use data::{RiverDataset, Split, StationSeries};
pub use flow::{route_flows, WaterBody};
pub use io::{from_csv, load_csv, save_csv, to_csv};
pub use metrics::{mae, rmse};
pub use network::{Edge, NetworkError, RiverNetwork, Station, StationId, StationKind};
pub use synthetic::{generate, generate_on, StationEnv, SyntheticConfig};
pub use vars::NUM_VARS;
