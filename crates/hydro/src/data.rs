//! Dataset containers, the temporal train/test split, and the measurement
//! subsampling scheme.
//!
//! The paper's dataset is 13 years (1996–2008) of daily measurements at the
//! nine physical stations, except nutrients and chlorophyll-a which were
//! measured weekly at S1 and bi-weekly elsewhere and then **linearly
//! interpolated** back to daily resolution (§IV-A). The split is temporal:
//! 1996–2005 for training, 2006–2008 for testing.

use crate::network::RiverNetwork;
use crate::network::StationId;
use crate::vars::NUM_VARS;
use serde::{Deserialize, Serialize};

/// Per-station observation record: daily forcing rows, flow and the
/// biological target (chlorophyll-a as a proxy for phytoplankton biomass).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationSeries {
    /// `vars[day][v]` — the ten temporal variables (see [`crate::vars`]).
    pub vars: Vec<[f64; NUM_VARS]>,
    /// Daily flow (m³/s).
    pub flow: Vec<f64>,
    /// Daily chlorophyll-a (µg/L), the observed algal biomass.
    pub chla: Vec<f64>,
}

impl StationSeries {
    /// A zeroed series of `days` length.
    pub fn zeroed(days: usize) -> Self {
        StationSeries {
            vars: vec![[0.0; NUM_VARS]; days],
            flow: vec![0.0; days],
            chla: vec![0.0; days],
        }
    }

    /// Number of days recorded.
    pub fn days(&self) -> usize {
        self.vars.len()
    }

    /// One variable as a contiguous series (allocates).
    pub fn var_series(&self, v: u8) -> Vec<f64> {
        self.vars.iter().map(|row| row[v as usize]).collect()
    }
}

/// A slice of the dataset in time: day range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// First day (inclusive).
    pub start: usize,
    /// One past the last day.
    pub end: usize,
}

impl Split {
    /// Number of days covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for an empty range.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// The full multi-station dataset used by every experiment.
#[derive(Debug, Clone)]
pub struct RiverDataset {
    /// Station topology.
    pub network: RiverNetwork,
    /// Number of days.
    pub days: usize,
    /// Calendar year of day 0 (1996 for the Nakdong study).
    pub start_year: i32,
    /// Per-station series, indexed by [`StationId`].
    pub stations: Vec<StationSeries>,
    /// The forecast target (S1).
    pub target: StationId,
    /// Day ranges of the train and test periods.
    pub train: Split,
    /// Test period.
    pub test: Split,
}

impl RiverDataset {
    /// Convenience: the target station's series.
    pub fn target_series(&self) -> &StationSeries {
        &self.stations[self.target.0]
    }

    /// Observed chlorophyll-a at the target over a split.
    pub fn observed(&self, split: Split) -> &[f64] {
        &self.stations[self.target.0].chla[split.start..split.end]
    }

    /// Forcing rows at the target over a split.
    pub fn forcings(&self, split: Split) -> &[[f64; NUM_VARS]] {
        &self.stations[self.target.0].vars[split.start..split.end]
    }
}

/// Linearly interpolate a sparsely sampled series back to daily resolution.
///
/// `samples` are `(day, value)` pairs in increasing day order. Days before
/// the first sample take the first value; days after the last take the last
/// value (constant extrapolation, as any practical pre-processing does).
///
/// ```
/// use gmr_hydro::data::linear_interpolate;
/// assert_eq!(
///     linear_interpolate(&[(0, 0.0), (2, 4.0)], 4),
///     vec![0.0, 2.0, 4.0, 4.0],
/// );
/// ```
pub fn linear_interpolate(samples: &[(usize, f64)], days: usize) -> Vec<f64> {
    assert!(!samples.is_empty(), "need at least one sample");
    debug_assert!(
        samples.windows(2).all(|w| w[0].0 < w[1].0),
        "samples must be sorted"
    );
    let mut out = Vec::with_capacity(days);
    let mut seg = 0usize;
    for day in 0..days {
        while seg + 1 < samples.len() && samples[seg + 1].0 <= day {
            seg += 1;
        }
        let (d0, v0) = samples[seg];
        let v = if day <= d0 {
            // At a sample, or before the first one: clamp left.
            if day < d0 {
                samples[0].1
            } else {
                v0
            }
        } else if seg + 1 >= samples.len() {
            // Past the last sample: clamp right.
            v0
        } else {
            let (d1, v1) = samples[seg + 1];
            let t = (day - d0) as f64 / (d1 - d0) as f64;
            v0 + t * (v1 - v0)
        };
        out.push(v);
    }
    out
}

/// Subsample a daily series every `interval` days (starting at day 0) and
/// linearly re-interpolate — reproducing the paper's weekly (S1) and
/// bi-weekly (other stations) measurement cadence for nutrients and
/// chlorophyll.
pub fn subsample_and_interpolate(daily: &[f64], interval: usize) -> Vec<f64> {
    assert!(interval >= 1);
    let samples: Vec<(usize, f64)> = daily
        .iter()
        .enumerate()
        .step_by(interval)
        .map(|(d, &v)| (d, v))
        .collect();
    linear_interpolate(&samples, daily.len())
}

/// Number of days in `year` (proleptic Gregorian).
pub fn days_in_year(year: i32) -> usize {
    let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    if leap {
        366
    } else {
        365
    }
}

/// Total days spanned by `[start_year, end_year]` inclusive.
pub fn days_in_range(start_year: i32, end_year: i32) -> usize {
    (start_year..=end_year).map(days_in_year).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_hits_samples_exactly() {
        let s = [(0usize, 10.0), (4, 50.0), (6, 30.0)];
        let out = linear_interpolate(&s, 8);
        assert_eq!(out[0], 10.0);
        assert_eq!(out[4], 50.0);
        assert_eq!(out[6], 30.0);
    }

    #[test]
    fn interpolation_is_linear_between_samples() {
        let s = [(0usize, 0.0), (4, 40.0)];
        let out = linear_interpolate(&s, 5);
        assert_eq!(out, vec![0.0, 10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn interpolation_clamps_past_last_sample() {
        let s = [(2usize, 5.0)];
        let out = linear_interpolate(&s, 5);
        assert_eq!(out, vec![5.0; 5]);
    }

    #[test]
    fn subsample_weekly_preserves_sampled_days() {
        let daily: Vec<f64> = (0..30).map(|d| d as f64).collect();
        let weekly = subsample_and_interpolate(&daily, 7);
        for d in (0..30).step_by(7) {
            assert_eq!(weekly[d], d as f64);
        }
        // A linear signal survives linear interpolation exactly.
        for (d, v) in weekly.iter().enumerate().take(29) {
            assert!((v - d as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn subsample_biweekly_smooths_high_frequency() {
        // A 7-day oscillation disappears under 14-day sampling at phase 0.
        let daily: Vec<f64> = (0..56)
            .map(|d| if d % 14 < 7 { 0.0 } else { 1.0 })
            .collect();
        let biweekly = subsample_and_interpolate(&daily, 14);
        assert!(biweekly.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn calendar_arithmetic() {
        assert_eq!(days_in_year(1996), 366);
        assert_eq!(days_in_year(1999), 365);
        assert_eq!(days_in_year(2000), 366);
        assert_eq!(days_in_year(1900), 365);
        // 1996–2008: 13 years, 4 leap years (1996, 2000, 2004, 2008).
        assert_eq!(days_in_range(1996, 2008), 13 * 365 + 4);
        // Train 1996–2005, test 2006–2008.
        assert_eq!(days_in_range(1996, 2005), 10 * 365 + 3);
        assert_eq!(days_in_range(2006, 2008), 3 * 365 + 1);
    }

    #[test]
    fn split_arithmetic() {
        let s = Split { start: 10, end: 25 };
        assert_eq!(s.len(), 15);
        assert!(!s.is_empty());
        assert!(Split { start: 5, end: 5 }.is_empty());
    }

    #[test]
    fn station_series_accessors() {
        let mut s = StationSeries::zeroed(3);
        s.vars[1][4] = 17.0;
        assert_eq!(s.days(), 3);
        assert_eq!(s.var_series(4), vec![0.0, 17.0, 0.0]);
    }
}
