//! Property tests for the ARIMAX implementation: fitting must be total on
//! any sane series, forecasts must have the requested length and stay
//! finite, and the AIC selection must never pick an order it cannot
//! support.

use gmr_baselines::arimax::{ArimaxConfig, ArimaxModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn series(seed: u64, n: usize, ar: f64, noise: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut y = vec![5.0];
    for _ in 1..n {
        let last = *y.last().expect("non-empty");
        y.push(1.0 + ar * last + rng.gen_range(-noise..noise.max(1e-9)));
    }
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fit_is_total_on_stationary_series(
        seed in any::<u64>(),
        n in 60usize..400,
        ar in -0.9f64..0.9,
        noise in 0.01f64..2.0,
    ) {
        let y = series(seed, n, ar, noise);
        let exog: Vec<Vec<f64>> = vec![vec![]; n];
        let m = ArimaxModel::fit(&y, &exog, &ArimaxConfig::default()).expect("fits");
        prop_assert!(m.p >= 1 && m.p <= 7);
        prop_assert!(m.d <= 1);
        prop_assert!(m.aic.is_finite());
        prop_assert!(m.coef.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn forecast_has_requested_length_and_stays_finite(
        seed in any::<u64>(),
        n in 60usize..200,
        horizon in 1usize..120,
    ) {
        let y = series(seed, n, 0.6, 0.5);
        let exog: Vec<Vec<f64>> = vec![vec![]; n];
        let m = ArimaxModel::fit(&y, &exog, &ArimaxConfig::default()).expect("fits");
        let future: Vec<Vec<f64>> = vec![vec![]; horizon];
        let f = m.forecast(&y, &future);
        prop_assert_eq!(f.len(), horizon);
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fitted_series_aligns_with_input(
        seed in any::<u64>(),
        n in 60usize..200,
    ) {
        let y = series(seed, n, 0.5, 0.3);
        let exog: Vec<Vec<f64>> = vec![vec![]; n];
        let m = ArimaxModel::fit(&y, &exog, &ArimaxConfig::default()).expect("fits");
        let fitted = m.fitted(&y, &exog);
        prop_assert_eq!(fitted.len(), y.len());
        prop_assert!(fitted.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn constant_series_forecasts_the_constant(level in 0.5f64..100.0) {
        let y = vec![level; 120];
        let exog: Vec<Vec<f64>> = vec![vec![]; 120];
        let m = ArimaxModel::fit(&y, &exog, &ArimaxConfig::default()).expect("fits");
        let f = m.forecast(&y, &vec![vec![]; 30]);
        for v in f {
            prop_assert!((v - level).abs() < 1e-3 * level.max(1.0), "{v} vs {level}");
        }
    }
}
