//! Uniform scoring record for the Table V comparison.

use gmr_bio::RiverProblem;
use gmr_expr::Expr;

/// Train/test accuracy of one method, as one row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodScore {
    /// Method name as printed in the table.
    pub name: String,
    /// Method class ("Knowledge-driven", "Data-driven", "Model calibration",
    /// "Model revision").
    pub class: String,
    /// Training RMSE.
    pub train_rmse: f64,
    /// Training MAE.
    pub train_mae: f64,
    /// Test RMSE.
    pub test_rmse: f64,
    /// Test MAE.
    pub test_mae: f64,
}

impl MethodScore {
    /// Score a process-model system on both splits.
    pub fn from_system(
        name: impl Into<String>,
        class: impl Into<String>,
        eqs: &[Expr; 2],
        train: &RiverProblem,
        test: &RiverProblem,
    ) -> Self {
        MethodScore {
            name: name.into(),
            class: class.into(),
            train_rmse: train.rmse(eqs),
            train_mae: train.mae(eqs),
            test_rmse: test.rmse(eqs),
            test_mae: test.mae(eqs),
        }
    }

    /// Score pre-computed prediction series on both splits.
    pub fn from_predictions(
        name: impl Into<String>,
        class: impl Into<String>,
        train_pred: &[f64],
        train_obs: &[f64],
        test_pred: &[f64],
        test_obs: &[f64],
    ) -> Self {
        MethodScore {
            name: name.into(),
            class: class.into(),
            train_rmse: gmr_hydro::rmse(train_pred, train_obs),
            train_mae: gmr_hydro::mae(train_pred, train_obs),
            test_rmse: gmr_hydro::rmse(test_pred, test_obs),
            test_mae: gmr_hydro::mae(test_pred, test_obs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_predictions_uses_shared_metrics() {
        let s = MethodScore::from_predictions(
            "X",
            "Data-driven",
            &[1.0, 2.0],
            &[1.0, 4.0],
            &[0.0],
            &[3.0],
        );
        assert!((s.train_rmse - (2.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.train_mae, 1.0);
        assert_eq!(s.test_rmse, 3.0);
        assert_eq!(s.test_mae, 3.0);
    }
}
