//! The nine model-calibration algorithms of §IV-B3.
//!
//! Each works against the [`crate::objective::Objective`] trait
//! with a fixed evaluation budget, so the Table V comparison is
//! budget-matched rather than iteration-matched. All are from-scratch
//! implementations following the original publications cited by the paper
//! (DREAM: Vrugt 2016; SCE-UA: Duan et al. 1994; DE-MCz: Vrugt et al. 2008).

pub mod demcz;
pub mod dream;
pub mod ga;
pub mod lhs;
pub mod mc;
pub mod mcmc;
pub mod neldermead;
pub mod sa;
pub mod sceua;

pub use demcz::DeMcZ;
pub use dream::Dream;
pub use ga::GeneticAlgorithm;
pub use lhs::LatinHypercube;
pub use mc::MonteCarlo;
pub use mcmc::Metropolis;
pub use neldermead::NelderMead;
pub use sa::SimulatedAnnealing;
pub use sceua::SceUa;

use crate::objective::Objective;
use rand::Rng;

/// Result of one calibration run.
#[derive(Debug, Clone)]
pub struct CalibrationOutcome {
    /// Best parameter vector found.
    pub theta: Vec<f64>,
    /// Objective value at `theta`.
    pub value: f64,
    /// Objective evaluations consumed.
    pub evaluations: usize,
}

/// A budgeted black-box calibrator.
pub trait Calibrator {
    /// Display name (as in Table V).
    fn name(&self) -> &'static str;
    /// Minimise `obj` within `budget` evaluations.
    fn calibrate(&self, obj: &dyn Objective, budget: usize, seed: u64) -> CalibrationOutcome;
}

/// All nine calibrators with reasonable default hyper-parameters, in the
/// Table V order.
pub fn all_calibrators() -> Vec<Box<dyn Calibrator>> {
    vec![
        Box::new(GeneticAlgorithm::default()),
        Box::new(MonteCarlo),
        Box::new(LatinHypercube),
        Box::new(NelderMead::default()),
        Box::new(Metropolis::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(Dream::default()),
        Box::new(SceUa::default()),
        Box::new(DeMcZ::default()),
    ]
}

// ---- Shared sampling helpers ----

pub(crate) fn gauss<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A uniform draw inside the objective's box.
pub(crate) fn uniform_point<R: Rng>(obj: &dyn Objective, rng: &mut R) -> Vec<f64> {
    (0..obj.dim())
        .map(|i| {
            let (lo, hi) = obj.bounds(i);
            if lo < hi {
                rng.gen_range(lo..hi)
            } else {
                lo
            }
        })
        .collect()
}

/// The prior-mean starting point.
pub(crate) fn init_point(obj: &dyn Objective) -> Vec<f64> {
    (0..obj.dim()).map(|i| obj.init(i)).collect()
}

/// Per-coordinate σ as a fraction of the box width.
pub(crate) fn box_sigma(obj: &dyn Objective, frac: f64) -> Vec<f64> {
    (0..obj.dim())
        .map(|i| {
            let (lo, hi) = obj.bounds(i);
            ((hi - lo) * frac).max(1e-12)
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::objective::test_objectives::Sphere;

    /// Assert a calibrator reaches near-optimum on the sphere within a
    /// modest budget, respects the box, and reports its evaluation count.
    pub fn check_on_sphere(c: &dyn Calibrator, budget: usize, tol: f64) {
        let obj = Sphere { d: 4 };
        let out = c.calibrate(&obj, budget, 42);
        assert!(
            out.value < tol,
            "{} reached only {} (tol {tol})",
            c.name(),
            out.value
        );
        assert!(
            out.evaluations <= budget + 64,
            "{} overspent: {}",
            c.name(),
            out.evaluations
        );
        for (i, t) in out.theta.iter().enumerate() {
            let (lo, hi) = obj.bounds(i);
            assert!(*t >= lo && *t <= hi, "{}: theta[{i}] out of box", c.name());
        }
        // Reported value matches re-evaluation.
        assert!((obj.eval(&out.theta) - out.value).abs() < 1e-12);
    }

    /// Determinism: same seed, same answer.
    pub fn check_deterministic(c: &dyn Calibrator) {
        let obj = Sphere { d: 3 };
        let a = c.calibrate(&obj, 400, 7);
        let b = c.calibrate(&obj, 400, 7);
        assert_eq!(a.theta, b.theta, "{} is not deterministic", c.name());
        let d = c.calibrate(&obj, 400, 8);
        let _ = d; // different seed may or may not differ; no assertion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_table_v() {
        let names: Vec<&str> = all_calibrators().iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec!["GA", "MC", "LHS", "MLE", "MCMC", "SA", "DREAM", "SCE-UA", "DE-MCz"]
        );
    }
}
