//! Metropolis MCMC calibration.
//!
//! A random-walk Metropolis sampler over the parameter box, with the
//! pseudo-likelihood `exp(−RMSE / T)`. Calibration keeps the best visited
//! point (we sample to *search*, as the SPOTPY-style usage in the paper
//! does, not to characterise the posterior).

use super::{box_sigma, gauss, init_point, CalibrationOutcome, Calibrator};
use crate::objective::Objective;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-walk Metropolis.
pub struct Metropolis {
    /// Proposal σ as a fraction of the box width.
    pub sigma_frac: f64,
    /// Pseudo-likelihood temperature.
    pub temperature: f64,
}

impl Default for Metropolis {
    fn default() -> Self {
        Metropolis {
            sigma_frac: 0.05,
            temperature: 1.0,
        }
    }
}

impl Calibrator for Metropolis {
    fn name(&self) -> &'static str {
        "MCMC"
    }

    fn calibrate(&self, obj: &dyn Objective, budget: usize, seed: u64) -> CalibrationOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = box_sigma(obj, self.sigma_frac);
        let mut cur = init_point(obj);
        let mut cur_v = obj.eval(&cur);
        let mut evals = 1usize;
        let mut best = cur.clone();
        let mut best_v = cur_v;
        // Burn-in from uniform pre-samples: chains started on a degenerate
        // plateau (the unstable prior-mean model) otherwise wander blind.
        // The count is fixed (not a budget fraction) so that two runs with
        // the same seed share an evaluation prefix, which makes the best
        // visited point monotone in the budget.
        for _ in 0..32 {
            if evals >= budget {
                break;
            }
            let p = super::uniform_point(obj, &mut rng);
            let v = obj.eval(&p);
            evals += 1;
            if v < cur_v {
                cur = p.clone();
                cur_v = v;
            }
            if v < best_v {
                best = p;
                best_v = v;
            }
        }
        while evals < budget {
            let mut prop: Vec<f64> = cur
                .iter()
                .zip(&sigma)
                .map(|(c, s)| gauss(&mut rng, *c, *s))
                .collect();
            obj.clamp(&mut prop);
            let v = obj.eval(&prop);
            evals += 1;
            let accept = v <= cur_v || {
                let log_alpha = (cur_v - v) / self.temperature.max(1e-12);
                rng.gen_range(0.0..1.0_f64).ln() < log_alpha
            };
            if accept {
                cur = prop;
                cur_v = v;
                if v < best_v {
                    best_v = v;
                    best = cur.clone();
                }
            }
        }
        CalibrationOutcome {
            theta: best,
            value: best_v,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::objective::test_objectives::Sphere;

    #[test]
    fn finds_sphere_minimum() {
        check_on_sphere(&Metropolis::default(), 3000, 0.05);
    }

    #[test]
    fn deterministic() {
        check_deterministic(&Metropolis::default());
    }

    #[test]
    fn best_is_monotone_in_budget() {
        let obj = Sphere { d: 4 };
        let small = Metropolis::default().calibrate(&obj, 200, 5);
        let large = Metropolis::default().calibrate(&obj, 2000, 5);
        assert!(large.value <= small.value);
    }
}
