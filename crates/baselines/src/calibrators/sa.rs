//! Simulated annealing calibration.
//!
//! Random-walk neighbour proposals with a Metropolis acceptance rule under
//! a geometric cooling schedule; the proposal width shrinks with the
//! temperature so late iterations refine locally.

use super::{box_sigma, gauss, init_point, CalibrationOutcome, Calibrator};
use crate::objective::Objective;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated annealing.
pub struct SimulatedAnnealing {
    /// Initial temperature (in objective units).
    pub t0: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Initial proposal σ as a fraction of the box width.
    pub sigma_frac: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            t0: 5.0,
            t_end: 1e-3,
            sigma_frac: 0.15,
        }
    }
}

impl Calibrator for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn calibrate(&self, obj: &dyn Objective, budget: usize, seed: u64) -> CalibrationOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma0 = box_sigma(obj, self.sigma_frac);
        let mut cur = init_point(obj);
        let mut cur_v = obj.eval(&cur);
        let mut evals = 1usize;
        let mut best = cur.clone();
        let mut best_v = cur_v;
        let steps = budget.saturating_sub(1).max(1);
        let cool = (self.t_end / self.t0).powf(1.0 / steps as f64);
        let mut temp = self.t0;
        while evals < budget {
            // Proposal width tracks the temperature.
            let scale = (temp / self.t0).sqrt().max(0.02);
            let mut prop: Vec<f64> = cur
                .iter()
                .zip(&sigma0)
                .map(|(c, s)| gauss(&mut rng, *c, *s * scale))
                .collect();
            obj.clamp(&mut prop);
            let v = obj.eval(&prop);
            evals += 1;
            let accept = v <= cur_v || rng.gen_range(0.0..1.0_f64) < ((cur_v - v) / temp).exp();
            if accept {
                cur = prop;
                cur_v = v;
                if v < best_v {
                    best_v = v;
                    best = cur.clone();
                }
            }
            temp = (temp * cool).max(self.t_end);
        }
        CalibrationOutcome {
            theta: best,
            value: best_v,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn finds_sphere_minimum() {
        check_on_sphere(&SimulatedAnnealing::default(), 3000, 0.01);
    }

    #[test]
    fn deterministic() {
        check_deterministic(&SimulatedAnnealing::default());
    }

    #[test]
    fn accepts_uphill_moves_early() {
        // With a high starting temperature the chain must wander: the final
        // *current* point differs from the start even when the start is the
        // optimum's basin edge. We check indirectly: the best found improves
        // on the initial point despite a rugged acceptance path.
        use crate::objective::test_objectives::Rosenbrock;
        let out = SimulatedAnnealing::default().calibrate(&Rosenbrock, 4000, 11);
        assert!(out.value < 5.0, "SA stalled at {}", out.value);
    }
}
