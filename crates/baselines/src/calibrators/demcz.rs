//! DE-MC(Z) — Differential Evolution Markov Chain with sampling from the
//! past (Vrugt et al., 2008; ter Braak & Vrugt, 2008).
//!
//! Like DREAM, proposals jump along chain differences, but the difference
//! vectors are drawn from an *archive* `Z` of past states rather than the
//! current chain positions, which keeps detailed balance with far fewer
//! parallel chains and improves mixing on high-dimensional problems.

use super::{gauss, init_point, uniform_point, CalibrationOutcome, Calibrator};
use crate::objective::Objective;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DE-MCz sampler used as a budgeted optimiser.
pub struct DeMcZ {
    /// Number of parallel chains (DE-MCz works with as few as 3).
    pub chains: usize,
    /// Probability of a γ = 1 mode-hopping jump.
    pub p_jump: f64,
    /// Append the current states to the archive every `thin` sweeps.
    pub thin: usize,
}

impl Default for DeMcZ {
    fn default() -> Self {
        DeMcZ {
            chains: 3,
            p_jump: 0.1,
            thin: 2,
        }
    }
}

impl Calibrator for DeMcZ {
    fn name(&self) -> &'static str {
        "DE-MCz"
    }

    fn calibrate(&self, obj: &dyn Objective, budget: usize, seed: u64) -> CalibrationOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = obj.dim();
        let n = self.chains.max(3);
        let mut evals = 0usize;

        // Archive seeded with an initial population (10·d points is the
        // published recommendation; trimmed to the budget).
        let z0 = (10 * d).clamp(n, budget.max(n));
        let mut archive: Vec<Vec<f64>> = Vec::with_capacity(z0);
        let mut states: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n);
        let mean = init_point(obj);
        let v = obj.eval(&mean);
        evals += 1;
        let mut best = (mean.clone(), v);
        archive.push(mean.clone());
        states.push((mean, v));
        while archive.len() < z0 && evals < budget {
            let p = uniform_point(obj, &mut rng);
            if states.len() < n {
                let v = obj.eval(&p);
                evals += 1;
                if v < best.1 {
                    best = (p.clone(), v);
                }
                states.push((p.clone(), v));
            }
            archive.push(p);
        }

        let gamma0 = 2.38 / (2.0 * d as f64).sqrt();
        let mut sweep = 0usize;
        while evals < budget {
            sweep += 1;
            #[allow(clippy::needless_range_loop)] // states[c] is re-assigned in the loop body
            for c in 0..states.len() {
                if evals >= budget {
                    break;
                }
                let r1 = rng.gen_range(0..archive.len());
                let r2 = rng.gen_range(0..archive.len());
                if r1 == r2 {
                    continue;
                }
                let gamma = if rng.gen_bool(self.p_jump) {
                    1.0
                } else {
                    gamma0
                };
                let mut prop = states[c].0.clone();
                for i in 0..d {
                    prop[i] +=
                        gamma * (archive[r1][i] - archive[r2][i]) + gauss(&mut rng, 0.0, 1e-6);
                }
                obj.clamp(&mut prop);
                let v = obj.eval(&prop);
                evals += 1;
                let cur_v = states[c].1;
                let accept = v <= cur_v || rng.gen_range(0.0..1.0_f64).ln() < cur_v - v;
                if accept {
                    states[c] = (prop, v);
                    if v < best.1 {
                        best = states[c].clone();
                    }
                }
            }
            if self.thin > 0 && sweep.is_multiple_of(self.thin) {
                for (p, _) in &states {
                    archive.push(p.clone());
                }
            }
        }
        CalibrationOutcome {
            theta: best.0,
            value: best.1,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn finds_sphere_minimum() {
        check_on_sphere(&DeMcZ::default(), 4000, 0.01);
    }

    #[test]
    fn deterministic() {
        check_deterministic(&DeMcZ::default());
    }

    #[test]
    fn archive_grows_over_time() {
        // Indirect check: a longer run must not degrade the result (the
        // archive keeps supplying useful difference vectors).
        use crate::objective::test_objectives::Sphere;
        let obj = Sphere { d: 6 };
        let short = DeMcZ::default().calibrate(&obj, 500, 3);
        let long = DeMcZ::default().calibrate(&obj, 5000, 3);
        assert!(long.value <= short.value);
    }
}
