//! SCE-UA — Shuffled Complex Evolution (Duan, Sorooshian & Gupta, 1994).
//!
//! The population is partitioned into complexes; each complex evolves
//! independently by the competitive complex evolution (CCE) step — a
//! simplex-style reflection/contraction of the worst member of a randomly
//! weighted sub-simplex — and the complexes are periodically shuffled
//! together and re-partitioned, spreading information globally.

use super::{init_point, uniform_point, CalibrationOutcome, Calibrator};
use crate::objective::Objective;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// SCE-UA global optimiser.
pub struct SceUa {
    /// Number of complexes.
    pub complexes: usize,
    /// Points per complex (0 = the canonical `2·dim + 1`).
    pub per_complex: usize,
    /// CCE evolution steps per shuffle.
    pub cce_steps: usize,
}

impl Default for SceUa {
    fn default() -> Self {
        SceUa {
            complexes: 4,
            per_complex: 0,
            cce_steps: 8,
        }
    }
}

impl Calibrator for SceUa {
    fn name(&self) -> &'static str {
        "SCE-UA"
    }

    fn calibrate(&self, obj: &dyn Objective, budget: usize, seed: u64) -> CalibrationOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = obj.dim();
        let m = if self.per_complex == 0 {
            2 * d + 1
        } else {
            self.per_complex
        };
        let pop_n = self.complexes.max(1) * m;
        let mut evals = 0usize;

        let mut pop: Vec<(Vec<f64>, f64)> = Vec::with_capacity(pop_n);
        let mean = init_point(obj);
        let v = obj.eval(&mean);
        evals += 1;
        pop.push((mean, v));
        while pop.len() < pop_n && evals < budget {
            let p = uniform_point(obj, &mut rng);
            let v = obj.eval(&p);
            evals += 1;
            pop.push((p, v));
        }

        while evals < budget {
            // Rank and deal into complexes: point k goes to complex k mod q.
            pop.sort_by(|a, b| a.1.total_cmp(&b.1));
            let q = self.complexes.max(1);
            let mut complexes: Vec<Vec<(Vec<f64>, f64)>> = vec![Vec::new(); q];
            for (k, p) in pop.drain(..).enumerate() {
                complexes[k % q].push(p);
            }
            for complex in &mut complexes {
                for _ in 0..self.cce_steps {
                    if evals >= budget || complex.len() < 3 {
                        break;
                    }
                    // Triangular-weighted sub-simplex of size d+1 (better
                    // points more likely), evolve its worst member.
                    complex.sort_by(|a, b| a.1.total_cmp(&b.1));
                    let s = (d + 1).min(complex.len());
                    let mut idx: Vec<usize> = Vec::with_capacity(s);
                    while idx.len() < s {
                        // Triangular distribution over ranks.
                        let u: f64 = rng.gen_range(0.0..1.0);
                        let r = ((1.0 - (1.0 - u).sqrt()) * complex.len() as f64) as usize;
                        let r = r.min(complex.len() - 1);
                        if !idx.contains(&r) {
                            idx.push(r);
                        }
                    }
                    idx.sort_unstable();
                    let worst_rank = *idx.last().expect("sub-simplex non-empty");
                    // Centroid of the sub-simplex without its worst.
                    let mut centroid = vec![0.0; d];
                    for &r in &idx[..idx.len() - 1] {
                        for (c, x) in centroid.iter_mut().zip(&complex[r].0) {
                            *c += x / (idx.len() - 1) as f64;
                        }
                    }
                    let worst = complex[worst_rank].clone();
                    // Reflection.
                    let mut refl: Vec<f64> = centroid
                        .iter()
                        .zip(&worst.0)
                        .map(|(c, w)| 2.0 * c - w)
                        .collect();
                    obj.clamp(&mut refl);
                    let refl_v = obj.eval(&refl);
                    evals += 1;
                    if refl_v < worst.1 {
                        complex[worst_rank] = (refl, refl_v);
                        continue;
                    }
                    if evals >= budget {
                        break;
                    }
                    // Contraction.
                    let mut con: Vec<f64> = centroid
                        .iter()
                        .zip(&worst.0)
                        .map(|(c, w)| 0.5 * (c + w))
                        .collect();
                    obj.clamp(&mut con);
                    let con_v = obj.eval(&con);
                    evals += 1;
                    if con_v < worst.1 {
                        complex[worst_rank] = (con, con_v);
                    } else if evals < budget {
                        // Random replacement (mutation step of CCE).
                        let p = uniform_point(obj, &mut rng);
                        let v = obj.eval(&p);
                        evals += 1;
                        complex[worst_rank] = (p, v);
                    }
                }
            }
            // Shuffle back together.
            for mut c in complexes {
                pop.append(&mut c);
            }
            pop.shuffle(&mut rng);
        }
        pop.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (theta, value) = pop.into_iter().next().expect("population non-empty");
        CalibrationOutcome {
            theta,
            value,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::objective::test_objectives::Rosenbrock;

    #[test]
    fn finds_sphere_minimum() {
        check_on_sphere(&SceUa::default(), 4000, 0.01);
    }

    #[test]
    fn deterministic() {
        check_deterministic(&SceUa::default());
    }

    #[test]
    fn handles_rosenbrock() {
        let out = SceUa::default().calibrate(&Rosenbrock, 5000, 2);
        assert!(out.value < 0.5, "SCE-UA stalled at {}", out.value);
    }
}
