//! Maximum-likelihood calibration via Nelder–Mead simplex descent.
//!
//! Under i.i.d. Gaussian observation errors, maximising the likelihood of
//! the observed series is exactly minimising RMSE, so the paper's "MLE"
//! comparator is a local descent on the same objective. We use the
//! Nelder–Mead simplex (the standard derivative-free choice for this kind
//! of simulation objective) with box clamping and periodic restarts from
//! the best point when the simplex collapses.

use super::{init_point, uniform_point, CalibrationOutcome, Calibrator};
use crate::objective::Objective;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Nelder–Mead with restarts.
pub struct NelderMead {
    /// Reflection coefficient.
    pub alpha: f64,
    /// Expansion coefficient.
    pub gamma: f64,
    /// Contraction coefficient.
    pub rho: f64,
    /// Shrink coefficient.
    pub sigma: f64,
    /// Initial simplex step as a fraction of each box width.
    pub step_frac: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            step_frac: 0.15,
        }
    }
}

impl NelderMead {
    fn centroid(simplex: &[(Vec<f64>, f64)], exclude_last: bool) -> Vec<f64> {
        let n = simplex.len() - usize::from(exclude_last);
        let d = simplex[0].0.len();
        let mut c = vec![0.0; d];
        for (p, _) in &simplex[..n] {
            for (ci, pi) in c.iter_mut().zip(p) {
                *ci += pi / n as f64;
            }
        }
        c
    }
}

impl Calibrator for NelderMead {
    fn name(&self) -> &'static str {
        "MLE"
    }

    fn calibrate(&self, obj: &dyn Objective, budget: usize, seed: u64) -> CalibrationOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = obj.dim();
        let mut evals = 0usize;
        let eval = |theta: &mut Vec<f64>, evals: &mut usize| -> f64 {
            obj.clamp(theta);
            *evals += 1;
            obj.eval(theta)
        };

        let mut global_best: (Vec<f64>, f64) = {
            let mut p = init_point(obj);
            let v = eval(&mut p, &mut evals);
            (p, v)
        };
        // Warm start: when the prior mean sits on a degenerate plateau (the
        // unstable expert model does), a local descent has no signal. Spend
        // a tenth of the budget on uniform pre-sampling and descend from the
        // best point found.
        let presample = budget / 10;
        for _ in 0..presample {
            if evals >= budget {
                break;
            }
            let mut p = uniform_point(obj, &mut rng);
            let v = eval(&mut p, &mut evals);
            if v < global_best.1 {
                global_best = (p, v);
            }
        }
        // Where the next (re)start builds its simplex; jittered on restart
        // while `global_best` itself stays pristine.
        let mut restart_base = global_best.0.clone();

        'restarts: while evals < budget {
            // Build a fresh simplex around the restart base (first pass:
            // the prior mean), with axis steps scaled to the box.
            let mut base = restart_base.clone();
            let base_v = eval(&mut base, &mut evals);
            if base_v < global_best.1 {
                global_best = (base.clone(), base_v);
            }
            let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(d + 1);
            simplex.push((base.clone(), base_v));
            for i in 0..d {
                let mut p = base.clone();
                let (lo, hi) = obj.bounds(i);
                p[i] += (hi - lo) * self.step_frac;
                let v = eval(&mut p, &mut evals);
                simplex.push((p, v));
                if evals >= budget {
                    break;
                }
            }

            while evals < budget {
                simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
                if simplex[0].1 < global_best.1 {
                    global_best = simplex[0].clone();
                }
                // Collapse test: restart from a perturbed best.
                let spread = simplex.last().expect("non-empty").1 - simplex[0].1;
                if spread.abs() < 1e-12 {
                    // Restart from the best point blended toward a uniform
                    // draw (the best itself is preserved).
                    let u = uniform_point(obj, &mut rng);
                    restart_base = global_best
                        .0
                        .iter()
                        .zip(u)
                        .map(|(b, u)| 0.8 * b + 0.2 * u)
                        .collect();
                    continue 'restarts;
                }
                let worst_idx = simplex.len() - 1;
                let centroid = Self::centroid(&simplex, true);
                let worst = simplex[worst_idx].clone();

                let blend = |t: f64| -> Vec<f64> {
                    centroid
                        .iter()
                        .zip(&worst.0)
                        .map(|(c, w)| c + t * (c - w))
                        .collect()
                };
                let mut refl = blend(self.alpha);
                let refl_v = eval(&mut refl, &mut evals);
                if refl_v < simplex[0].1 {
                    // Try expansion.
                    let mut exp = blend(self.gamma);
                    let exp_v = eval(&mut exp, &mut evals);
                    simplex[worst_idx] = if exp_v < refl_v {
                        (exp, exp_v)
                    } else {
                        (refl, refl_v)
                    };
                } else if refl_v < simplex[worst_idx - 1].1 {
                    simplex[worst_idx] = (refl, refl_v);
                } else {
                    // Contraction toward the centroid.
                    let mut con = blend(-self.rho);
                    let con_v = eval(&mut con, &mut evals);
                    if con_v < worst.1 {
                        simplex[worst_idx] = (con, con_v);
                    } else {
                        // Shrink toward the best vertex.
                        let best = simplex[0].0.clone();
                        for entry in simplex.iter_mut().skip(1) {
                            let mut p: Vec<f64> = best
                                .iter()
                                .zip(&entry.0)
                                .map(|(b, x)| b + self.sigma * (x - b))
                                .collect();
                            let v = eval(&mut p, &mut evals);
                            *entry = (p, v);
                            if evals >= budget {
                                break;
                            }
                        }
                    }
                }
            }
        }
        CalibrationOutcome {
            theta: global_best.0,
            value: global_best.1,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::objective::test_objectives::Rosenbrock;

    #[test]
    fn finds_sphere_minimum_precisely() {
        check_on_sphere(&NelderMead::default(), 1500, 1e-6);
    }

    #[test]
    fn deterministic() {
        check_deterministic(&NelderMead::default());
    }

    #[test]
    fn descends_rosenbrock_valley() {
        let out = NelderMead::default().calibrate(&Rosenbrock, 3000, 1);
        assert!(out.value < 0.1, "NM stalled at {}", out.value);
    }
}
