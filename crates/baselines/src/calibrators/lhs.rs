//! Latin hypercube sampling: stratified space-filling random search.
//!
//! The budget is split into rounds; each round draws one sample per stratum
//! per dimension with independently shuffled stratum assignments, giving
//! much better marginal coverage than plain Monte Carlo at the same budget.

use super::{init_point, CalibrationOutcome, Calibrator};
use crate::objective::Objective;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Latin hypercube sampler.
pub struct LatinHypercube;

impl LatinHypercube {
    /// One LHS design of `n` points over the objective's box.
    fn design(obj: &dyn Objective, n: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let d = obj.dim();
        // For each dimension, a shuffled assignment of strata to points.
        let mut strata: Vec<Vec<usize>> = Vec::with_capacity(d);
        for _ in 0..d {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(rng);
            strata.push(order);
        }
        (0..n)
            .map(|p| {
                (0..d)
                    .map(|i| {
                        let (lo, hi) = obj.bounds(i);
                        let w = (hi - lo) / n as f64;
                        let s = strata[i][p] as f64;
                        lo + w * (s + rng.gen_range(0.0..1.0))
                    })
                    .collect()
            })
            .collect()
    }
}

impl Calibrator for LatinHypercube {
    fn name(&self) -> &'static str {
        "LHS"
    }

    fn calibrate(&self, obj: &dyn Objective, budget: usize, seed: u64) -> CalibrationOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = init_point(obj);
        let mut best_v = obj.eval(&best);
        let mut evals = 1;
        let round = 64.min(budget.max(1));
        while evals < budget {
            let n = round.min(budget - evals);
            for cand in Self::design(obj, n.max(1), &mut rng) {
                let v = obj.eval(&cand);
                evals += 1;
                if v < best_v {
                    best_v = v;
                    best = cand;
                }
            }
        }
        CalibrationOutcome {
            theta: best,
            value: best_v,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::objective::test_objectives::Sphere;

    #[test]
    fn finds_sphere_minimum_roughly() {
        check_on_sphere(&LatinHypercube, 3000, 0.05);
    }

    #[test]
    fn deterministic() {
        check_deterministic(&LatinHypercube);
    }

    #[test]
    fn design_is_stratified_per_dimension() {
        let obj = Sphere { d: 2 };
        let mut rng = StdRng::seed_from_u64(0);
        let n = 10;
        let pts = LatinHypercube::design(&obj, n, &mut rng);
        for dim in 0..2 {
            let mut seen = vec![false; n];
            for p in &pts {
                let stratum = ((p[dim] - 0.0) / (1.0 / n as f64)).floor() as usize;
                let stratum = stratum.min(n - 1);
                assert!(
                    !seen[stratum],
                    "two points share stratum {stratum} in dim {dim}"
                );
                seen[stratum] = true;
            }
            assert!(
                seen.iter().all(|&s| s),
                "not all strata covered in dim {dim}"
            );
        }
    }
}
