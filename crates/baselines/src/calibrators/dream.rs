//! DREAM — DiffeRential Evolution Adaptive Metropolis (Vrugt, 2016).
//!
//! Multiple chains evolve in parallel; each proposal jumps along the
//! difference of two randomly chosen *other* chains, scaled by
//! γ = 2.38 / √(2·d′) where d′ counts the dimensions kept in the jump
//! (per-dimension crossover with probability CR), plus small uniform jitter.
//! Every few steps γ is set to 1 for mode-hopping. Acceptance is Metropolis
//! on the pseudo-likelihood `exp(−f)`; calibration reports the best visited
//! point.

use super::{gauss, init_point, uniform_point, CalibrationOutcome, Calibrator};
use crate::objective::Objective;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DREAM sampler used as a budgeted optimiser.
pub struct Dream {
    /// Number of chains.
    pub chains: usize,
    /// Crossover probability per dimension.
    pub cr: f64,
    /// Every `jump_every`-th proposal uses γ = 1.
    pub jump_every: usize,
}

impl Default for Dream {
    fn default() -> Self {
        Dream {
            chains: 8,
            cr: 0.9,
            jump_every: 5,
        }
    }
}

impl Calibrator for Dream {
    fn name(&self) -> &'static str {
        "DREAM"
    }

    fn calibrate(&self, obj: &dyn Objective, budget: usize, seed: u64) -> CalibrationOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = obj.dim();
        let n = self.chains.max(3);
        let mut evals = 0usize;

        // Initialise chains: prior mean plus uniform draws.
        let mut states: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n);
        let mean = init_point(obj);
        let v = obj.eval(&mean);
        evals += 1;
        states.push((mean, v));
        while states.len() < n && evals < budget {
            let p = uniform_point(obj, &mut rng);
            let v = obj.eval(&p);
            evals += 1;
            states.push((p, v));
        }
        let mut best = states
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("chains initialised")
            .clone();

        let mut step = 0usize;
        while evals < budget {
            for c in 0..states.len() {
                if evals >= budget {
                    break;
                }
                step += 1;
                // Pick two distinct other chains.
                let r1 = rng.gen_range(0..states.len());
                let r2 = rng.gen_range(0..states.len());
                if r1 == c || r2 == c || r1 == r2 {
                    continue;
                }
                // Subspace crossover mask.
                let mask: Vec<bool> = (0..d).map(|_| rng.gen_bool(self.cr)).collect();
                let d_eff = mask.iter().filter(|&&m| m).count().max(1);
                let gamma = if self.jump_every > 0 && step.is_multiple_of(self.jump_every) {
                    1.0
                } else {
                    2.38 / ((2.0 * d_eff as f64).sqrt())
                };
                let mut prop = states[c].0.clone();
                for i in 0..d {
                    if mask[i] {
                        let jitter = gauss(&mut rng, 0.0, 1e-6);
                        let e = rng.gen_range(-0.05..0.05);
                        prop[i] += (1.0 + e) * gamma * (states[r1].0[i] - states[r2].0[i]) + jitter;
                    }
                }
                obj.clamp(&mut prop);
                let v = obj.eval(&prop);
                evals += 1;
                let cur_v = states[c].1;
                let accept = v <= cur_v || rng.gen_range(0.0..1.0_f64).ln() < cur_v - v;
                if accept {
                    states[c] = (prop, v);
                    if v < best.1 {
                        best = states[c].clone();
                    }
                }
            }
        }
        CalibrationOutcome {
            theta: best.0,
            value: best.1,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn finds_sphere_minimum() {
        check_on_sphere(&Dream::default(), 4000, 0.05);
    }

    #[test]
    fn deterministic() {
        check_deterministic(&Dream::default());
    }

    #[test]
    fn needs_at_least_three_chains() {
        // Fewer chains are silently promoted to three.
        let d = Dream {
            chains: 1,
            ..Default::default()
        };
        check_on_sphere(&d, 4000, 0.05);
    }
}
