//! Real-coded genetic algorithm for parameter calibration.
//!
//! The GA the paper uses for calibration optimises a fixed-length real
//! vector (no structure search): tournament selection, BLX-α blend
//! crossover, Gaussian mutation and elitism.

use super::{box_sigma, gauss, init_point, uniform_point, CalibrationOutcome, Calibrator};
use crate::objective::Objective;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Real-coded GA.
pub struct GeneticAlgorithm {
    /// Population size.
    pub pop_size: usize,
    /// Tournament size.
    pub tournament: usize,
    /// Elite carried over unchanged.
    pub elite: usize,
    /// BLX-α blending range extension.
    pub alpha: f64,
    /// Per-gene mutation probability.
    pub p_mut: f64,
    /// Mutation σ as a fraction of the box width.
    pub sigma_frac: f64,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            pop_size: 40,
            tournament: 3,
            elite: 2,
            alpha: 0.3,
            p_mut: 0.2,
            sigma_frac: 0.08,
        }
    }
}

impl Calibrator for GeneticAlgorithm {
    fn name(&self) -> &'static str {
        "GA"
    }

    fn calibrate(&self, obj: &dyn Objective, budget: usize, seed: u64) -> CalibrationOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = box_sigma(obj, self.sigma_frac);
        let mut evals = 0usize;
        let eval = |theta: &[f64], evals: &mut usize| {
            *evals += 1;
            obj.eval(theta)
        };

        // Seed the population with the prior mean plus uniform draws.
        let mut pop: Vec<(Vec<f64>, f64)> = Vec::with_capacity(self.pop_size);
        let mean = init_point(obj);
        let v = eval(&mean, &mut evals);
        pop.push((mean, v));
        while pop.len() < self.pop_size && evals < budget {
            let p = uniform_point(obj, &mut rng);
            let v = eval(&p, &mut evals);
            pop.push((p, v));
        }

        while evals < budget {
            pop.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut next: Vec<(Vec<f64>, f64)> = pop.iter().take(self.elite).cloned().collect();
            while next.len() < self.pop_size && evals < budget {
                let pick = |rng: &mut StdRng| -> &(Vec<f64>, f64) {
                    let mut best = &pop[rng.gen_range(0..pop.len())];
                    for _ in 1..self.tournament {
                        let c = &pop[rng.gen_range(0..pop.len())];
                        if c.1 < best.1 {
                            best = c;
                        }
                    }
                    best
                };
                let a = pick(&mut rng).0.clone();
                let b = pick(&mut rng).0.clone();
                // BLX-α crossover.
                let mut child: Vec<f64> = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| {
                        let (lo, hi) = (x.min(*y), x.max(*y));
                        let span = (hi - lo).max(1e-12);
                        rng.gen_range((lo - self.alpha * span)..(hi + self.alpha * span))
                    })
                    .collect();
                // Gaussian mutation.
                for (i, c) in child.iter_mut().enumerate() {
                    if rng.gen_bool(self.p_mut) {
                        *c = gauss(&mut rng, *c, sigma[i]);
                    }
                }
                obj.clamp(&mut child);
                let v = eval(&child, &mut evals);
                next.push((child, v));
            }
            pop = next;
        }
        pop.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (theta, value) = pop.into_iter().next().expect("non-empty population");
        CalibrationOutcome {
            theta,
            value,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::objective::test_objectives::Rosenbrock;

    #[test]
    fn finds_sphere_minimum() {
        check_on_sphere(&GeneticAlgorithm::default(), 2000, 0.01);
    }

    #[test]
    fn deterministic() {
        check_deterministic(&GeneticAlgorithm::default());
    }

    #[test]
    fn makes_progress_on_rosenbrock() {
        let out = GeneticAlgorithm::default().calibrate(&Rosenbrock, 4000, 3);
        assert!(out.value < 1.0, "GA stalled at {}", out.value);
    }
}
