//! Monte Carlo calibration: uniform random search over the box.

use super::{uniform_point, CalibrationOutcome, Calibrator};
use crate::objective::Objective;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Plain uniform random sampling; the simplest budget-matched baseline.
pub struct MonteCarlo;

impl Calibrator for MonteCarlo {
    fn name(&self) -> &'static str {
        "MC"
    }

    fn calibrate(&self, obj: &dyn Objective, budget: usize, seed: u64) -> CalibrationOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = super::init_point(obj);
        let mut best_v = obj.eval(&best);
        let mut evals = 1;
        while evals < budget {
            let cand = uniform_point(obj, &mut rng);
            let v = obj.eval(&cand);
            evals += 1;
            if v < best_v {
                best_v = v;
                best = cand;
            }
        }
        CalibrationOutcome {
            theta: best,
            value: best_v,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn finds_sphere_minimum_roughly() {
        check_on_sphere(&MonteCarlo, 3000, 0.05);
    }

    #[test]
    fn deterministic() {
        check_deterministic(&MonteCarlo);
    }

    #[test]
    fn never_worse_than_prior_start() {
        use crate::objective::test_objectives::Sphere;
        let obj = Sphere { d: 4 };
        let start = obj.eval(&[0.9; 4]);
        let out = MonteCarlo.calibrate(&obj, 50, 1);
        assert!(out.value <= start);
    }
}
