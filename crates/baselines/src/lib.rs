//! Comparator methods for the GMR evaluation (paper §IV-B, Table V).
//!
//! Four families, all implemented from scratch:
//!
//! * **Knowledge-driven**: the M ANUAL expert model (re-exported from
//!   `gmr-bio`; scoring happens in the experiment harness);
//! * **Model calibration** ([`calibrators`]): nine optimisers over the
//!   sixteen Table III constants with the model *structure* frozen — GA,
//!   Monte Carlo, Latin hypercube sampling, maximum-likelihood (Nelder–
//!   Mead), Metropolis MCMC, simulated annealing, DREAM, SCE-UA and DE-MCz;
//! * **Model revision** ([`gggp`]): grammar-guided GP over a context-free
//!   expression grammar — same prior process, same extension vocabulary,
//!   but without TAG's adjunction discipline or local search;
//! * **Data-driven**: [`arimax`] (ARX with exogenous regressors and
//!   AIC order selection, free-run forecasting) and [`lstm`] (a
//!   from-scratch two-layer LSTM with a two-layer dense head, trained with
//!   Adam), each in `-S1` and `-All` variants.
//!
//! The shared [`objective`] module frames calibration as bounded
//! minimisation of training RMSE over the parameter vector.

pub mod arimax;
pub mod calibrators;
pub mod gggp;
pub mod lstm;
pub mod objective;
pub mod report;

pub use calibrators::{CalibrationOutcome, Calibrator};
pub use objective::{CalibrationProblem, Objective};
pub use report::MethodScore;
