//! RNN comparator: a from-scratch LSTM trained with Adam (paper §IV-B2,
//! Appendix B).
//!
//! Matches the paper's architecture: a two-layer LSTM whose hidden size
//! equals the number of input features, followed by a two-layer dense head
//! producing the phytoplankton estimate; inputs standardised; Adam with
//! α = 0.01, β₁ = 0.9, β₂ = 0.999, weight decay 5e-4; MSE loss. Training
//! uses stateful truncated BPTT over fixed windows (the full 10-year
//! sequence is one long stream, as in the original evaluation).
//!
//! Everything — the cell, backpropagation through time, Adam — is
//! implemented here on plain `Vec<f64>` tensors: there is no deep-learning
//! dependency in this workspace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct LstmConfig {
    /// Hidden size (0 = number of input features, as in the paper).
    pub hidden: usize,
    /// Number of stacked LSTM layers.
    pub layers: usize,
    /// Training epochs over the full sequence.
    pub epochs: usize,
    /// Adam step size.
    pub lr: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
    /// Truncated-BPTT window length.
    pub window: usize,
    /// Gradient L2 clip per tensor.
    pub clip: f64,
    /// Seed for weight init.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            hidden: 0,
            layers: 2,
            epochs: 30,
            lr: 0.01,
            weight_decay: 5e-4,
            window: 60,
            clip: 5.0,
            seed: 0,
        }
    }
}

/// A dense parameter tensor with its gradient and Adam state.
#[derive(Debug, Clone)]
struct Tensor {
    w: Vec<f64>,
    g: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    fn new(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let scale = (6.0 / (rows + cols) as f64).sqrt();
        let w = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Tensor {
            w,
            g: vec![0.0; rows * cols],
            m: vec![0.0; rows * cols],
            v: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            w: vec![0.0; rows * cols],
            g: vec![0.0; rows * cols],
            m: vec![0.0; rows * cols],
            v: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// y += W x
    #[allow(clippy::needless_range_loop)] // rows of a flat matrix
    fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        for r in 0..self.rows {
            let row = &self.w[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[r] += acc;
        }
    }

    /// dW += dy ⊗ x ;  dx += Wᵀ dy
    #[allow(clippy::needless_range_loop)] // rows of a flat matrix
    fn backprop(&mut self, x: &[f64], dy: &[f64], dx: Option<&mut [f64]>) {
        for r in 0..self.rows {
            let d = dy[r];
            if d != 0.0 {
                let grow = &mut self.g[r * self.cols..(r + 1) * self.cols];
                for (gi, xi) in grow.iter_mut().zip(x) {
                    *gi += d * xi;
                }
            }
        }
        if let Some(dx) = dx {
            for r in 0..self.rows {
                let d = dy[r];
                if d != 0.0 {
                    let row = &self.w[r * self.cols..(r + 1) * self.cols];
                    for (dxi, wi) in dx.iter_mut().zip(row) {
                        *dxi += d * wi;
                    }
                }
            }
        }
    }

    fn adam_step(&mut self, lr: f64, wd: f64, t: usize, clip: f64) {
        // Per-tensor gradient clipping.
        let norm: f64 = self.g.iter().map(|g| g * g).sum::<f64>().sqrt();
        let scale = if norm > clip && norm > 0.0 {
            clip / norm
        } else {
            1.0
        };
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        for i in 0..self.w.len() {
            let g = self.g[i] * scale + wd * self.w[i];
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            self.w[i] -= lr * mhat / (vhat.sqrt() + eps);
            self.g[i] = 0.0;
        }
    }
}

#[inline(always)]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// One LSTM layer's parameters.
#[derive(Debug, Clone)]
struct LstmLayer {
    wx: Tensor, // 4H × I
    wh: Tensor, // 4H × H
    b: Tensor,  // 4H × 1
    hidden: usize,
    input: usize,
}

/// Cached activations for one time step (for BPTT).
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    gates: Vec<f64>, // [i f o g] post-activation
    tanh_c: Vec<f64>,
}

impl LstmLayer {
    fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut b = Tensor::zeros(4 * hidden, 1);
        // Forget-gate bias starts at +1 (standard trick for long memories).
        for i in hidden..2 * hidden {
            b.w[i] = 1.0;
        }
        LstmLayer {
            wx: Tensor::new(4 * hidden, input, rng),
            wh: Tensor::new(4 * hidden, hidden, rng),
            b,
            hidden,
            input,
        }
    }

    fn forward(&self, x: &[f64], h: &mut [f64], c: &mut [f64]) -> StepCache {
        let hdim = self.hidden;
        let mut z = self.b.w.clone();
        self.wx.matvec_into(x, &mut z);
        self.wh.matvec_into(h, &mut z);
        let mut gates = vec![0.0; 4 * hdim];
        for j in 0..hdim {
            gates[j] = sigmoid(z[j]); // input gate
            gates[hdim + j] = sigmoid(z[hdim + j]); // forget gate
            gates[2 * hdim + j] = sigmoid(z[2 * hdim + j]); // output gate
            gates[3 * hdim + j] = z[3 * hdim + j].tanh(); // candidate
        }
        let c_prev = c.to_vec();
        let h_prev = h.to_vec();
        let mut tanh_c = vec![0.0; hdim];
        for j in 0..hdim {
            c[j] = gates[hdim + j] * c_prev[j] + gates[j] * gates[3 * hdim + j];
            tanh_c[j] = c[j].tanh();
            h[j] = gates[2 * hdim + j] * tanh_c[j];
        }
        StepCache {
            x: x.to_vec(),
            h_prev,
            c_prev,
            gates,
            tanh_c,
        }
    }

    /// Backward one step. `dh`/`dc` carry gradients from the future;
    /// returns the gradient w.r.t. the step input.
    fn backward(&mut self, cache: &StepCache, dh: &mut Vec<f64>, dc: &mut [f64]) -> Vec<f64> {
        let hdim = self.hidden;
        let mut dz = vec![0.0; 4 * hdim];
        for j in 0..hdim {
            let i = cache.gates[j];
            let f = cache.gates[hdim + j];
            let o = cache.gates[2 * hdim + j];
            let g = cache.gates[3 * hdim + j];
            let tc = cache.tanh_c[j];
            // h = o * tanh(c)
            let do_ = dh[j] * tc;
            let dtc = dh[j] * o;
            let dcj = dc[j] + dtc * (1.0 - tc * tc);
            // c = f*c_prev + i*g
            let di = dcj * g;
            let df = dcj * cache.c_prev[j];
            let dg = dcj * i;
            dc[j] = dcj * f; // flows to c_prev
            dz[j] = di * i * (1.0 - i);
            dz[hdim + j] = df * f * (1.0 - f);
            dz[2 * hdim + j] = do_ * o * (1.0 - o);
            dz[3 * hdim + j] = dg * (1.0 - g * g);
        }
        let mut dx = vec![0.0; self.input];
        let mut dh_prev = vec![0.0; hdim];
        self.wx.backprop(&cache.x, &dz, Some(&mut dx));
        self.wh.backprop(&cache.h_prev, &dz, Some(&mut dh_prev));
        self.b.backprop(&[1.0], &dz, None);
        *dh = dh_prev;
        dx
    }
}

/// A trained LSTM forecaster.
pub struct LstmModel {
    layers: Vec<LstmLayer>,
    head1: Tensor,
    head1_b: Tensor,
    head2: Tensor,
    head2_b: Tensor,
    feat_norm: Vec<(f64, f64)>,
    target_norm: (f64, f64),
    hidden: usize,
}

fn norms(rows: &[Vec<f64>]) -> Vec<(f64, f64)> {
    let k = rows.first().map(|r| r.len()).unwrap_or(0);
    (0..k)
        .map(|c| {
            let m = rows.iter().map(|r| r[c]).sum::<f64>() / rows.len() as f64;
            let v = rows.iter().map(|r| (r[c] - m) * (r[c] - m)).sum::<f64>() / rows.len() as f64;
            (m, v.sqrt().max(1e-9))
        })
        .collect()
}

impl LstmModel {
    /// Train on a feature stream and aligned targets.
    pub fn train(features: &[Vec<f64>], targets: &[f64], cfg: &LstmConfig) -> LstmModel {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must align"
        );
        assert!(!features.is_empty(), "empty training stream");
        let nfeat = features[0].len();
        let hidden = if cfg.hidden == 0 {
            nfeat.max(4)
        } else {
            cfg.hidden
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let feat_norm = norms(features);
        let tm = targets.iter().sum::<f64>() / targets.len() as f64;
        let tv = targets.iter().map(|t| (t - tm) * (t - tm)).sum::<f64>() / targets.len() as f64;
        let target_norm = (tm, tv.sqrt().max(1e-9));

        let mut layers = Vec::with_capacity(cfg.layers.max(1));
        for l in 0..cfg.layers.max(1) {
            let input = if l == 0 { nfeat } else { hidden };
            layers.push(LstmLayer::new(input, hidden, &mut rng));
        }
        let mut model = LstmModel {
            layers,
            head1: Tensor::new(hidden, hidden, &mut rng),
            head1_b: Tensor::zeros(hidden, 1),
            head2: Tensor::new(1, hidden, &mut rng),
            head2_b: Tensor::zeros(1, 1),
            feat_norm,
            target_norm,
            hidden,
        };

        let xs: Vec<Vec<f64>> = features
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&model.feat_norm)
                    .map(|(x, (m, s))| (x - m) / s)
                    .collect()
            })
            .collect();
        let ys: Vec<f64> = targets.iter().map(|t| (t - tm) / target_norm.1).collect();

        let window = cfg.window.max(4).min(xs.len());
        let mut t_adam = 0usize;
        for _epoch in 0..cfg.epochs {
            let nl = model.layers.len();
            let mut h: Vec<Vec<f64>> = vec![vec![0.0; hidden]; nl];
            let mut c: Vec<Vec<f64>> = vec![vec![0.0; hidden]; nl];
            let mut start = 0usize;
            while start < xs.len() {
                let end = (start + window).min(xs.len());
                // Forward through the window, caching activations.
                let mut caches: Vec<Vec<StepCache>> =
                    (0..nl).map(|_| Vec::with_capacity(end - start)).collect();
                let mut mids: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(end - start);
                let mut dloss: Vec<f64> = Vec::with_capacity(end - start);
                for t in start..end {
                    let mut inp = xs[t].clone();
                    for (l, layer) in model.layers.iter().enumerate() {
                        let cache = layer.forward(&inp, &mut h[l], &mut c[l]);
                        inp = h[l].clone();
                        caches[l].push(cache);
                    }
                    // Dense head: tanh(W1 h + b1) → W2 · + b2.
                    let mut mid = model.head1_b.w.clone();
                    model.head1.matvec_into(&inp, &mut mid);
                    for m in &mut mid {
                        *m = m.tanh();
                    }
                    let mut out = model.head2_b.w.clone();
                    model.head2.matvec_into(&mid, &mut out);
                    let err = out[0] - ys[t];
                    dloss.push(2.0 * err / (end - start) as f64);
                    mids.push((inp, mid));
                }
                // Backward through time.
                let mut dh: Vec<Vec<f64>> = vec![vec![0.0; hidden]; nl];
                let mut dcv: Vec<Vec<f64>> = vec![vec![0.0; hidden]; nl];
                for (ti, t) in (start..end).enumerate().rev() {
                    let _ = t;
                    let (top_h, mid) = &mids[ti];
                    let dout = dloss[ti];
                    // Head gradients.
                    let mut dmid = vec![0.0; hidden];
                    model.head2.backprop(mid, &[dout], Some(&mut dmid));
                    model.head2_b.backprop(&[1.0], &[dout], None);
                    for (d, m) in dmid.iter_mut().zip(mid) {
                        *d *= 1.0 - m * m;
                    }
                    let mut dtop = vec![0.0; hidden];
                    model.head1.backprop(top_h, &dmid, Some(&mut dtop));
                    model.head1_b.backprop(&[1.0], &dmid, None);
                    // Inject into the top layer's dh; walk layers downward.
                    for j in 0..hidden {
                        dh[nl - 1][j] += dtop[j];
                    }
                    let mut dx_upper: Option<Vec<f64>> = None;
                    for l in (0..nl).rev() {
                        if let Some(dx) = dx_upper.take() {
                            for j in 0..hidden {
                                dh[l][j] += dx[j];
                            }
                        }
                        let cache = &caches[l][ti];
                        let dx = model.layers[l].backward(cache, &mut dh[l], &mut dcv[l]);
                        dx_upper = Some(dx);
                    }
                }
                // Adam step over every tensor.
                t_adam += 1;
                for layer in &mut model.layers {
                    layer
                        .wx
                        .adam_step(cfg.lr, cfg.weight_decay, t_adam, cfg.clip);
                    layer
                        .wh
                        .adam_step(cfg.lr, cfg.weight_decay, t_adam, cfg.clip);
                    layer.b.adam_step(cfg.lr, 0.0, t_adam, cfg.clip);
                }
                model
                    .head1
                    .adam_step(cfg.lr, cfg.weight_decay, t_adam, cfg.clip);
                model.head1_b.adam_step(cfg.lr, 0.0, t_adam, cfg.clip);
                model
                    .head2
                    .adam_step(cfg.lr, cfg.weight_decay, t_adam, cfg.clip);
                model.head2_b.adam_step(cfg.lr, 0.0, t_adam, cfg.clip);
                start = end;
                // State carries across windows (stateful TBPTT), gradients
                // do not.
            }
        }
        model
    }

    /// Roll the trained network over a feature stream, returning the
    /// predicted biomass series (de-standardised, clamped non-negative).
    pub fn predict(&self, features: &[Vec<f64>]) -> Vec<f64> {
        let nl = self.layers.len();
        let mut h: Vec<Vec<f64>> = vec![vec![0.0; self.hidden]; nl];
        let mut c: Vec<Vec<f64>> = vec![vec![0.0; self.hidden]; nl];
        let mut out = Vec::with_capacity(features.len());
        for row in features {
            let mut inp: Vec<f64> = row
                .iter()
                .zip(&self.feat_norm)
                .map(|(x, (m, s))| (x - m) / s)
                .collect();
            for (l, layer) in self.layers.iter().enumerate() {
                let _ = layer.forward(&inp, &mut h[l], &mut c[l]);
                inp = h[l].clone();
            }
            let mut mid = self.head1_b.w.clone();
            self.head1.matvec_into(&inp, &mut mid);
            for m in &mut mid {
                *m = m.tanh();
            }
            let mut y = self.head2_b.w.clone();
            self.head2.matvec_into(&mid, &mut y);
            let (tm, ts) = self.target_norm;
            out.push((y[0] * ts + tm).max(0.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A memory task: y_t = 0.7 y_{t-1} + x_t (the target depends on
    /// history, so a memoryless map cannot fit it).
    fn memory_task(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut y = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen_range(-1.0..1.0);
            y = 0.7 * y + x;
            xs.push(vec![x]);
            ys.push(y);
        }
        (xs, ys)
    }

    fn small_cfg(seed: u64) -> LstmConfig {
        LstmConfig {
            hidden: 8,
            layers: 1,
            epochs: 40,
            window: 32,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn learns_memory_task() {
        let (xs, ys) = memory_task(400, 1);
        let model = LstmModel::train(&xs, &ys, &small_cfg(1));
        // Compare against a clamped target (predict() clamps at 0, matching
        // the biomass use case) on fresh data from the same process.
        let (xt, yt) = memory_task(200, 2);
        let pred = model.predict(&xt);
        let yt_clamped: Vec<f64> = yt.iter().map(|v| v.max(0.0)).collect();
        let rmse = gmr_hydro::rmse(&pred, &yt_clamped);
        let sd = {
            let m = yt_clamped.iter().sum::<f64>() / yt_clamped.len() as f64;
            (yt_clamped.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / yt_clamped.len() as f64)
                .sqrt()
        };
        assert!(
            rmse < 0.8 * sd,
            "LSTM did not beat the mean predictor: {rmse} vs sd {sd}"
        );
    }

    #[test]
    fn deterministic_training() {
        let (xs, ys) = memory_task(150, 3);
        let a = LstmModel::train(&xs, &ys, &small_cfg(7)).predict(&xs);
        let b = LstmModel::train(&xs, &ys, &small_cfg(7)).predict(&xs);
        assert_eq!(a, b);
    }

    #[test]
    fn predictions_nonnegative_and_aligned() {
        let (xs, ys) = memory_task(100, 4);
        let model = LstmModel::train(&xs, &ys, &small_cfg(5));
        let pred = model.predict(&xs);
        assert_eq!(pred.len(), xs.len());
        assert!(pred.iter().all(|p| *p >= 0.0));
    }

    #[test]
    fn training_reduces_loss() {
        let (xs, ys) = memory_task(300, 5);
        let ys_clamped: Vec<f64> = ys.iter().map(|v| v.max(0.0)).collect();
        let untrained = LstmModel::train(
            &xs,
            &ys,
            &LstmConfig {
                epochs: 0,
                ..small_cfg(6)
            },
        )
        .predict(&xs);
        let trained = LstmModel::train(&xs, &ys, &small_cfg(6)).predict(&xs);
        assert!(
            gmr_hydro::rmse(&trained, &ys_clamped) < gmr_hydro::rmse(&untrained, &ys_clamped),
            "training must improve in-sample fit"
        );
    }

    #[test]
    fn bptt_gradients_match_finite_differences() {
        // The strongest correctness evidence a from-scratch backprop can
        // have: analytic ∂L/∂W equals central finite differences through
        // the full unrolled forward pass.
        let mut rng = StdRng::seed_from_u64(1);
        let layer = LstmLayer::new(2, 3, &mut rng);
        let xs: Vec<Vec<f64>> = (0..6)
            .map(|t| vec![0.1 * t as f64, 0.3 - 0.05 * t as f64])
            .collect();
        // L = Σ_t Σ_j (j + 1) · h_t[j]
        let loss = |layer: &LstmLayer| -> f64 {
            let mut h = vec![0.0; 3];
            let mut c = vec![0.0; 3];
            let mut l = 0.0;
            for x in &xs {
                let _ = layer.forward(x, &mut h, &mut c);
                for (j, v) in h.iter().enumerate() {
                    l += (j + 1) as f64 * v;
                }
            }
            l
        };
        // Analytic gradients via BPTT.
        let mut work = layer.clone();
        let mut h = vec![0.0; 3];
        let mut c = vec![0.0; 3];
        let mut caches = Vec::new();
        for x in &xs {
            caches.push(work.forward(x, &mut h, &mut c));
        }
        let mut dh = vec![0.0; 3];
        let mut dc = vec![0.0; 3];
        for cache in caches.iter().rev() {
            for (j, d) in dh.iter_mut().enumerate() {
                *d += (j + 1) as f64;
            }
            let _ = work.backward(cache, &mut dh, &mut dc);
        }
        // Compare a spread of weights across all three tensors.
        let eps = 1e-6;
        type Get = fn(&LstmLayer) -> &Tensor;
        type GetMut = fn(&mut LstmLayer) -> &mut Tensor;
        let tensors: [(&str, Get, GetMut); 3] = [
            ("wx", |l| &l.wx, |l| &mut l.wx),
            ("wh", |l| &l.wh, |l| &mut l.wh),
            ("b", |l| &l.b, |l| &mut l.b),
        ];
        for (name, get, get_mut) in tensors {
            let len = get(&layer).w.len();
            for i in (0..len).step_by((len / 5).max(1)) {
                let mut plus = layer.clone();
                get_mut(&mut plus).w[i] += eps;
                let mut minus = layer.clone();
                get_mut(&mut minus).w[i] -= eps;
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                let analytic = get(&work).g[i];
                assert!(
                    (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                    "{name}[{i}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn hidden_defaults_to_feature_count() {
        let xs = vec![vec![0.0; 5]; 50];
        let ys = vec![0.0; 50];
        let m = LstmModel::train(
            &xs,
            &ys,
            &LstmConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        assert_eq!(m.hidden, 5);
        assert_eq!(m.layers.len(), 2);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_inputs_panic() {
        let _ = LstmModel::train(&[vec![0.0]], &[0.0, 1.0], &LstmConfig::default());
    }
}
