//! Bounded black-box objectives, and model calibration as one.
//!
//! Model calibration (§I, §IV-B3) freezes the structure of the expert
//! equations and optimises only the sixteen Table III constants against
//! training RMSE. Every calibrator in [`crate::calibrators`] works against
//! the [`Objective`] trait, which also lets the unit tests exercise each
//! optimiser on cheap analytic functions.

use gmr_bio::manual::manual_system;
use gmr_bio::params::{NUM_CALIBRATED, PARAMS};
use gmr_bio::RiverProblem;
use gmr_expr::Expr;

/// A bounded minimisation problem.
pub trait Objective: Sync {
    /// Dimensionality.
    fn dim(&self) -> usize;
    /// Box bounds of coordinate `i`.
    fn bounds(&self, i: usize) -> (f64, f64);
    /// A reasonable starting point for coordinate `i` (the prior mean for
    /// calibration).
    fn init(&self, i: usize) -> f64;
    /// Evaluate the objective (lower is better).
    fn eval(&self, theta: &[f64]) -> f64;

    /// Clamp a point into the box.
    fn clamp(&self, theta: &mut [f64]) {
        for (i, t) in theta.iter_mut().enumerate() {
            let (lo, hi) = self.bounds(i);
            *t = t.clamp(lo, hi);
        }
    }
}

/// Calibrating the expert model's constants against training RMSE.
pub struct CalibrationProblem {
    problem: RiverProblem,
    template: [Expr; 2],
}

impl CalibrationProblem {
    /// Wrap a training problem; the template is the expert system.
    pub fn new(problem: RiverProblem) -> Self {
        CalibrationProblem {
            problem,
            template: manual_system(),
        }
    }

    /// Materialise the expert equations with parameter vector `theta`
    /// (indexed by parameter kind).
    pub fn instantiate(&self, theta: &[f64]) -> [Expr; 2] {
        let mut eqs = self.template.clone();
        for eq in &mut eqs {
            for slot in eq.param_slots_mut() {
                if let Some(&v) = theta.get(slot.kind as usize) {
                    slot.value = v;
                }
            }
        }
        eqs
    }

    /// The underlying simulation problem.
    pub fn problem(&self) -> &RiverProblem {
        &self.problem
    }
}

impl Objective for CalibrationProblem {
    fn dim(&self) -> usize {
        NUM_CALIBRATED
    }

    fn bounds(&self, i: usize) -> (f64, f64) {
        let p = &PARAMS[i];
        (p.min, p.max)
    }

    fn init(&self, i: usize) -> f64 {
        PARAMS[i].mean
    }

    fn eval(&self, theta: &[f64]) -> f64 {
        self.problem.rmse(&self.instantiate(theta))
    }
}

/// Analytic objectives for optimiser unit tests.
#[doc(hidden)]
pub mod test_objectives {
    use super::Objective;

    /// Shifted sphere: minimum `0` at `(0.3, …, 0.3)` inside `[0, 1]^d`.
    pub struct Sphere {
        /// Dimensionality.
        pub d: usize,
    }

    impl Objective for Sphere {
        fn dim(&self) -> usize {
            self.d
        }
        fn bounds(&self, _i: usize) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn init(&self, _i: usize) -> f64 {
            0.9
        }
        fn eval(&self, theta: &[f64]) -> f64 {
            theta.iter().map(|t| (t - 0.3) * (t - 0.3)).sum()
        }
    }

    /// Rosenbrock in `[-2, 2]^2` — a curved valley that separates the
    /// population methods from pure random search.
    pub struct Rosenbrock;

    impl Objective for Rosenbrock {
        fn dim(&self) -> usize {
            2
        }
        fn bounds(&self, _i: usize) -> (f64, f64) {
            (-2.0, 2.0)
        }
        fn init(&self, _i: usize) -> f64 {
            -1.0
        }
        fn eval(&self, t: &[f64]) -> f64 {
            let (x, y) = (t[0], t[1]);
            (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_hydro::{generate, SyntheticConfig};

    fn problem() -> CalibrationProblem {
        let ds = generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1996,
            train_end_year: 1996,
            ..Default::default()
        });
        CalibrationProblem::new(RiverProblem::from_dataset(&ds, ds.train))
    }

    #[test]
    fn dimensions_and_bounds_follow_table_iii() {
        let cp = problem();
        assert_eq!(cp.dim(), 16);
        assert_eq!(cp.bounds(0), (0.1, 4.0)); // CUA
        assert_eq!(cp.init(0), 1.89);
    }

    #[test]
    fn instantiate_replaces_every_slot() {
        let cp = problem();
        let theta: Vec<f64> = (0..16).map(|i| cp.init(i) * 0.9).collect();
        let mut eqs = cp.instantiate(&theta);
        for eq in &mut eqs {
            for slot in eq.param_slots_mut() {
                assert!((slot.value - theta[slot.kind as usize]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn objective_at_prior_matches_manual_rmse() {
        let cp = problem();
        let theta: Vec<f64> = (0..16).map(|i| cp.init(i)).collect();
        let direct = cp.problem().rmse(&manual_system());
        let via = cp.eval(&theta);
        assert_eq!(via, direct);
    }

    #[test]
    fn clamp_respects_box() {
        let cp = problem();
        let mut theta = vec![1e9; 16];
        cp.clamp(&mut theta);
        for (i, t) in theta.iter().enumerate() {
            assert_eq!(*t, cp.bounds(i).1);
        }
    }
}
