//! ARIMAX — autoregressive forecasting with exogenous regressors.
//!
//! The paper uses pmdarima's AutoARIMA. We implement the family from
//! scratch: an ARX(p, d) model
//!
//! ```text
//! Δᵈy_t = c + Σ_{j=1..p} a_j Δᵈy_{t−j} + Σ_k b_k x_{k,t}
//! ```
//!
//! fitted by ridge least squares, with `(p, d)` selected by AIC exactly as
//! AutoARIMA does (MA terms contribute little once exogenous regressors are
//! present; see DESIGN.md for the substitution note). Test-period forecasts
//! are **free-run**: the model recurses on its own predictions, receiving
//! only the observed exogenous series — the same information regime the
//! process models operate under.

use std::fmt;

/// Fit configuration.
#[derive(Debug, Clone)]
pub struct ArimaxConfig {
    /// Largest AR order tried.
    pub max_p: usize,
    /// Differencing orders tried.
    pub d_candidates: Vec<usize>,
    /// Ridge penalty (stabilises the ALL variant's 90-column design).
    pub ridge: f64,
}

impl Default for ArimaxConfig {
    fn default() -> Self {
        ArimaxConfig {
            max_p: 7,
            d_candidates: vec![0, 1],
            ridge: 1e-3,
        }
    }
}

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArimaxError {
    /// Not enough observations for the requested orders.
    TooShort,
    /// Exogenous row count does not match the target length.
    ShapeMismatch,
}

impl fmt::Display for ArimaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArimaxError::TooShort => write!(f, "series too short for the requested orders"),
            ArimaxError::ShapeMismatch => write!(f, "exogenous rows do not match target length"),
        }
    }
}

impl std::error::Error for ArimaxError {}

/// A fitted ARX(p, d) model.
#[derive(Debug, Clone)]
pub struct ArimaxModel {
    /// AR order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// `[a_1..a_p, b_1..b_k, c]`.
    pub coef: Vec<f64>,
    /// Per-exogenous-column standardisation (mean, sd).
    pub exog_norm: Vec<(f64, f64)>,
    /// AIC at the selected orders.
    pub aic: f64,
}

fn difference(y: &[f64], d: usize) -> Vec<f64> {
    let mut out = y.to_vec();
    for _ in 0..d {
        out = out.windows(2).map(|w| w[1] - w[0]).collect();
    }
    out
}

/// Solve `A x = b` for symmetric positive-definite `A` (n×n, row-major) by
/// Gaussian elimination with partial pivoting.
pub(crate) fn solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Vec<f64> {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for k in 0..n {
                a.swap(col * n + k, piv * n + k);
            }
            b.swap(col, piv);
        }
        let diag = a[col * n + col];
        if diag.abs() < 1e-30 {
            continue; // singular direction: leave coefficient at 0
        }
        for r in col + 1..n {
            let f = a[r * n + col] / diag;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[r * n + k] -= f * a[col * n + k];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col * n + k] * x[k];
        }
        let diag = a[col * n + col];
        x[col] = if diag.abs() < 1e-30 { 0.0 } else { acc / diag };
    }
    x
}

fn ridge_fit(rows: &[Vec<f64>], targets: &[f64], ridge: f64) -> Vec<f64> {
    let n = rows[0].len();
    let mut xtx = vec![0.0; n * n];
    let mut xty = vec![0.0; n];
    for (row, &t) in rows.iter().zip(targets) {
        for i in 0..n {
            xty[i] += row[i] * t;
            for j in i..n {
                xtx[i * n + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            xtx[i * n + j] = xtx[j * n + i];
        }
        xtx[i * n + i] += ridge;
    }
    solve(xtx, xty, n)
}

impl ArimaxModel {
    /// Fit with AIC order selection over `cfg`'s grid.
    ///
    /// `exog[t]` is the exogenous feature row aligned with `y[t]`.
    pub fn fit(y: &[f64], exog: &[Vec<f64>], cfg: &ArimaxConfig) -> Result<Self, ArimaxError> {
        if exog.len() != y.len() {
            return Err(ArimaxError::ShapeMismatch);
        }
        if y.len() < cfg.max_p + 10 {
            return Err(ArimaxError::TooShort);
        }
        let k_exog = exog.first().map(|r| r.len()).unwrap_or(0);
        // Standardise exogenous columns on the training data.
        let mut norm = Vec::with_capacity(k_exog);
        for c in 0..k_exog {
            let m = exog.iter().map(|r| r[c]).sum::<f64>() / exog.len() as f64;
            let var = exog.iter().map(|r| (r[c] - m) * (r[c] - m)).sum::<f64>() / exog.len() as f64;
            norm.push((m, var.sqrt().max(1e-9)));
        }

        let mut best: Option<ArimaxModel> = None;
        for &d in &cfg.d_candidates {
            let yd = difference(y, d);
            for p in 1..=cfg.max_p {
                if yd.len() <= p + k_exog + 2 {
                    continue;
                }
                let mut rows = Vec::with_capacity(yd.len() - p);
                let mut targets = Vec::with_capacity(yd.len() - p);
                for t in p..yd.len() {
                    let mut row = Vec::with_capacity(p + k_exog + 1);
                    for j in 1..=p {
                        row.push(yd[t - j]);
                    }
                    // Exogenous row aligned with the *undifferenced* index.
                    let xi = t + d;
                    for (c, (m, s)) in norm.iter().enumerate() {
                        row.push((exog[xi][c] - m) / s);
                    }
                    row.push(1.0);
                    rows.push(row);
                    targets.push(yd[t]);
                }
                let coef = ridge_fit(&rows, &targets, cfg.ridge);
                let sse: f64 = rows
                    .iter()
                    .zip(&targets)
                    .map(|(r, &t)| {
                        let pred: f64 = r.iter().zip(&coef).map(|(a, b)| a * b).sum();
                        (pred - t) * (pred - t)
                    })
                    .sum();
                let n = targets.len() as f64;
                let kparams = coef.len() as f64 + 1.0;
                let aic = n * (sse / n).max(1e-300).ln() + 2.0 * kparams;
                let cand = ArimaxModel {
                    p,
                    d,
                    coef,
                    exog_norm: norm.clone(),
                    aic,
                };
                if best.as_ref().is_none_or(|b| cand.aic < b.aic) {
                    best = Some(cand);
                }
            }
        }
        best.ok_or(ArimaxError::TooShort)
    }

    fn step(&self, lags: &[f64], exog_row: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (c, l) in self.coef[..self.p].iter().zip(lags) {
            acc += c * l;
        }
        for (c, (m, s)) in self.exog_norm.iter().enumerate() {
            acc += self.coef[self.p + c] * (exog_row[c] - m) / s;
        }
        acc + self.coef[self.p + self.exog_norm.len()]
    }

    /// Free-run forecast: seed the recursion with the tail of the training
    /// series, then roll forward on the model's own predictions while
    /// reading the observed exogenous rows. Predictions are unclamped;
    /// domain-specific floors (e.g. non-negative biomass) belong to the
    /// caller.
    pub fn forecast(&self, y_train: &[f64], exog_future: &[Vec<f64>]) -> Vec<f64> {
        // Maintain the last p+d raw values to difference on the fly.
        let mut raw: Vec<f64> = y_train.to_vec();
        let mut out = Vec::with_capacity(exog_future.len());
        for x in exog_future {
            // Differenced lags from the most recent raw history.
            let hist = difference(
                &raw[raw.len().saturating_sub(self.p + self.d + 1)..],
                self.d,
            );
            let mut lags: Vec<f64> = hist.iter().rev().take(self.p).copied().collect();
            while lags.len() < self.p {
                lags.push(0.0);
            }
            let dpred = self.step(&lags, x);
            // Integrate back to the raw scale.
            let pred = match self.d {
                0 => dpred,
                1 => raw.last().copied().unwrap_or(0.0) + dpred,
                _ => {
                    // General integration for d >= 2.
                    let tail = &raw[raw.len().saturating_sub(self.d)..];
                    let mut acc = dpred;
                    let mut diffs = tail.to_vec();
                    for _ in 0..self.d {
                        let last = *diffs.last().expect("non-empty");
                        acc += last;
                        diffs = diffs.windows(2).map(|w| w[1] - w[0]).collect();
                        if diffs.is_empty() {
                            break;
                        }
                    }
                    acc
                }
            };
            let pred = pred.clamp(-1e9, 1e9);
            out.push(pred);
            raw.push(pred);
        }
        out
    }

    /// In-sample one-step-ahead fit over the training period (uses observed
    /// lags — the standard "fitted values" a statistics package reports).
    pub fn fitted(&self, y: &[f64], exog: &[Vec<f64>]) -> Vec<f64> {
        let yd = difference(y, self.d);
        let mut out = vec![y[0]; self.p + self.d];
        for t in self.p..yd.len() {
            let lags: Vec<f64> = (1..=self.p).map(|j| yd[t - j]).collect();
            let dpred = self.step(&lags, &exog[t + self.d]);
            let pred = match self.d {
                0 => dpred,
                _ => y[t + self.d - 1] + dpred,
            };
            out.push(pred);
        }
        out.truncate(y.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ar1_series(n: usize, a: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = vec![10.0];
        for _ in 1..n {
            let last = *y.last().expect("non-empty");
            y.push(5.0 + a * last + rng.gen_range(-0.1..0.1));
        }
        y
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let y = ar1_series(600, 0.8, 1);
        let exog: Vec<Vec<f64>> = vec![vec![]; y.len()];
        let m = ArimaxModel::fit(&y, &exog, &ArimaxConfig::default()).unwrap();
        // With AIC selection the AR(1) weight dominates.
        assert!((m.coef[0] - 0.8).abs() < 0.15, "a1 = {}", m.coef[0]);
    }

    #[test]
    fn exogenous_signal_is_used() {
        // y_t = 3 x_t + noise: the model should lean on the regressor.
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<f64> = (0..500).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 3.0 * v + rng.gen_range(-0.05..0.05))
            .collect();
        let exog: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let m = ArimaxModel::fit(&y, &exog, &ArimaxConfig::default()).unwrap();
        let fitted = m.fitted(&y, &exog);
        let rmse = gmr_hydro::rmse(&fitted[10..], &y[10..]);
        assert!(rmse < 0.5, "rmse {rmse}");
    }

    #[test]
    fn forecast_tracks_mean_reverting_process() {
        let y = ar1_series(800, 0.7, 3);
        let exog: Vec<Vec<f64>> = vec![vec![]; y.len()];
        let (train, test) = y.split_at(600);
        let m = ArimaxModel::fit(train, &exog[..600], &ArimaxConfig::default()).unwrap();
        let f = m.forecast(train, &exog[600..]);
        assert_eq!(f.len(), 200);
        // Free-run converges to the unconditional mean (~16.7 for a=0.7,c=5).
        let tail_mean = f[100..].iter().sum::<f64>() / 100.0;
        let actual_mean = test[100..].iter().sum::<f64>() / 100.0;
        assert!(
            (tail_mean - actual_mean).abs() < 2.0,
            "{tail_mean} vs {actual_mean}"
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let y = vec![1.0; 100];
        let exog = vec![vec![0.0]; 99];
        assert_eq!(
            ArimaxModel::fit(&y, &exog, &ArimaxConfig::default()).unwrap_err(),
            ArimaxError::ShapeMismatch
        );
    }

    #[test]
    fn too_short_rejected() {
        let y = vec![1.0; 5];
        let exog = vec![vec![]; 5];
        assert_eq!(
            ArimaxModel::fit(&y, &exog, &ArimaxConfig::default()).unwrap_err(),
            ArimaxError::TooShort
        );
    }

    #[test]
    fn solver_inverts_known_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1; 3]
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve(a, b, 2);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn differencing_helper() {
        assert_eq!(difference(&[1.0, 3.0, 6.0], 1), vec![2.0, 3.0]);
        assert_eq!(difference(&[1.0, 3.0, 6.0], 2), vec![1.0]);
        assert_eq!(difference(&[1.0, 2.0], 0), vec![1.0, 2.0]);
    }
}
