//! End-to-end tests for the `gmr-lint` binary: exit-code discipline
//! (0 = warnings at most, 1 = at least one Error, 2 = unusable invocation —
//! identical across `--builtin`, `--expr` and `--artifact` file input),
//! strict JSON output, and the `--bytecode` / `--safety-out` path.

use std::path::PathBuf;
use std::process::{Command, Output};

fn gmr_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gmr-lint"))
        .args(args)
        .output()
        .expect("gmr-lint runs")
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gmr-lint-cli-{}-{name}", std::process::id()));
    p
}

/// A minimal river-schema `gmr-model/v1` document around the given
/// equation texts.
fn artifact_json(equations: &[&str]) -> String {
    let names = gmr_bio::name_table();
    let list = |items: &[String]| -> String {
        items
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let eqs = equations
        .iter()
        .map(|text| format!("{{\"label\": \"eq\", \"text\": \"{text}\"}}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"schema\": \"gmr-model/v1\", \"name\": \"cli-test\", \
         \"equations\": [{eqs}], \"vars\": [{}], \"states\": [{}], \
         \"params\": [{}], \"provenance\": {{\"source\": \"test\"}}}}",
        list(&names.vars),
        list(&names.states),
        list(&names.params)
    )
}

#[test]
fn builtin_is_clean_and_exits_zero() {
    let out = gmr_lint(&["--builtin"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 error(s)"), "{text}");
}

#[test]
fn warnings_only_exit_zero_errors_exit_one_across_input_modes() {
    // `BPhy + Vtmp` is a unit clash: Error under strict, Warn under the
    // revision policy. The exit code must track severity, not finding
    // count, for both --expr and --artifact input.
    let strict = gmr_lint(&["--expr", "BPhy + Vtmp"]);
    assert_eq!(strict.status.code(), Some(1), "{strict:?}");

    let revision = gmr_lint(&["--expr", "BPhy + Vtmp", "--revision"]);
    assert_eq!(revision.status.code(), Some(0), "{revision:?}");
    let text = String::from_utf8_lossy(&revision.stdout);
    assert!(
        text.contains("warn[") && text.contains("0 error(s)"),
        "warnings expected on stdout:\n{text}"
    );

    let path = tmp_path("exitcodes.json");
    std::fs::write(&path, artifact_json(&["BPhy + Vtmp"])).unwrap();
    let strict_art = gmr_lint(&["--artifact", path.to_str().unwrap()]);
    assert_eq!(strict_art.status.code(), Some(1), "{strict_art:?}");
    let revision_art = gmr_lint(&["--artifact", path.to_str().unwrap(), "--revision"]);
    assert_eq!(revision_art.status.code(), Some(0), "{revision_art:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unusable_input_exits_two() {
    assert_eq!(gmr_lint(&["--nonsense"]).status.code(), Some(2));
    assert_eq!(gmr_lint(&["--expr"]).status.code(), Some(2));
    assert_eq!(gmr_lint(&["--tier", "warp"]).status.code(), Some(2));
    assert_eq!(
        gmr_lint(&["--artifact", "/nonexistent/x.json"])
            .status
            .code(),
        Some(2)
    );
    // Valid JSON, wrong schema: still an input error, not a finding.
    let path = tmp_path("badschema.json");
    std::fs::write(&path, "{\"schema\": \"gmr-model/v0\"}").unwrap();
    assert_eq!(
        gmr_lint(&["--artifact", path.to_str().unwrap()])
            .status
            .code(),
        Some(2)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_output_reparses_strictly() {
    let out = gmr_lint(&["--builtin", "--json"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let v = gmr_json::parse(text.trim()).expect("--json output parses strictly");
    assert_eq!(v.get("errors").and_then(|n| n.as_u64()), Some(0));
    assert!(v.get("diagnostics").and_then(|d| d.as_arr()).is_some());
}

#[test]
fn bytecode_mode_analyzes_builtin_and_writes_safety_report() {
    let safety = tmp_path("safety.json");
    let out = gmr_lint(&[
        "--builtin",
        "--bytecode",
        "--quiet",
        "--safety-out",
        safety.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&safety).expect("safety report written");
    let v = gmr_json::parse(&text).expect("safety JSON parses strictly");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("gmr-safety/v1")
    );
    assert_eq!(v.get("proved"), Some(&gmr_json::Value::Bool(true)));
    std::fs::remove_file(&safety).ok();
}

#[test]
fn bytecode_mode_verifies_artifacts_at_every_tier() {
    let names = gmr_bio::name_table();
    let eqs = gmr_bio::manual_system();
    let texts: Vec<String> = eqs.iter().map(|e| e.display(&names).to_string()).collect();
    let path = tmp_path("manual-artifact.json");
    std::fs::write(
        &path,
        artifact_json(&texts.iter().map(String::as_str).collect::<Vec<_>>()),
    )
    .unwrap();
    for tier in ["register", "fused", "full"] {
        let out = gmr_lint(&[
            "--artifact",
            path.to_str().unwrap(),
            "--bytecode",
            "--tier",
            tier,
        ]);
        assert!(out.status.success(), "tier {tier}: {out:?}");
    }
    std::fs::remove_file(&path).ok();
}
