//! Property-based tests for the static-analysis layer.
//!
//! 1. **Unit inference is stable under simplification** — if an expression
//!    infers a definite unit with no dimensional findings, the simplified
//!    expression infers the same dimension (or collapses to a polymorphic
//!    constant) and stays free of dimensional errors. Otherwise the lint
//!    verdict would depend on whether the engine simplified first.
//! 2. **Interval analysis is sound** — evaluating an expression at any
//!    point drawn from the leaf ranges lands inside the inferred enclosure.
//!    This is the property that lets a `div-denominator-zero` warning be
//!    trusted: the enclosure really does cover everything evaluation can do.

use gmr_expr::{BinOp, EvalContext, Expr, ParamSlot, UnOp};
use gmr_lint::interval::{analyze_intervals, IntervalEnv};
use gmr_lint::{infer_units, Inferred, Policy, Severity, UnitEnv};
use proptest::prelude::*;

/// Expressions over the river leaf vocabulary: all 10 Table IV variables,
/// both states, every Table III parameter kind (values inside the priors so
/// `constant-out-of-prior` stays quiet).
fn arb_river_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100.0_f64..100.0).prop_map(Expr::Num),
        (0u8..10).prop_map(Expr::Var),
        (0u8..2).prop_map(Expr::State),
        (0u16..17, 0.0_f64..1.0).prop_map(|(kind, t)| {
            let s = gmr_bio::params::spec(kind);
            Expr::Param(ParamSlot {
                kind,
                value: s.min + t * (s.max - s.min),
            })
        }),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Min),
                    Just(BinOp::Max),
                    Just(BinOp::Pow),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (
                prop_oneof![Just(UnOp::Neg), Just(UnOp::Log), Just(UnOp::Exp)],
                inner
            )
                .prop_map(|(op, a)| Expr::un(op, a)),
        ]
    })
}

/// A point inside the river interval environment: per-leaf interpolation
/// factors in [0, 1] mapped onto each leaf's range.
fn arb_point() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        prop::collection::vec(0.0_f64..1.0, 10),
        prop::collection::vec(0.0_f64..1.0, 2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn unit_inference_is_stable_under_simplify(e in arb_river_expr()) {
        let env = UnitEnv::river();
        let (before, report) = infer_units(&e, &env, Policy::Strict, "eq");
        // Only constrain expressions the linter passes: a clean verdict must
        // survive simplification. (Dirty draws stay useful as no-panic
        // coverage, so don't reject them — just skip the stability claim.)
        if !report.diagnostics.is_empty() {
            let _ = infer_units(&gmr_expr::simplify(&e), &env, Policy::Strict, "eq");
            return Ok(());
        }
        let s = gmr_expr::simplify(&e);
        let (after, report_after) = infer_units(&s, &env, Policy::Strict, "eq");
        prop_assert_eq!(
            report_after.count(Severity::Error), 0,
            "simplification introduced a dimensional error:\n{}",
            report_after.render_human()
        );
        if let (Inferred::Known(u), Inferred::Known(v)) = (before, after) {
            prop_assert!(
                v.same_dimension(&u),
                "dimension changed under simplify: {u} vs {v}"
            );
        } else if let Inferred::Known(_) = before {
            // A definite unit may only collapse to a polymorphic constant
            // (constant folding), never to Unknown.
            prop_assert!(matches!(after, Inferred::Any), "unit lost: {after:?}");
        }
    }

    #[test]
    fn interval_analysis_encloses_evaluation(
        e in arb_river_expr(),
        (vf, sf) in arb_point(),
    ) {
        let env = IntervalEnv::river();
        let vars: Vec<f64> = env.vars.iter().zip(&vf)
            .map(|(iv, t)| iv.lo + t * (iv.hi - iv.lo))
            .collect();
        let state: Vec<f64> = env.states.iter().zip(&sf)
            .map(|(iv, t)| iv.lo + t * (iv.hi - iv.lo))
            .collect();
        let (enclosure, _) = analyze_intervals(&e, &env, "eq");
        let v = e.eval(&EvalContext { vars: &vars, state: &state });
        // Extreme towers can overflow to infinity in both the evaluator and
        // the enclosure; soundness is only claimed for finite values.
        prop_assume!(v.is_finite());
        prop_assert!(
            enclosure.contains(v),
            "value {v} escapes enclosure {enclosure} for {e:?}"
        );
    }

    #[test]
    fn manual_system_stays_clean_at_random_points(
        (vf, sf) in arb_point(),
    ) {
        // The expert equations are the zero-error acceptance gate; they must
        // also evaluate finitely anywhere inside the observed envelopes.
        let env = IntervalEnv::river();
        let vars: Vec<f64> = env.vars.iter().zip(&vf)
            .map(|(iv, t)| iv.lo + t * (iv.hi - iv.lo))
            .collect();
        let state: Vec<f64> = env.states.iter().zip(&sf)
            .map(|(iv, t)| iv.lo + t * (iv.hi - iv.lo))
            .collect();
        let ctx = EvalContext { vars: &vars, state: &state };
        for eq in gmr_bio::manual_system() {
            prop_assert!(eq.eval(&ctx).is_finite());
        }
    }
}
