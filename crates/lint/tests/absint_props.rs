//! Properties of the bytecode abstract interpreter (`gmr_lint::absint`).
//!
//! 1. **Soundness** — for random river systems compiled at every pipeline
//!    tier, every value the VM actually produces over random in-envelope
//!    forcing tables and states is contained in the analyzer's static
//!    output enclosure (finite values inside the interval, non-finite ones
//!    only when the ⊤ flag is set), and the analyzer never raises a false
//!    `Error` on pipeline-compiled code.
//! 2. **Prefix-taint agreement** — on the Table V expert model and the
//!    three elite revisions the benchmarks pin down, the analyzer's
//!    state-dependence proof agrees with what the compiler hoisted: the
//!    hoisted prefix is provably state-independent (zero findings), and a
//!    state load grafted into it is refused.

use gmr_expr::{
    BinOp, CompiledSystem, EvalContext, Expr, OptOptions, ParamSlot, RInstr, RegProgram, UnOp,
};
use gmr_lint::interval::IntervalEnv;
use gmr_lint::{analyze_system, Severity};
use proptest::prelude::*;

/// Expressions over the river leaf vocabulary (same generator as the AST
/// property suite): all 10 Table IV variables, both states, every Table III
/// parameter kind with values inside the priors.
fn arb_river_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100.0_f64..100.0).prop_map(Expr::Num),
        (0u8..10).prop_map(Expr::Var),
        (0u8..2).prop_map(Expr::State),
        (0u16..17, 0.0_f64..1.0).prop_map(|(kind, t)| {
            let s = gmr_bio::params::spec(kind);
            Expr::Param(ParamSlot {
                kind,
                value: s.min + t * (s.max - s.min),
            })
        }),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Min),
                    Just(BinOp::Max),
                    Just(BinOp::Pow),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (
                prop_oneof![Just(UnOp::Neg), Just(UnOp::Log), Just(UnOp::Exp)],
                inner
            )
                .prop_map(|(op, a)| Expr::un(op, a)),
        ]
    })
}

/// Interpolation factors for in-envelope forcing rows and state vectors.
fn arb_drive() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<Vec<f64>>)> {
    (
        prop::collection::vec(prop::collection::vec(0.0_f64..1.0, 10), 1..40),
        prop::collection::vec(prop::collection::vec(0.0_f64..1.0, 2), 1..4),
    )
}

fn lerp_rows(ivs: &[gmr_lint::Interval], factors: &[Vec<f64>]) -> Vec<Vec<f64>> {
    factors
        .iter()
        .map(|row| {
            ivs.iter()
                .zip(row)
                .map(|(iv, t)| iv.lo + t * (iv.hi - iv.lo))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn static_enclosure_contains_runtime_values(
        eqs in prop::collection::vec(arb_river_expr(), 1..3),
        (vf, sf) in arb_drive(),
    ) {
        let env = IntervalEnv::river();
        let rows = lerp_rows(&env.vars, &vf);
        let states = lerp_rows(&env.states, &sf);
        for opts in [OptOptions::register(), OptOptions::fused(), OptOptions::full()] {
            let sys = CompiledSystem::compile_checked(&eqs, 10, 2, opts)
                .expect("river-arity system compiles");
            let analysis = analyze_system(&sys, &env, "prop");
            // Pipeline output must never be refused.
            prop_assert_eq!(
                analysis.report.count(Severity::Error), 0,
                "false Error at tier {:?}:\n{}",
                opts, analysis.report.render_human()
            );
            prop_assert!(analysis.safety.proved());
            let mut scratch = sys.scratch();
            let mut out = vec![0.0; sys.n_eqs()];
            for vars in &rows {
                for state in &states {
                    let ctx = EvalContext { vars, state };
                    sys.eval_step(&ctx, &mut scratch, &mut out);
                    for (k, &v) in out.iter().enumerate() {
                        let abs = &analysis.outputs[k];
                        prop_assert!(
                            abs.contains(v),
                            "tier {:?} eq {}: runtime value {} escapes static \
                             enclosure {} (nonfinite={})",
                            opts, k, v, abs.iv, abs.nonfinite
                        );
                    }
                }
            }
        }
    }
}

/// The pinned systems of `bench_vm`: Table V plus the three elite shapes.
fn pinned_models() -> Vec<(&'static str, Vec<Expr>)> {
    use gmr_bio::manual;
    let names = gmr_bio::name_table();
    let parse_eq = |src: &str| -> Expr {
        gmr_expr::parse(src, &names, |kind| gmr_bio::params::spec(kind).mean)
            .unwrap_or_else(|e| panic!("pinned model failed to parse: {e}\n{src}"))
    };
    let dbphy = manual::dbphy_src();
    let dbzoo = manual::dbzoo_src();
    vec![
        ("table_v_manual", gmr_bio::manual_system().to_vec()),
        (
            "elite_added_flux",
            vec![
                parse_eq(&format!(
                    "({dbphy}) + R * (Vcd / (Vcd + 300)) * ({})",
                    manual::F_LIGHT
                )),
                parse_eq(&dbzoo),
            ],
        ),
        (
            "elite_temp_modulated",
            vec![
                parse_eq(&format!("({dbphy}) * ({})", manual::H_TEMP)),
                parse_eq(&dbzoo),
            ],
        ),
        (
            "elite_coupled_zoo",
            vec![
                parse_eq(&dbphy),
                parse_eq(&format!(
                    "({dbzoo}) + CUZ * ({}) * BZoo",
                    manual::G_NUTRIENT
                )),
            ],
        ),
    ]
}

#[test]
fn pinned_models_prefixes_prove_state_independent() {
    let env = IntervalEnv::river();
    for (name, eqs) in pinned_models() {
        let sys = CompiledSystem::compile_checked(&eqs, 10, 2, OptOptions::full())
            .unwrap_or_else(|e| panic!("{name} does not compile: {e}"));
        // The compiler found real state-independent work to hoist in every
        // pinned model — the taint proof must not be vacuous.
        assert!(sys.prefix_len() > 0, "{name}: nothing hoisted");
        let analysis = analyze_system(&sys, &env, name);
        assert!(
            analysis.report.diagnostics.is_empty(),
            "{name}:\n{}",
            analysis.report.render_human()
        );
        assert!(analysis.safety.proved(), "{name}: unproved obligation");
        // Agreement with the compiler: what absint derives as untainted is
        // exactly the hoisted program — graft one state load into it and
        // the same analysis must flip to a refusal.
        let mut code = sys.prefix().instructions().to_vec();
        let dst = code.last().expect("nonempty prefix").dst();
        code.push(RInstr::LoadState { dst, idx: 0 });
        let corrupt = CompiledSystem::from_raw_parts(
            RegProgram::from_raw_unchecked(
                code,
                sys.prefix().consts().to_vec(),
                0,
                sys.prefix().n_regs() as u16,
                sys.prefix().outputs().to_vec(),
                sys.prefix().needs_vars(),
                0,
            ),
            sys.core().clone(),
            sys.n_eqs(),
            sys.options(),
        );
        let refused = analyze_system(&corrupt, &env, name);
        assert!(
            refused
                .report
                .diagnostics
                .iter()
                .any(|d| d.rule == "prefix-state-load" && d.severity == Severity::Error),
            "{name}: grafted state load not refused:\n{}",
            refused.report.render_human()
        );
    }
}

#[test]
fn pinned_models_static_intervals_contain_simulated_trajectory() {
    use gmr_hydro::{generate, SyntheticConfig};
    // Drive each pinned model over a real synthetic forcing table (the same
    // generator the benchmarks use) and check the static enclosure holds on
    // genuine trajectories, not just random points.
    let ds = generate(&SyntheticConfig {
        start_year: 1996,
        end_year: 1997,
        train_end_year: 1996,
        ..Default::default()
    });
    let problem = gmr_bio::RiverProblem::from_dataset(&ds, ds.train);
    let env = IntervalEnv::river();
    for (name, eqs) in pinned_models() {
        let sys = CompiledSystem::compile_checked(&eqs, 10, 2, OptOptions::full())
            .unwrap_or_else(|e| panic!("{name} does not compile: {e}"));
        let analysis = analyze_system(&sys, &env, name);
        let mut scratch = sys.scratch();
        let mut out = vec![0.0; sys.n_eqs()];
        let state = [30.0, 10.0];
        for row in &problem.forcings {
            let clamped: Vec<f64> = row
                .iter()
                .zip(&env.vars)
                .map(|(&v, iv)| v.clamp(iv.lo, iv.hi))
                .collect();
            let ctx = EvalContext {
                vars: &clamped,
                state: &state,
            };
            sys.eval_step(&ctx, &mut scratch, &mut out);
            for (k, &v) in out.iter().enumerate() {
                assert!(
                    analysis.outputs[k].contains(v),
                    "{name} eq {k}: {v} escapes {}",
                    analysis.outputs[k].iv
                );
            }
        }
    }
}
