//! The diagnostics framework: severities, locations, reports and rendering.

use std::fmt;

/// How bad a finding is.
///
/// * `Error` — the object under analysis violates an invariant the rest of
///   the system relies on (an operator lexeme that can never ground, a
///   constant outside its Table III exploration bounds, a dimension clash in
///   the expert equations under the strict policy). The CLI exits non-zero.
/// * `Warn` — almost certainly unintended, but nothing downstream breaks
///   (a dead pool, a division whose denominator interval straddles zero).
/// * `Info` — worth knowing (an inert adjunction site kept inert by design,
///   a simplifiable subtree that will cost cache hits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational finding.
    Info,
    /// Suspicious but non-fatal.
    Warn,
    /// Invariant violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A node inside an expression: the equation label plus the child-index
    /// path from the root (`[]` is the root itself, `[0, 1]` is the right
    /// child of the left child).
    Expr {
        /// Which equation (e.g. `"dBPhy/dt"`).
        equation: String,
        /// Child-index path from the root.
        path: Vec<u8>,
    },
    /// An elementary tree of a grammar, by name.
    Tree(String),
    /// A grammar symbol, by name.
    Symbol(String),
    /// A register-bytecode instruction: which program of a
    /// [`CompiledSystem`](gmr_expr::CompiledSystem) (`"core"` or
    /// `"prefix"`), and the instruction index when the finding points at
    /// one instruction rather than the program as a whole.
    Instr {
        /// Program name (`"core"` / `"prefix"`).
        program: &'static str,
        /// Instruction index, when applicable.
        index: Option<usize>,
    },
    /// No finer location.
    Global,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Expr { equation, path } => {
                write!(f, "{equation}@root")?;
                for p in path {
                    write!(f, ".{p}")?;
                }
                Ok(())
            }
            Location::Tree(name) => write!(f, "tree '{name}'"),
            Location::Symbol(name) => write!(f, "symbol '{name}'"),
            Location::Instr { program, index } => match index {
                Some(i) => write!(f, "{program}[{i}]"),
                None => write!(f, "{program}"),
            },
            Location::Global => write!(f, "<global>"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity level.
    pub severity: Severity,
    /// Stable rule code (e.g. `"unit-mismatch"`, `"dead-pool"`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Where it points.
    pub location: Location,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(
        severity: Severity,
        rule: &'static str,
        location: Location,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            rule,
            message: message.into(),
            location,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.location, self.message
        )
    }
}

/// A collection of diagnostics with rendering helpers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append every diagnostic of another report.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings at a given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// True when no finding is `Error`-level.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Human-readable rendering: one line per diagnostic (most severe
    /// first, stable within a level) plus a summary line.
    pub fn render_human(&self) -> String {
        let mut sorted: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        sorted.sort_by_key(|d| std::cmp::Reverse(d.severity));
        let mut out = String::new();
        for d in sorted {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        ));
        out
    }

    /// Machine-readable rendering: a JSON object with per-severity counts
    /// and the full diagnostic list. Escaping goes through the shared
    /// [`gmr_json`] emitter (the same one the artifact and serving layers
    /// use), so the output strictly re-parses with [`gmr_json::parse`];
    /// key order is fixed for byte-stable diffs.
    pub fn render_json(&self) -> String {
        use gmr_json::push_escaped;
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"severity\":");
            push_escaped(&mut out, &d.severity.to_string());
            out.push_str(",\"rule\":");
            push_escaped(&mut out, d.rule);
            out.push_str(",\"location\":");
            push_escaped(&mut out, &d.location.to_string());
            out.push_str(",\"message\":");
            push_escaped(&mut out, &d.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Severity::Warn,
            "dead-pool",
            Location::Symbol("V9".into()),
            "pool has 3 tokens but no reachable slot",
        ));
        r.push(Diagnostic::new(
            Severity::Error,
            "unit-mismatch",
            Location::Expr {
                equation: "dBPhy/dt".into(),
                path: vec![0, 1],
            },
            "ug L^-1 + degC",
        ));
        r
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = sample();
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.count(Severity::Info), 0);
        assert!(!r.is_clean());
        assert!(Report::new().is_clean());
    }

    #[test]
    fn human_rendering_sorts_errors_first() {
        let text = sample().render_human();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("error[unit-mismatch]"), "{first}");
        assert!(text.contains("dBPhy/dt@root.0.1"));
        assert!(text.contains("1 error(s), 1 warning(s), 0 note(s)"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = sample().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\"rule\":\"unit-mismatch\""));
        // Braces balance.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Severity::Info,
            "x",
            Location::Global,
            "a \"quoted\"\nline",
        ));
        let json = r.render_json();
        assert!(json.contains("a \\\"quoted\\\"\\nline"));
    }

    #[test]
    fn json_rendering_reparses_strictly() {
        let mut r = sample();
        r.push(Diagnostic::new(
            Severity::Info,
            "x",
            Location::Instr {
                program: "core",
                index: Some(3),
            },
            "control chars \u{1} and a \"quote\"",
        ));
        let v = gmr_json::parse(&r.render_json()).expect("lint JSON re-parses strictly");
        assert_eq!(v.get("errors").and_then(|n| n.as_u64()), Some(1));
        let diags = v
            .get("diagnostics")
            .and_then(|d| d.as_arr())
            .expect("diagnostics array");
        assert_eq!(diags.len(), 3);
        assert_eq!(
            diags[2].get("location").and_then(|l| l.as_str()),
            Some("core[3]")
        );
        assert_eq!(
            diags[2].get("message").and_then(|m| m.as_str()),
            Some("control chars \u{1} and a \"quote\"")
        );
    }
}
