//! Interval analysis over expression trees, mirroring the protected
//! evaluation semantics of `gmr_expr::eval`.
//!
//! Each leaf gets a closed interval from an [`IntervalEnv`] — parameters
//! from their Table III exploration bounds, temporal variables from the
//! observed ranges of the river data, states from plausible biomass ranges —
//! and intervals propagate upward through the protected operators. The
//! propagation is *outward-widened* after every step so that the enclosure
//! stays sound under floating-point rounding (a property the crate's
//! proptest exercises by evaluating random points).
//!
//! Findings:
//!
//! * `div-denominator-zero` (Warn) — a division whose denominator interval
//!   contains the protected region `[-ε, ε]`: the protected evaluator maps
//!   those points to 0, silently zeroing the term.
//! * `exp-overflow` (Warn) — an `exp` argument interval escaping the clamp
//!   `±50`: the evaluator saturates, flattening the model's response.
//! * `constant-out-of-prior` (Error) — an embedded parameter value outside
//!   its Table III `[min, max]` exploration bounds.
//! * `simplifiable-subtree` (Info) — a non-trivial constant subtree that
//!   `simplify` would fold; it costs cache misses and bloats genomes.

use crate::diag::{Diagnostic, Location, Report, Severity};
use gmr_expr::eval::{DIV_EPS, EXP_CLAMP, LOG_EPS};
use gmr_expr::{simplify, BinOp, Expr, UnOp};

/// Relative outward widening applied after every interval operation. Large
/// enough to absorb the rounding of a single protected-operator step.
const WIDEN_REL: f64 = 1e-9;

/// A closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

// Not `std::ops`: these are outward-widened interval transfers, not exact
// arithmetic, and operator sugar would hide that every call loosens bounds.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// Construct `[lo, hi]`; the bounds are reordered if reversed.
    pub fn new(lo: f64, hi: f64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Outward widening: relax both bounds by a relative epsilon so the
    /// enclosure survives floating-point rounding in the real evaluator.
    fn widen(self) -> Interval {
        let pad = |v: f64| WIDEN_REL * v.abs().max(1e-300);
        Interval {
            lo: self.lo - pad(self.lo),
            hi: self.hi + pad(self.hi),
        }
    }

    /// Interval sum (outward-widened).
    pub fn add(self, o: Interval) -> Interval {
        Interval::new(self.lo + o.lo, self.hi + o.hi).widen()
    }

    /// Interval difference (outward-widened).
    pub fn sub(self, o: Interval) -> Interval {
        Interval::new(self.lo - o.hi, self.hi - o.lo).widen()
    }

    /// Interval negation (exact).
    pub fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }

    /// Interval product: hull of the four corner products, widened.
    pub fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(lo, hi).widen()
    }

    /// Pointwise minimum (outward-widened).
    pub fn min(self, o: Interval) -> Interval {
        Interval::new(self.lo.min(o.lo), self.hi.min(o.hi)).widen()
    }

    /// Pointwise maximum (outward-widened).
    pub fn max(self, o: Interval) -> Interval {
        Interval::new(self.lo.max(o.lo), self.hi.max(o.hi)).widen()
    }

    /// Does the denominator interval intersect the protected region
    /// `[-DIV_EPS, DIV_EPS]` that the evaluator maps to zero?
    pub fn straddles_protected_zero(&self) -> bool {
        self.lo <= DIV_EPS && self.hi >= -DIV_EPS
    }

    /// Protected division, matching `protected_div`: denominator values
    /// inside `[-ε, ε]` yield exactly 0, so the result is the hull of the
    /// ordinary quotient over the non-protected part plus `{0}` when the
    /// protected region is hit.
    pub fn div(self, o: Interval) -> Interval {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut cover = |d: Interval| {
            for n in [self.lo, self.hi] {
                for m in [d.lo, d.hi] {
                    let q = n / m;
                    lo = lo.min(q);
                    hi = hi.max(q);
                }
            }
        };
        // Positive part of the denominator outside the protected band.
        if o.hi > DIV_EPS {
            cover(Interval::new(o.lo.max(DIV_EPS), o.hi));
        }
        // Negative part.
        if o.lo < -DIV_EPS {
            cover(Interval::new(o.lo, o.hi.min(-DIV_EPS)));
        }
        if o.straddles_protected_zero() {
            lo = lo.min(0.0);
            hi = hi.max(0.0);
        }
        if lo > hi {
            // Denominator entirely inside the protected band.
            return Interval::point(0.0);
        }
        Interval::new(lo, hi).widen()
    }

    /// Protected logarithm: `ln(max(|x|, ε))`, monotone in `|x|`.
    pub fn log(self) -> Interval {
        let abs_hi = self.lo.abs().max(self.hi.abs());
        let abs_lo = if self.contains(0.0) {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        };
        Interval::new(abs_lo.max(LOG_EPS).ln(), abs_hi.max(LOG_EPS).ln()).widen()
    }

    /// Protected exponential: `exp(clamp(x, ±EXP_CLAMP))`.
    pub fn exp(self) -> Interval {
        let clamp = |v: f64| v.clamp(-EXP_CLAMP, EXP_CLAMP);
        Interval::new(clamp(self.lo).exp(), clamp(self.hi).exp()).widen()
    }

    /// Protected power: `exp(y · ln(max(|x|, ε)))` per `protected_pow`.
    pub fn pow(self, e: Interval) -> Interval {
        self.log().mul(e).exp()
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Leaf-interval assignments.
#[derive(Debug, Clone)]
pub struct IntervalEnv {
    /// Range per temporal-variable index.
    pub vars: Vec<Interval>,
    /// Range per state-variable index.
    pub states: Vec<Interval>,
    /// Range per parameter kind (Table III exploration bounds).
    pub params: Vec<Interval>,
}

impl IntervalEnv {
    /// The river problem's environment: Table III prior bounds for the
    /// parameters, observed-range envelopes for the Table IV variables, and
    /// plausible biomass ranges for the two states.
    pub fn river() -> IntervalEnv {
        // Envelopes of the variables' plausible observed ranges at the
        // study sites (generous, so a Warn means genuinely reachable).
        let vars = vec![
            Interval::new(0.5, 35.0),    // Vlgt  MJ m^-2 d^-1
            Interval::new(0.05, 8.0),    // Vn    mg L^-1
            Interval::new(0.001, 0.5),   // Vp    mg L^-1
            Interval::new(0.05, 20.0),   // Vsi   mg L^-1
            Interval::new(-2.0, 35.0),   // Vtmp  degC
            Interval::new(2.0, 20.0),    // Vdo   mg L^-1
            Interval::new(50.0, 1500.0), // Vcd  uS cm^-1
            Interval::new(5.5, 10.0),    // Vph   -
            Interval::new(10.0, 300.0),  // Valk  mg L^-1
            Interval::new(0.1, 10.0),    // Vsd   m
        ];
        let states = vec![
            Interval::new(0.0, 500.0), // BPhy ug L^-1
            Interval::new(0.0, 200.0), // BZoo ug L^-1
        ];
        let params = gmr_bio::params::PARAMS
            .iter()
            .map(|p| Interval::new(p.min, p.max))
            .collect();
        IntervalEnv {
            vars,
            states,
            params,
        }
    }
}

struct Ctx<'a> {
    env: &'a IntervalEnv,
    equation: &'a str,
    report: Report,
    path: Vec<u8>,
}

impl Ctx<'_> {
    fn here(&self) -> Location {
        Location::Expr {
            equation: self.equation.to_string(),
            path: self.path.clone(),
        }
    }

    fn diag(&mut self, severity: Severity, rule: &'static str, message: String) {
        let loc = self.here();
        self.report
            .push(Diagnostic::new(severity, rule, loc, message));
    }

    fn analyze(&mut self, e: &Expr) -> Interval {
        match e {
            Expr::Num(v) => Interval::point(*v),
            Expr::Param(p) => {
                let iv = match self.env.params.get(p.kind as usize) {
                    Some(iv) => *iv,
                    None => return Interval::new(f64::NEG_INFINITY, f64::INFINITY),
                };
                if !iv.contains(p.value) {
                    self.diag(
                        Severity::Error,
                        "constant-out-of-prior",
                        format!(
                            "parameter {} = {} lies outside its prior bounds {}",
                            gmr_bio::params::spec(p.kind).name,
                            p.value,
                            iv
                        ),
                    );
                }
                // The concrete slot value is fixed for this individual;
                // analyse with the point, not the whole prior.
                Interval::point(p.value)
            }
            Expr::Var(i) => match self.env.vars.get(*i as usize) {
                Some(iv) => *iv,
                None => Interval::new(f64::NEG_INFINITY, f64::INFINITY),
            },
            Expr::State(i) => match self.env.states.get(*i as usize) {
                Some(iv) => *iv,
                None => Interval::new(f64::NEG_INFINITY, f64::INFINITY),
            },
            Expr::Unary(op, a) => {
                self.path.push(0);
                let ia = self.analyze(a);
                self.path.pop();
                match op {
                    UnOp::Neg => ia.neg(),
                    UnOp::Log => ia.log(),
                    UnOp::Exp => {
                        if ia.hi > EXP_CLAMP {
                            self.diag(
                                Severity::Warn,
                                "exp-overflow",
                                format!(
                                    "exp argument range {ia} exceeds the clamp at {EXP_CLAMP}; \
                                     the evaluator will saturate"
                                ),
                            );
                        }
                        ia.exp()
                    }
                }
            }
            Expr::Binary(op, l, r) => {
                self.path.push(0);
                let il = self.analyze(l);
                self.path.pop();
                self.path.push(1);
                let ir = self.analyze(r);
                self.path.pop();
                match op {
                    BinOp::Add => il.add(ir),
                    BinOp::Sub => il.sub(ir),
                    BinOp::Mul => il.mul(ir),
                    BinOp::Min => il.min(ir),
                    BinOp::Max => il.max(ir),
                    BinOp::Div => {
                        if ir.straddles_protected_zero() {
                            self.diag(
                                Severity::Warn,
                                "div-denominator-zero",
                                format!(
                                    "denominator range {ir} contains zero; the protected \
                                     evaluator silently zeroes the quotient there"
                                ),
                            );
                        }
                        il.div(ir)
                    }
                    BinOp::Pow => il.pow(ir),
                }
            }
        }
    }

    /// Flag non-trivial constant subtrees that `simplify` would fold.
    fn flag_simplifiable(&mut self, e: &Expr) {
        if e.size() > 1 && e.is_constant() {
            let folded = simplify(e);
            if folded.size() < e.size() {
                self.diag(
                    Severity::Info,
                    "simplifiable-subtree",
                    format!(
                        "constant subtree of {} nodes folds to {} node(s); \
                         it bloats the genome and defeats the evaluation cache",
                        e.size(),
                        folded.size()
                    ),
                );
            }
            return; // Don't re-report inside an already-flagged subtree.
        }
        match e {
            Expr::Unary(_, a) => {
                self.path.push(0);
                self.flag_simplifiable(a);
                self.path.pop();
            }
            Expr::Binary(_, l, r) => {
                self.path.push(0);
                self.flag_simplifiable(l);
                self.path.pop();
                self.path.push(1);
                self.flag_simplifiable(r);
                self.path.pop();
            }
            _ => {}
        }
    }
}

/// Compute the value enclosure of `expr` over `env` and collect
/// numeric-domain diagnostics.
pub fn analyze_intervals(expr: &Expr, env: &IntervalEnv, equation: &str) -> (Interval, Report) {
    let mut ctx = Ctx {
        env,
        equation,
        report: Report::new(),
        path: Vec::new(),
    };
    let iv = ctx.analyze(expr);
    ctx.flag_simplifiable(expr);
    (iv, ctx.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_expr::ParamSlot;

    fn env() -> IntervalEnv {
        IntervalEnv::river()
    }

    #[test]
    fn manual_equations_have_no_numeric_warnings() {
        let [dbphy, dbzoo] = gmr_bio::manual_system();
        for (label, eq) in [("dBPhy/dt", &dbphy), ("dBZoo/dt", &dbzoo)] {
            let (iv, report) = analyze_intervals(eq, &env(), label);
            assert!(
                report.diagnostics.is_empty(),
                "{label}:\n{}",
                report.render_human()
            );
            assert!(iv.lo.is_finite() && iv.hi.is_finite(), "{label}: {iv}");
        }
    }

    #[test]
    fn zero_straddling_denominator_warns() {
        // Vtmp spans [-2, 35], so 1 / Vtmp straddles the protected zero.
        let e = Expr::bin(BinOp::Div, Expr::Num(1.0), Expr::Var(gmr_hydro::vars::VTMP));
        let (iv, report) = analyze_intervals(&e, &env(), "test");
        assert_eq!(report.count(Severity::Warn), 1);
        assert_eq!(report.diagnostics[0].rule, "div-denominator-zero");
        // The protected quotient includes 0 and both signs.
        assert!(iv.contains(0.0));
        assert!(iv.lo < 0.0 && iv.hi > 0.0);
    }

    #[test]
    fn positive_denominator_does_not_warn() {
        // Vcd spans [50, 1500]: safely away from zero.
        let e = Expr::bin(BinOp::Div, Expr::Num(1.0), Expr::Var(gmr_hydro::vars::VCD));
        let (iv, report) = analyze_intervals(&e, &env(), "test");
        assert!(report.diagnostics.is_empty());
        assert!(iv.lo > 0.0);
    }

    #[test]
    fn exp_overflow_warns_and_clean_exp_does_not() {
        // exp(Vcd) with Vcd up to 1500 saturates the clamp.
        let hot = Expr::un(UnOp::Exp, Expr::Var(gmr_hydro::vars::VCD));
        let (_, report) = analyze_intervals(&hot, &env(), "test");
        assert_eq!(report.count(Severity::Warn), 1);
        assert_eq!(report.diagnostics[0].rule, "exp-overflow");

        // exp(Vph) stays inside the clamp.
        let cool = Expr::un(UnOp::Exp, Expr::Var(gmr_hydro::vars::VPH));
        let (_, report) = analyze_intervals(&cool, &env(), "test");
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn out_of_prior_constant_is_an_error() {
        // CUA's prior is [0.5, 4.0]; 9.0 is outside.
        let e = Expr::Param(ParamSlot {
            kind: gmr_bio::params::CUA,
            value: 9.0,
        });
        let (_, report) = analyze_intervals(&e, &env(), "test");
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.diagnostics[0].rule, "constant-out-of-prior");

        // A value inside the prior is clean.
        let ok = Expr::Param(ParamSlot {
            kind: gmr_bio::params::CUA,
            value: gmr_bio::params::spec(gmr_bio::params::CUA).mean,
        });
        let (_, report) = analyze_intervals(&ok, &env(), "test");
        assert!(report.is_clean());
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn simplifiable_constant_subtree_is_noted() {
        // (2 + 3) * Vtmp: the left subtree folds to 5.
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::Num(2.0), Expr::Num(3.0)),
            Expr::Var(gmr_hydro::vars::VTMP),
        );
        let (_, report) = analyze_intervals(&e, &env(), "test");
        assert_eq!(report.count(Severity::Info), 1);
        assert_eq!(report.diagnostics[0].rule, "simplifiable-subtree");
        assert!(matches!(
            &report.diagnostics[0].location,
            Location::Expr { path, .. } if path == &vec![0]
        ));
    }

    #[test]
    fn interval_ops_enclose_sampled_points() {
        // Hand-picked sanity checks before the proptest takes over.
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(0.5, 4.0);
        assert!(a.add(b).contains(-1.5) && a.add(b).contains(7.0));
        assert!(a.mul(b).contains(-8.0) && a.mul(b).contains(12.0));
        assert!(a.sub(b).contains(-6.0) && a.sub(b).contains(2.5));
        // Protected log of an interval through zero starts at ln(eps).
        let l = a.log();
        assert!(l.contains(LOG_EPS.ln()));
        assert!(l.contains(3.0f64.ln()));
    }
}
