//! Abstract interpretation over the register bytecode of
//! [`gmr_expr::CompiledSystem`] — the AST-level guarantees of this crate,
//! carried through the optimizing pipeline to the code that actually runs.
//!
//! The AST linters ([`crate::interval`], [`crate::units`]) analyze what the
//! grammar *wrote*; since the register-VM pipeline landed, what *executes*
//! is fused three-address code with unchecked register accesses and a
//! state-independent prefix hoisted out of the sequential loop. This module
//! closes that gap with four dataflow analyses over the compiled programs,
//! one forward pass each plus a backward liveness sweep:
//!
//! 1. **Interval + non-finite taint.** Every register carries an element of
//!    the lattice `{⊤} ∪ {finite [lo, hi]}`: either a closed finite
//!    enclosure of every value the register can hold (propagated through
//!    the same protected-operator transfer functions as the AST analysis,
//!    reusing [`Interval`] as the value domain), or ⊤ — "may be anything,
//!    including NaN/∞". Any operand at ⊤ forces the result to ⊤ (protected
//!    `min`/`max` *discard* NaN operands, so a NaN input can surface a
//!    value outside the pointwise image — only ⊤ is sound there), and an
//!    enclosure whose bound overflows to ±∞ or collapses to NaN widens to
//!    ⊤. An equation output at ⊤ under a finite input environment is a
//!    `nonfinite-range` warning.
//! 2. **State-dependence taint.** `LoadState` introduces taint; every
//!    consumer propagates it. The split tier's contract is that the prefix
//!    program is state-*independent* (its values are computed once per
//!    candidate and shared across every step and trajectory), so any taint
//!    source inside a prefix — a `LoadState` instruction, or a declared
//!    state arity — is an Error-severity finding, as is a prefix window
//!    whose width disagrees with what the compiler hoisted.
//! 3. **Liveness.** A backward sweep over the register file finds
//!    instructions whose destination is never observed. The compiler runs
//!    the same analysis as a DCE pass ([`RegProgram::dead_instructions`]);
//!    this module re-derives it independently from the public instruction
//!    stream, so a surviving dead instruction — impossible for pipeline
//!    output, possible for a corrupted artifact — is reported.
//! 4. **Bounds proof.** The VM's unchecked register accesses — the scalar
//!    interpreter, the threaded tier's raw-pointer thunks, and the five
//!    lane dispatchers (each forwarding identical stripe offsets to the
//!    scalar `k_*` kernels or the AVX2 `simd` kernels) — are each
//!    discharged by a machine-checked max-index argument: the analysis
//!    computes the maximum register index any instruction or output
//!    touches, per program, and proves it below the register-file bound
//!    the interpreter asserts (`n_regs` for scalar and threaded access,
//!    `n_regs · LANES` for lane stripes). The obligations are
//!    emitted as a [`SafetyReport`] (JSON schema `gmr-safety/v1`) that CI
//!    diffs against a committed baseline; an unproved obligation is an
//!    Error finding.
//!
//! **Soundness argument** (property-tested in `tests/absint_props.rs`):
//! every transfer function's concrete image is contained in its abstract
//! image — the interval operators mirror the protected evaluator and are
//! outward-widened after every step, and every imprecise corner (NaN
//! discarding in `min`/`max`, overflow, uninitialized reads) collapses to
//! ⊤, which contains everything. Register state is strong-updated (each
//! write replaces the cell exactly as the interpreter does), so by
//! induction over the straight-line program every reachable concrete
//! register state is enclosed by the abstract one.

use crate::diag::{Diagnostic, Location, Report, Severity};
use crate::interval::{Interval, IntervalEnv};
use gmr_expr::{BinOp, CompiledSystem, RInstr, RegProgram, UnOp, LANES};

/// One element of the value lattice: a finite enclosure, or ⊤.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsVal {
    /// Enclosure of every value the register can hold. Full-range when
    /// `nonfinite` is set.
    pub iv: Interval,
    /// ⊤: the register may hold NaN or ±∞ (or anything else — the
    /// enclosure is widened to full range whenever this is set).
    pub nonfinite: bool,
}

impl AbsVal {
    /// ⊤ — may be anything, including NaN/∞.
    pub fn top() -> AbsVal {
        AbsVal {
            iv: Interval::new(f64::NEG_INFINITY, f64::INFINITY),
            nonfinite: true,
        }
    }

    /// Normalize a computed enclosure: a NaN or non-finite bound (or a
    /// non-finite point) widens to ⊤, everything else stays precise.
    pub fn from_interval(iv: Interval) -> AbsVal {
        if iv.lo.is_finite() && iv.hi.is_finite() {
            AbsVal {
                iv,
                nonfinite: false,
            }
        } else {
            AbsVal::top()
        }
    }

    /// Does the enclosure contain `v`? NaN is contained only in ⊤.
    pub fn contains(&self, v: f64) -> bool {
        if v.is_nan() {
            self.nonfinite
        } else {
            self.iv.contains(v)
        }
    }
}

/// Unary transfer function: the abstract image of the protected operator.
fn un_transfer(op: UnOp, a: AbsVal) -> AbsVal {
    if a.nonfinite {
        return AbsVal::top();
    }
    AbsVal::from_interval(match op {
        UnOp::Neg => a.iv.neg(),
        UnOp::Log => a.iv.log(),
        UnOp::Exp => a.iv.exp(),
    })
}

/// Binary transfer function. Any ⊤ operand forces ⊤: protected `min`/`max`
/// *discard* a NaN operand (`f64::min(NaN, x) == x`), so the result can be
/// any value of the other side — the pointwise interval image would be
/// unsound there.
fn bin_transfer(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    if a.nonfinite || b.nonfinite {
        return AbsVal::top();
    }
    AbsVal::from_interval(match op {
        BinOp::Add => a.iv.add(b.iv),
        BinOp::Sub => a.iv.sub(b.iv),
        BinOp::Mul => a.iv.mul(b.iv),
        BinOp::Div => a.iv.div(b.iv),
        BinOp::Min => a.iv.min(b.iv),
        BinOp::Max => a.iv.max(b.iv),
        BinOp::Pow => a.iv.pow(b.iv),
    })
}

/// Which three-operand superinstruction a fused transfer models.
#[derive(Clone, Copy)]
enum Fused3 {
    /// `a·b + c` (`RInstr::MulAdd`).
    MulAdd,
    /// `a·b − c` (`RInstr::MulSub`).
    MulSub,
    /// `a − b·c` (`RInstr::SubMul`).
    SubMul,
}

/// Transfer for the fused three-operand superinstructions. Each executes
/// as two separately-rounded IEEE ops (never an FMA contraction), so the
/// abstract image is exactly the composition of the two interval ops.
fn fused3_transfer(shape: Fused3, a: AbsVal, b: AbsVal, c: AbsVal) -> AbsVal {
    if a.nonfinite || b.nonfinite || c.nonfinite {
        return AbsVal::top();
    }
    AbsVal::from_interval(match shape {
        Fused3::MulAdd => a.iv.mul(b.iv).add(c.iv),
        Fused3::MulSub => a.iv.mul(b.iv).sub(c.iv),
        Fused3::SubMul => a.iv.sub(b.iv.mul(c.iv)),
    })
}

/// The river environment when the arities match the river schema, a fully
/// unconstrained environment (every input at ⊤) otherwise — what the
/// serving registry uses to analyze a third-party artifact.
pub fn env_for_arity(n_vars: usize, n_states: usize) -> IntervalEnv {
    let river = IntervalEnv::river();
    if river.vars.len() == n_vars && river.states.len() == n_states {
        return river;
    }
    let full = Interval::new(f64::NEG_INFINITY, f64::INFINITY);
    IntervalEnv {
        vars: vec![full; n_vars],
        states: vec![full; n_states],
        params: Vec::new(),
    }
}

fn env_is_finite(env: &IntervalEnv) -> bool {
    env.vars
        .iter()
        .chain(env.states.iter())
        .all(|iv| iv.lo.is_finite() && iv.hi.is_finite())
}

/// One discharged (or failed) proof obligation for an `unsafe` site.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyObligation {
    /// The `unsafe` site in `expr/src/vm.rs` this obligation discharges.
    pub site: &'static str,
    /// Which program of the system (`"core"` / `"prefix"`).
    pub program: &'static str,
    /// The max-index argument, in words.
    pub claim: &'static str,
    /// Number of accesses the obligation covers (0 = vacuously proved).
    pub accesses: usize,
    /// Largest index any covered access can touch.
    pub max_index: usize,
    /// Exclusive bound the interpreter's buffer length guarantees.
    pub bound: usize,
    /// `accesses == 0 || max_index < bound`.
    pub proved: bool,
}

/// The machine-checked bounds argument for every unchecked access in the
/// VM, per compiled system. Rendered as `gmr-safety/v1` JSON and diffed
/// against a committed baseline by CI.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyReport {
    /// Model name the system was compiled from.
    pub model: String,
    /// Optimization tier ([`gmr_expr::Tier::name`]).
    pub tier: &'static str,
    /// One entry per (site, program) pair.
    pub obligations: Vec<SafetyObligation>,
}

impl SafetyReport {
    /// Every obligation discharged?
    pub fn proved(&self) -> bool {
        self.obligations.iter().all(|o| o.proved)
    }

    /// Render as `gmr-safety/v1` JSON (stable key and obligation order, so
    /// the output is byte-diffable against a committed baseline).
    pub fn render_json(&self) -> String {
        use gmr_json::push_escaped;
        let mut o = String::from("{\n  \"schema\": \"gmr-safety/v1\",\n  \"model\": ");
        push_escaped(&mut o, &self.model);
        o.push_str(",\n  \"tier\": ");
        push_escaped(&mut o, self.tier);
        o.push_str(&format!(",\n  \"proved\": {},", self.proved()));
        o.push_str("\n  \"obligations\": [");
        for (i, ob) in self.obligations.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n    {\"site\": ");
            push_escaped(&mut o, ob.site);
            o.push_str(", \"program\": ");
            push_escaped(&mut o, ob.program);
            o.push_str(&format!(
                ", \"accesses\": {}, \"max_index\": {}, \"bound\": {}, \"proved\": {}, ",
                ob.accesses, ob.max_index, ob.bound, ob.proved
            ));
            o.push_str("\"claim\": ");
            push_escaped(&mut o, ob.claim);
            o.push('}');
        }
        o.push_str("\n  ]\n}\n");
        o
    }
}

/// Everything the analyzer derives about one compiled system.
#[derive(Debug, Clone)]
pub struct SystemAnalysis {
    /// All findings across the four analyses.
    pub report: Report,
    /// Abstract value of each equation output (one per `n_eqs`).
    pub outputs: Vec<AbsVal>,
    /// The bounds proof for the VM's `unsafe` sites.
    pub safety: SafetyReport,
}

/// Per-register analysis cell.
#[derive(Clone, Copy)]
struct Cell {
    val: AbsVal,
    state_tainted: bool,
    written: bool,
}

/// Which accesses feed a given lane-kernel `unsafe` site.
#[derive(Clone, Copy, PartialEq)]
enum Site {
    Scalar,
    Threaded,
    Fused3Lanes,
    KUn,
    KBin,
    KBinCl,
    KBinCr,
}

const N_SITES: usize = 7;

fn sites_of(ins: &RInstr) -> &'static [Site] {
    // Every instruction goes through `run_scalar` and is compiled into a
    // threaded-tier thunk (raw-pointer access with the same indices); the
    // lane interpreters additionally route it to one of the unchecked
    // dispatchers `l_un`/`l_bin`/`l_bin_cl`/`l_bin_cr`/`l_fused3`, each
    // of which forwards the same stripe offsets to either the scalar
    // `k_*` kernels or the `simd` AVX2 kernels (VarBin uses the same
    // `l_bin_cl`/`l_bin_cr` dispatchers in `run_lanes_one_row` and
    // checked indexing in `run_lanes` — the stripe bound covers both).
    match ins {
        RInstr::LoadVar { .. } | RInstr::LoadState { .. } => &[Site::Scalar, Site::Threaded],
        RInstr::Un { .. } => &[Site::Scalar, Site::Threaded, Site::KUn],
        RInstr::Bin { .. } => &[Site::Scalar, Site::Threaded, Site::KBin],
        RInstr::VarBinL { .. } | RInstr::ConstBinL { .. } => {
            &[Site::Scalar, Site::Threaded, Site::KBinCl]
        }
        RInstr::VarBinR { .. } | RInstr::ConstBinR { .. } => {
            &[Site::Scalar, Site::Threaded, Site::KBinCr]
        }
        RInstr::MulAdd { .. } | RInstr::MulSub { .. } | RInstr::SubMul { .. } => {
            &[Site::Scalar, Site::Threaded, Site::Fused3Lanes]
        }
    }
}

/// Max register index (and access count) per site, for one program.
struct SiteBounds {
    max: [Option<u16>; N_SITES],
}

impl SiteBounds {
    fn new() -> SiteBounds {
        SiteBounds {
            max: [None; N_SITES],
        }
    }

    fn note(&mut self, site: Site, r: u16) {
        let slot = &mut self.max[site as usize];
        *slot = Some(slot.map_or(r, |m: u16| m.max(r)));
    }

    fn get(&self, site: Site) -> Option<u16> {
        self.max[site as usize]
    }
}

/// Backward liveness over the register file, independent of the compiler's
/// own sweep: `true` at index `i` means instruction `i`'s destination is
/// never observed.
fn dead_mask(prog: &RegProgram) -> Vec<bool> {
    let code = prog.instructions();
    let mut live = vec![false; prog.n_regs()];
    for &o in prog.outputs() {
        if let Some(slot) = live.get_mut(o as usize) {
            *slot = true;
        }
    }
    let mut dead = vec![false; code.len()];
    for (i, ins) in code.iter().enumerate().rev() {
        let dst = ins.dst() as usize;
        if dst < live.len() && live[dst] {
            live[dst] = false;
            ins.reads(|r| {
                if let Some(slot) = live.get_mut(r as usize) {
                    *slot = true;
                }
            });
        } else {
            dead[i] = true;
        }
    }
    dead
}

struct ProgCtx<'a> {
    prog: &'a RegProgram,
    name: &'static str,
    env: &'a IntervalEnv,
    report: &'a mut Report,
    cells: Vec<Cell>,
    bounds: SiteBounds,
}

impl ProgCtx<'_> {
    fn diag(&mut self, sev: Severity, rule: &'static str, index: Option<usize>, msg: String) {
        self.report.push(Diagnostic::new(
            sev,
            rule,
            Location::Instr {
                program: self.name,
                index,
            },
            msg,
        ));
    }

    /// Abstract read of register `r` at instruction `i`. Out-of-bounds and
    /// never-written reads are Error findings and evaluate to ⊤.
    fn read(&mut self, i: usize, r: u16) -> (AbsVal, bool) {
        let n = self.prog.n_regs();
        if r as usize >= n {
            self.diag(
                Severity::Error,
                "reg-out-of-bounds",
                Some(i),
                format!("reads register {r}, but the file holds {n}"),
            );
            return (AbsVal::top(), false);
        }
        let cell = self.cells[r as usize];
        if !cell.written {
            self.diag(
                Severity::Error,
                "uninit-read",
                Some(i),
                format!(
                    "reads register {r} before any write: the value is stale \
                     scratch data from a previous evaluation"
                ),
            );
            return (AbsVal::top(), false);
        }
        (cell.val, cell.state_tainted)
    }

    /// Abstract write: strong update of the destination cell, with bounds
    /// and pinned-region findings.
    fn write(&mut self, i: usize, dst: u16, val: AbsVal, tainted: bool) {
        let n = self.prog.n_regs();
        let base = self.prog.consts().len() + self.prog.n_pre();
        if dst as usize >= n {
            self.diag(
                Severity::Error,
                "reg-out-of-bounds",
                Some(i),
                format!("writes register {dst}, but the file holds {n}"),
            );
            return;
        }
        if (dst as usize) < base {
            self.diag(
                Severity::Error,
                "pinned-write",
                Some(i),
                format!(
                    "writes pinned register {dst} (constants and the prefix \
                     window end at {base}); the clobbered value poisons every \
                     later step sharing the scratch buffer"
                ),
            );
            // Analysis continues with the clobbered value — that is what
            // the interpreter would compute.
        }
        self.cells[dst as usize] = Cell {
            val,
            state_tainted: tainted,
            written: true,
        };
    }

    fn var_interval(&mut self, i: usize, idx: u8) -> AbsVal {
        match self.env.vars.get(idx as usize) {
            Some(&iv) => AbsVal::from_interval(iv),
            None => {
                self.diag(
                    Severity::Error,
                    "var-out-of-bounds",
                    Some(i),
                    format!(
                        "reads forcing variable {idx}, but the schema declares {}",
                        self.env.vars.len()
                    ),
                );
                AbsVal::top()
            }
        }
    }

    fn state_interval(&mut self, i: usize, idx: u8) -> AbsVal {
        match self.env.states.get(idx as usize) {
            Some(&iv) => AbsVal::from_interval(iv),
            None => {
                self.diag(
                    Severity::Error,
                    "state-out-of-bounds",
                    Some(i),
                    format!(
                        "reads state variable {idx}, but the schema declares {}",
                        self.env.states.len()
                    ),
                );
                AbsVal::top()
            }
        }
    }
}

/// Analyze one program. `window` carries the prefix outputs' abstract
/// values into a core program's pinned window; `is_prefix` arms the
/// state-independence proof. Returns the abstract value of each output.
fn analyze_program(
    prog: &RegProgram,
    name: &'static str,
    env: &IntervalEnv,
    window: &[AbsVal],
    is_prefix: bool,
    report: &mut Report,
) -> (Vec<AbsVal>, SiteBounds) {
    let nc = prog.consts().len();
    let mut cells = vec![
        Cell {
            val: AbsVal::top(),
            state_tainted: false,
            written: false,
        };
        prog.n_regs()
    ];
    for (k, &c) in prog.consts().iter().enumerate() {
        cells[k] = Cell {
            val: AbsVal::from_interval(Interval::point(c)),
            state_tainted: false,
            written: true,
        };
    }
    for (k, &v) in window.iter().enumerate().take(prog.n_pre()) {
        // Prefix values are state-independent by the prefix's own proof.
        if nc + k < cells.len() {
            cells[nc + k] = Cell {
                val: v,
                state_tainted: false,
                written: true,
            };
        }
    }
    let mut ctx = ProgCtx {
        prog,
        name,
        env,
        report,
        cells,
        bounds: SiteBounds::new(),
    };

    if is_prefix && prog.needs_states() > 0 {
        ctx.diag(
            Severity::Error,
            "prefix-state-load",
            None,
            format!(
                "prefix program declares a state arity of {}; the columnar \
                 sweep runs once per candidate with no state vector at all",
                prog.needs_states()
            ),
        );
    }

    for (i, ins) in prog.instructions().iter().enumerate() {
        for &site in sites_of(ins) {
            ctx.bounds.note(site, ins.dst());
            ins.reads(|r| ctx.bounds.note(site, r));
        }
        if is_prefix && ins.state_index().is_some() {
            ctx.diag(
                Severity::Error,
                "prefix-state-load",
                Some(i),
                "state load inside the state-independent prefix: the hoisted \
                 value would be frozen at whatever state the sweep saw first"
                    .to_string(),
            );
        }
        let (val, tainted) = match *ins {
            RInstr::LoadVar { idx, .. } => (ctx.var_interval(i, idx), false),
            RInstr::LoadState { idx, .. } => (ctx.state_interval(i, idx), true),
            RInstr::Un { op, a, .. } => {
                let (av, at) = ctx.read(i, a);
                (un_transfer(op, av), at)
            }
            RInstr::Bin { op, a, b, .. } => {
                let (av, at) = ctx.read(i, a);
                let (bv, bt) = ctx.read(i, b);
                (bin_transfer(op, av, bv), at || bt)
            }
            RInstr::VarBinL { op, idx, b, .. } => {
                let av = ctx.var_interval(i, idx);
                let (bv, bt) = ctx.read(i, b);
                (bin_transfer(op, av, bv), bt)
            }
            RInstr::VarBinR { op, a, idx, .. } => {
                let (av, at) = ctx.read(i, a);
                let bv = ctx.var_interval(i, idx);
                (bin_transfer(op, av, bv), at)
            }
            RInstr::ConstBinL { op, c, b, .. } => {
                let (bv, bt) = ctx.read(i, b);
                (
                    bin_transfer(op, AbsVal::from_interval(Interval::point(c)), bv),
                    bt,
                )
            }
            RInstr::ConstBinR { op, a, c, .. } => {
                let (av, at) = ctx.read(i, a);
                (
                    bin_transfer(op, av, AbsVal::from_interval(Interval::point(c))),
                    at,
                )
            }
            RInstr::MulAdd { a, b, c, .. } => {
                let (av, at) = ctx.read(i, a);
                let (bv, bt) = ctx.read(i, b);
                let (cv, ct) = ctx.read(i, c);
                (fused3_transfer(Fused3::MulAdd, av, bv, cv), at || bt || ct)
            }
            RInstr::MulSub { a, b, c, .. } => {
                let (av, at) = ctx.read(i, a);
                let (bv, bt) = ctx.read(i, b);
                let (cv, ct) = ctx.read(i, c);
                (fused3_transfer(Fused3::MulSub, av, bv, cv), at || bt || ct)
            }
            RInstr::SubMul { a, b, c, .. } => {
                let (av, at) = ctx.read(i, a);
                let (bv, bt) = ctx.read(i, b);
                let (cv, ct) = ctx.read(i, c);
                (fused3_transfer(Fused3::SubMul, av, bv, cv), at || bt || ct)
            }
        };
        ctx.write(i, ins.dst(), val, tainted);
    }

    // Outputs: bounds, initialization, and (for a prefix) state purity.
    let mut outs = Vec::with_capacity(prog.outputs().len());
    for (k, &o) in prog.outputs().iter().enumerate() {
        ctx.bounds.note(Site::Scalar, o);
        ctx.bounds.note(Site::Threaded, o);
        if o as usize >= prog.n_regs() {
            ctx.diag(
                Severity::Error,
                "reg-out-of-bounds",
                None,
                format!(
                    "output {k} reads register {o}, but the file holds {}",
                    prog.n_regs()
                ),
            );
            outs.push(AbsVal::top());
            continue;
        }
        let cell = ctx.cells[o as usize];
        if !cell.written {
            ctx.diag(
                Severity::Error,
                "uninit-read",
                None,
                format!("output {k} reads register {o}, which no instruction writes"),
            );
        }
        if is_prefix && cell.state_tainted {
            ctx.diag(
                Severity::Error,
                "prefix-state-load",
                None,
                format!("prefix output {k} is state-tainted"),
            );
        }
        outs.push(cell.val);
    }

    // Independent liveness: the compiler's DCE must have left nothing.
    for (i, dead) in dead_mask(prog).iter().enumerate() {
        if *dead {
            ctx.diag(
                Severity::Warn,
                "dead-instruction",
                Some(i),
                "destination is overwritten or discarded before any read; \
                 the compiler's DCE pass should have removed this"
                    .to_string(),
            );
        }
    }

    let bounds = ctx.bounds;
    (outs, bounds)
}

/// Obligation table for one program's site bounds.
fn obligations_for(
    name: &'static str,
    bounds: &SiteBounds,
    n_regs: usize,
    out: &mut Vec<SafetyObligation>,
) {
    let scalar_sites: [(Site, &'static str, &'static str); 2] = [
        (
            Site::Scalar,
            "vm.rs run_scalar",
            "every register operand and output index is < n_regs, so \
             `get_unchecked` into a scalar file of n_regs is in bounds",
        ),
        (
            Site::Threaded,
            "threaded.rs ThreadedProgram::run",
            "every thunk argument index is < n_regs and run() asserts the \
             register file length, so the raw-pointer thunk access is in \
             bounds",
        ),
    ];
    let kernel_sites: [(Site, &'static str); 5] = [
        (Site::KUn, "vm.rs l_un (k_un / simd kern1)"),
        (Site::KBin, "vm.rs l_bin (k_bin / simd kern2)"),
        (Site::KBinCl, "vm.rs l_bin_cl (k_bin_cl / simd kern2)"),
        (Site::KBinCr, "vm.rs l_bin_cr (k_bin_cr / simd kern2)"),
        (Site::Fused3Lanes, "vm.rs l_fused3 (scalar / simd kern3)"),
    ];
    for (site, site_name, claim) in scalar_sites {
        let accesses = bounds.get(site).map_or(0, |_| 1);
        let max_index = bounds.get(site).unwrap_or(0) as usize;
        out.push(SafetyObligation {
            site: site_name,
            program: name,
            claim,
            accesses,
            max_index,
            bound: n_regs,
            proved: accesses == 0 || max_index < n_regs,
        });
    }
    for (site, site_name) in kernel_sites {
        let accesses = bounds.get(site).map_or(0, |_| 1);
        let max_index = bounds
            .get(site)
            .map_or(0, |m| m as usize * LANES + (LANES - 1));
        let bound = n_regs * LANES;
        out.push(SafetyObligation {
            site: site_name,
            program: name,
            claim: "max dispatcher stripe offset + (LANES-1) is < n_regs*LANES, \
                    so the shared lane kernels' (scalar and AVX2) unchecked \
                    access is in bounds",
            accesses,
            max_index,
            bound,
            proved: accesses == 0 || max_index < bound,
        });
    }
}

/// Run all four analyses over a compiled system. `env` supplies the input
/// enclosures ([`IntervalEnv::river`] for river-schema systems,
/// [`env_for_arity`] for arbitrary artifacts); `model` labels the
/// [`SafetyReport`].
pub fn analyze_system(sys: &CompiledSystem, env: &IntervalEnv, model: &str) -> SystemAnalysis {
    let mut report = Report::new();

    // Cross-program contract: the prefix's slot count is exactly the
    // window width the core was allocated against.
    if sys.prefix().outputs().len() != sys.core().n_pre() {
        report.push(Diagnostic::new(
            Severity::Error,
            "prefix-window-mismatch",
            Location::Instr {
                program: "prefix",
                index: None,
            },
            format!(
                "prefix produces {} value(s) but the core's pinned window is {} wide; \
                 the core would read unfilled scratch",
                sys.prefix().outputs().len(),
                sys.core().n_pre()
            ),
        ));
    }
    if sys.prefix().n_pre() != 0 {
        report.push(Diagnostic::new(
            Severity::Error,
            "prefix-window-mismatch",
            Location::Instr {
                program: "prefix",
                index: None,
            },
            "prefix program declares a pinned prefix window of its own".to_string(),
        ));
    }
    if sys.core().outputs().len() != sys.n_eqs() {
        report.push(Diagnostic::new(
            Severity::Error,
            "output-arity",
            Location::Instr {
                program: "core",
                index: None,
            },
            format!(
                "core produces {} output(s) for {} equation(s)",
                sys.core().outputs().len(),
                sys.n_eqs()
            ),
        ));
    }

    let (pre_out, pre_bounds) =
        analyze_program(sys.prefix(), "prefix", env, &[], true, &mut report);
    let (outputs, core_bounds) =
        analyze_program(sys.core(), "core", env, &pre_out, false, &mut report);

    if env_is_finite(env) {
        for (k, v) in outputs.iter().enumerate() {
            if v.nonfinite {
                report.push(Diagnostic::new(
                    Severity::Warn,
                    "nonfinite-range",
                    Location::Instr {
                        program: "core",
                        index: None,
                    },
                    format!(
                        "equation {k} may evaluate to NaN/∞ even though every \
                         input range is finite"
                    ),
                ));
            }
        }
    }

    let mut obligations = Vec::with_capacity(2 * N_SITES);
    obligations_for(
        "prefix",
        &pre_bounds,
        sys.prefix().n_regs(),
        &mut obligations,
    );
    obligations_for("core", &core_bounds, sys.core().n_regs(), &mut obligations);
    for ob in &obligations {
        if !ob.proved {
            report.push(Diagnostic::new(
                Severity::Error,
                "unsafe-bound-unproved",
                Location::Instr {
                    program: ob.program,
                    index: None,
                },
                format!(
                    "bounds proof for {} failed: max index {} is not < {}",
                    ob.site, ob.max_index, ob.bound
                ),
            ));
        }
    }

    let tier = sys.tier().name();
    SystemAnalysis {
        report,
        outputs,
        safety: SafetyReport {
            model: model.to_string(),
            tier,
            obligations,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_expr::{Expr, OptOptions};

    fn compile_manual(opts: OptOptions) -> CompiledSystem {
        let eqs: Vec<Expr> = gmr_bio::manual_system().to_vec();
        CompiledSystem::compile_checked(&eqs, 10, 2, opts).expect("manual system compiles")
    }

    #[test]
    fn manual_system_is_clean_at_every_tier() {
        let env = IntervalEnv::river();
        for opts in [
            OptOptions::register(),
            OptOptions::fused(),
            OptOptions::full(),
            OptOptions::threaded(),
            OptOptions::simd(),
        ] {
            let sys = compile_manual(opts);
            let analysis = analyze_system(&sys, &env, "table5-manual");
            assert!(
                analysis.report.diagnostics.is_empty(),
                "{opts:?}:\n{}",
                analysis.report.render_human()
            );
            assert!(analysis.safety.proved());
            assert_eq!(analysis.outputs.len(), 2);
            for (k, v) in analysis.outputs.iter().enumerate() {
                assert!(!v.nonfinite, "eq{k} nonfinite: {:?}", v.iv);
            }
        }
    }

    #[test]
    fn safety_report_json_parses_and_is_stable() {
        let sys = compile_manual(OptOptions::full());
        let analysis = analyze_system(&sys, &IntervalEnv::river(), "table5-manual");
        let json = analysis.safety.render_json();
        let v = gmr_json::parse(&json).expect("safety JSON parses strictly");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("gmr-safety/v1")
        );
        assert_eq!(v.get("proved"), Some(&gmr_json::Value::Bool(true)));
        assert_eq!(
            v.get("obligations")
                .and_then(|o| o.as_arr())
                .map(|a| a.len()),
            Some(14)
        );
        // Deterministic: a second analysis renders byte-identically.
        let again = analyze_system(&sys, &IntervalEnv::river(), "table5-manual");
        assert_eq!(json, again.safety.render_json());
    }

    #[test]
    fn corrupted_prefix_state_load_is_an_error() {
        use gmr_expr::{RInstr, RegProgram};
        let sys = compile_manual(OptOptions::full());
        assert!(sys.n_pre() > 0, "manual system hoists a prefix");
        let mut code = sys.prefix().instructions().to_vec();
        let dst = code.last().expect("prefix nonempty").dst();
        code.push(RInstr::LoadState { dst, idx: 0 });
        let corrupt_prefix = RegProgram::from_raw_unchecked(
            code,
            sys.prefix().consts().to_vec(),
            0,
            sys.prefix().n_regs() as u16,
            sys.prefix().outputs().to_vec(),
            sys.prefix().needs_vars(),
            0,
        );
        let corrupt = CompiledSystem::from_raw_parts(
            corrupt_prefix,
            sys.core().clone(),
            sys.n_eqs(),
            sys.options(),
        );
        let analysis = analyze_system(&corrupt, &IntervalEnv::river(), "corrupt");
        assert!(!analysis.report.is_clean());
        assert!(analysis
            .report
            .diagnostics
            .iter()
            .any(|d| d.rule == "prefix-state-load" && d.severity == Severity::Error));
    }

    #[test]
    fn oob_register_fails_the_bounds_proof() {
        use gmr_expr::{RInstr, RegProgram};
        let sys = compile_manual(OptOptions::full());
        let mut code = sys.core().instructions().to_vec();
        // Point the first instruction's destination far outside the file.
        let oob = sys.core().n_regs() as u16 + 100;
        if let Some(first) = code.first_mut() {
            *first = RInstr::LoadVar { dst: oob, idx: 0 };
        }
        let corrupt_core = RegProgram::from_raw_unchecked(
            code,
            sys.core().consts().to_vec(),
            sys.core().n_pre() as u16,
            sys.core().n_regs() as u16,
            sys.core().outputs().to_vec(),
            sys.core().needs_vars(),
            sys.core().needs_states(),
        );
        let corrupt = CompiledSystem::from_raw_parts(
            sys.prefix().clone(),
            corrupt_core,
            sys.n_eqs(),
            sys.options(),
        );
        let analysis = analyze_system(&corrupt, &IntervalEnv::river(), "corrupt");
        assert!(!analysis.report.is_clean());
        assert!(!analysis.safety.proved());
        assert!(analysis
            .report
            .diagnostics
            .iter()
            .any(|d| d.rule == "reg-out-of-bounds"));
        assert!(analysis
            .report
            .diagnostics
            .iter()
            .any(|d| d.rule == "unsafe-bound-unproved"));
    }

    #[test]
    fn unconstrained_env_analyzes_without_false_errors() {
        // A non-river arity: 3 vars, 1 state.
        let eq = Expr::bin(
            gmr_expr::BinOp::Mul,
            Expr::Var(2),
            Expr::bin(gmr_expr::BinOp::Add, Expr::State(0), Expr::Num(1.0)),
        );
        let sys =
            CompiledSystem::compile_checked(&[eq], 3, 1, OptOptions::full()).expect("compiles");
        let env = env_for_arity(3, 1);
        let analysis = analyze_system(&sys, &env, "tiny");
        assert!(
            analysis.report.is_clean(),
            "{}",
            analysis.report.render_human()
        );
        // Inputs at ⊤ mean the output is ⊤ — but that is not a warning
        // (the env is not finite, so nothing claims finiteness).
        assert_eq!(analysis.report.diagnostics.len(), 0);
    }
}
