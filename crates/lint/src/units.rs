//! Units with rational exponents, parsed from the compact notation of
//! Tables III and IV (`"ug L^-1"`, `"MJ m^-2 d^-1"`, `"degC^-2"`, `"-"`).
//!
//! A [`Unit`] is a vector of rational exponents over six base dimensions
//! (mass, length, time, temperature, energy, conductance) plus a
//! power-of-ten scale. Metric prefixes and the litre fold into the scale
//! (`L = 10^-3 m^3`, `ug = 10^-6 g`), so `"ug L^-1"` and `"mg L^-1"` share
//! a dimension vector and differ only in scale — which is exactly the
//! distinction the dimensional lints need: adding quantities of different
//! *dimension* is meaningless, adding the same dimension at different
//! *scale* is a silent factor-of-1000 bug.

use std::fmt;

/// A reduced rational number. Denominator is always positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    /// Numerator (sign carrier).
    pub num: i64,
    /// Denominator, > 0.
    pub den: i64,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

impl Ratio {
    /// The rational `num/den`, reduced. Panics on a zero denominator.
    pub fn new(num: i64, den: i64) -> Ratio {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };

    /// An integer as a ratio.
    pub fn int(n: i64) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// True when zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// The nearest rational with a small denominator (≤ 12) to a float, if
    /// one is within `1e-9`. Lets `pow(x, 2.0)` and `pow(x, 0.5)` take part
    /// in dimensional inference.
    pub fn approx(v: f64) -> Option<Ratio> {
        if !v.is_finite() {
            return None;
        }
        for den in 1..=12i64 {
            let num = (v * den as f64).round();
            if num.abs() > 1e6 {
                return None;
            }
            if (num / den as f64 - v).abs() < 1e-9 {
                return Some(Ratio::new(num as i64, den));
            }
        }
        None
    }
}

impl std::ops::Add for Ratio {
    type Output = Ratio;
    fn add(self, o: Ratio) -> Ratio {
        Ratio::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }
}

impl std::ops::Sub for Ratio {
    type Output = Ratio;
    fn sub(self, o: Ratio) -> Ratio {
        self + (-o)
    }
}

impl std::ops::Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl std::ops::Mul for Ratio {
    type Output = Ratio;
    fn mul(self, o: Ratio) -> Ratio {
        Ratio::new(self.num * o.num, self.den * o.den)
    }
}

impl fmt::Display for Ratio {
    // Integers render bare, fractions as `num/den`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Number of base dimensions.
pub const NDIMS: usize = 6;

/// Base-dimension names, indexing [`Unit::dims`]: gram, metre, day,
/// degree-Celsius, joule, siemens.
pub const DIM_NAMES: [&str; NDIMS] = ["g", "m", "d", "degC", "J", "S"];

const DIM_G: usize = 0;
const DIM_M: usize = 1;
const DIM_D: usize = 2;
const DIM_K: usize = 3;
const DIM_J: usize = 4;
const DIM_S: usize = 5;

/// A physical unit: rational exponents over the base dimensions and a
/// power-of-ten scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Unit {
    /// Exponent per base dimension (order of [`DIM_NAMES`]).
    pub dims: [Ratio; NDIMS],
    /// Power-of-ten scale (e.g. `-6` for a bare `ug` relative to `g`).
    pub pow10: Ratio,
}

/// Failure to parse a unit string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitParseError {
    /// The atom that did not parse.
    pub atom: String,
}

impl fmt::Display for UnitParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unparseable unit atom '{}'", self.atom)
    }
}

impl std::error::Error for UnitParseError {}

impl Unit {
    /// The dimensionless unit with unit scale.
    pub const DIMENSIONLESS: Unit = Unit {
        dims: [Ratio::ZERO; NDIMS],
        pow10: Ratio::ZERO,
    };

    /// True when every dimension exponent is zero (scale may differ).
    pub fn is_dimensionless(&self) -> bool {
        self.dims.iter().all(|r| r.is_zero())
    }

    /// Same dimension vector, ignoring scale.
    pub fn same_dimension(&self, o: &Unit) -> bool {
        self.dims == o.dims
    }

    /// Product of units.
    pub fn mul(&self, o: &Unit) -> Unit {
        let mut dims = self.dims;
        for (d, &o) in dims.iter_mut().zip(&o.dims) {
            *d = *d + o;
        }
        Unit {
            dims,
            pow10: self.pow10 + o.pow10,
        }
    }

    /// Quotient of units.
    pub fn div(&self, o: &Unit) -> Unit {
        self.mul(&o.powr(Ratio::int(-1)))
    }

    /// Raise to a rational power.
    pub fn powr(&self, e: Ratio) -> Unit {
        let mut dims = self.dims;
        for d in &mut dims {
            *d = *d * e;
        }
        Unit {
            dims,
            pow10: self.pow10 * e,
        }
    }

    /// Parse the compact table notation: whitespace-separated atoms
    /// `[prefix]base[^exp]`, with `-` alone denoting dimensionless.
    pub fn parse(s: &str) -> Result<Unit, UnitParseError> {
        let s = s.trim();
        if s.is_empty() || s == "-" {
            return Ok(Unit::DIMENSIONLESS);
        }
        let mut unit = Unit::DIMENSIONLESS;
        for atom in s.split_whitespace() {
            unit = unit.mul(&parse_atom(atom)?);
        }
        Ok(unit)
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if !self.pow10.is_zero() {
            write!(f, "10^{}", self.pow10)?;
            wrote = true;
        }
        for (i, e) in self.dims.iter().enumerate() {
            if e.is_zero() {
                continue;
            }
            if wrote {
                f.write_str(" ")?;
            }
            if e.num == 1 && e.den == 1 {
                write!(f, "{}", DIM_NAMES[i])?;
            } else {
                write!(f, "{}^{}", DIM_NAMES[i], e)?;
            }
            wrote = true;
        }
        if !wrote {
            f.write_str("1")?;
        }
        Ok(())
    }
}

/// One base symbol as (dimension index or None for litre, extra pow10,
/// extra m^3 marker).
fn base_unit(sym: &str) -> Option<Unit> {
    let mut u = Unit::DIMENSIONLESS;
    match sym {
        "g" => u.dims[DIM_G] = Ratio::int(1),
        "m" => u.dims[DIM_M] = Ratio::int(1),
        "d" | "day" => u.dims[DIM_D] = Ratio::int(1),
        "degC" => u.dims[DIM_K] = Ratio::int(1),
        "J" => u.dims[DIM_J] = Ratio::int(1),
        "S" => u.dims[DIM_S] = Ratio::int(1),
        // Litre = 10^-3 m^3.
        "L" => {
            u.dims[DIM_M] = Ratio::int(3);
            u.pow10 = Ratio::int(-3);
        }
        _ => return None,
    }
    Some(u)
}

fn prefix_pow10(p: char) -> Option<i64> {
    Some(match p {
        'u' => -6, // micro (µ written as ASCII u in the tables)
        'n' => -9,
        'm' => -3, // milli — never reached by a bare "m", which is the metre
        'c' => -2,
        'k' => 3,
        'M' => 6,
        'G' => 9,
        _ => return None,
    })
}

fn parse_atom(atom: &str) -> Result<Unit, UnitParseError> {
    let err = || UnitParseError {
        atom: atom.to_string(),
    };
    let (body, exp) = match atom.split_once('^') {
        Some((b, e)) => {
            let e: i64 = e.parse().map_err(|_| err())?;
            (b, Ratio::int(e))
        }
        None => (atom, Ratio::int(1)),
    };
    // Exact base symbols win over prefix decompositions, so that "m" is the
    // metre (not milli-something) and "day" is a day.
    let base = base_unit(body).or_else(|| {
        let mut chars = body.chars();
        let p = chars.next()?;
        let rest = chars.as_str();
        let pow = prefix_pow10(p)?;
        let mut u = base_unit(rest)?;
        u.pow10 = u.pow10 + Ratio::int(pow);
        // A prefixed "day" ("mday"?) is noise, not a unit.
        (rest != "day").then_some(u)
    });
    Ok(base.ok_or_else(err)?.powr(exp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_arithmetic_reduces() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(1, -2), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(1, 2) + Ratio::new(1, 3), Ratio::new(5, 6));
        assert_eq!(Ratio::new(1, 2) * Ratio::int(4), Ratio::int(2));
        assert!((Ratio::int(3) - Ratio::int(3)).is_zero());
    }

    #[test]
    fn ratio_approx_recognises_small_fractions() {
        assert_eq!(Ratio::approx(2.0), Some(Ratio::int(2)));
        assert_eq!(Ratio::approx(0.5), Some(Ratio::new(1, 2)));
        assert_eq!(Ratio::approx(-1.0 / 3.0), Some(Ratio::new(-1, 3)));
        assert_eq!(Ratio::approx(0.123456789), None);
        assert_eq!(Ratio::approx(f64::NAN), None);
    }

    #[test]
    fn parses_every_table_unit() {
        for s in [
            "day^-1",
            "ug L^-1",
            "degC",
            "MJ m^-2 d^-1",
            "mg L^-1",
            "-",
            "degC^-2",
            "uS cm^-1",
            "m",
        ] {
            Unit::parse(s).unwrap_or_else(|e| panic!("'{s}': {e}"));
        }
    }

    #[test]
    fn ug_and_mg_share_dimension_but_not_scale() {
        let ug = Unit::parse("ug L^-1").unwrap();
        let mg = Unit::parse("mg L^-1").unwrap();
        assert!(ug.same_dimension(&mg));
        assert_ne!(ug, mg);
        assert_eq!(ug.pow10, Ratio::int(-3)); // 10^-6 g / 10^-3 m^3
        assert_eq!(mg.pow10, Ratio::int(0));
    }

    #[test]
    fn concentration_dims() {
        // g m^-3 with a scale.
        let u = Unit::parse("mg L^-1").unwrap();
        assert_eq!(u.dims[DIM_G], Ratio::int(1));
        assert_eq!(u.dims[DIM_M], Ratio::int(-3));
        assert_eq!(u.dims[DIM_D], Ratio::ZERO);
    }

    #[test]
    fn mul_div_pow_roundtrip() {
        let rate = Unit::parse("day^-1").unwrap();
        let conc = Unit::parse("ug L^-1").unwrap();
        let flux = conc.mul(&rate);
        assert_eq!(flux.div(&rate), conc);
        assert_eq!(rate.powr(Ratio::int(-1)).mul(&rate), Unit::DIMENSIONLESS);
        let sq = Unit::parse("degC").unwrap().powr(Ratio::int(2));
        assert_eq!(sq, Unit::parse("degC^2").unwrap());
    }

    #[test]
    fn dimensionless_variants() {
        assert!(Unit::parse("-").unwrap().is_dimensionless());
        assert!(Unit::parse("").unwrap().is_dimensionless());
        assert_eq!(Unit::parse("-").unwrap(), Unit::DIMENSIONLESS);
    }

    #[test]
    fn bad_atoms_are_rejected() {
        assert!(Unit::parse("parsec").is_err());
        assert!(Unit::parse("m^x").is_err());
        assert!(Unit::parse("qg").is_err());
    }

    #[test]
    fn display_is_readable() {
        let u = Unit::parse("MJ m^-2 d^-1").unwrap();
        let s = u.to_string();
        assert!(s.contains("J"), "{s}");
        assert!(s.contains("m^-2"), "{s}");
        assert_eq!(Unit::DIMENSIONLESS.to_string(), "1");
    }
}
