//! Grammar-level lints.
//!
//! Two layers:
//!
//! * [`grammar_diagnostics`] grades the formalism-agnostic structural notes
//!   from `gmr_tag::analysis` (reachability, dead pools, inert adjunction
//!   sites, operator lexemes) into levelled diagnostics;
//! * [`river_discipline_diagnostics`] checks the river grammar's
//!   connector/extender discipline against Table II: a β-tree rooted at an
//!   `ExtC_k` symbol must use that extension's connector operator and wrap
//!   its new material under `ExtE_k`; a β-tree rooted at `ExtE_k` must use
//!   an admitted extender operator and must never reach back into a marked
//!   site; the `V_k` lexeme pool must only hold Table II's admissible
//!   variables. Violations mean the search can produce revisions the domain
//!   expert never sanctioned, so they are errors.

use crate::diag::{Diagnostic, Location, Report, Severity};
use gmr_bio::extensions::{ExtOp, ExtensionSpec, EXTENSIONS};
use gmr_tag::tree::NodeKind;
use gmr_tag::{ElemTree, Grammar, GrammarNote, SymId, Token};

/// Grade the structural analysis of a grammar into diagnostics.
///
/// * `non-operand-lexeme` → Error — lowering any derivation that draws the
///   token fails, so the grammar can generate invalid individuals.
/// * `unreachable-tree`, `dead-pool` → Warn — encoded knowledge is inert.
/// * `inert-adjunction-site` → Info — often deliberate (the river grammar
///   keeps plain `Exp` nodes untouchable by construction).
pub fn grammar_diagnostics(grammar: &Grammar) -> Report {
    let mut report = Report::new();
    for note in grammar.analyze() {
        let d = match note {
            GrammarNote::NonOperandLexeme { name, token, .. } => Diagnostic::new(
                Severity::Error,
                "non-operand-lexeme",
                Location::Symbol(name),
                format!("pool holds operator token {token}; restricted substitution can never ground it"),
            ),
            GrammarNote::UnreachableTree { name, .. } => Diagnostic::new(
                Severity::Warn,
                "unreachable-tree",
                Location::Tree(name),
                "no derivation can ever use this elementary tree".to_string(),
            ),
            GrammarNote::DeadPool { name, tokens, .. } => Diagnostic::new(
                Severity::Warn,
                "dead-pool",
                Location::Symbol(name),
                format!("{tokens} lexeme(s) registered for a symbol no reachable tree substitutes"),
            ),
            GrammarNote::InertAdjunctionSite { name, sites, .. } => Diagnostic::new(
                Severity::Info,
                "inert-adjunction-site",
                Location::Symbol(name),
                format!("{sites} adjunction site(s) but no auxiliary tree roots here"),
            ),
        };
        report.push(d);
    }
    report
}

/// Parse a symbol named `<prefix><digits>` into its extension id.
fn ext_id(name: &str, prefix: &str) -> Option<u8> {
    name.strip_prefix(prefix)?.parse().ok()
}

fn anchored_ops(tree: &ElemTree) -> Vec<ExtOp> {
    tree.nodes
        .iter()
        .filter_map(|n| match n.kind {
            NodeKind::Anchor(Token::Bin(op)) => Some(ExtOp::Bin(op)),
            NodeKind::Anchor(Token::Un(op)) => Some(ExtOp::Un(op)),
            _ => None,
        })
        .collect()
}

fn op_name(op: ExtOp) -> String {
    match op {
        ExtOp::Bin(b) => format!("'{}'", b.symbol()),
        ExtOp::Un(u) => format!("'{}'", u.symbol()),
    }
}

fn check_connector(report: &mut Report, grammar: &Grammar, spec: &ExtensionSpec, tree: &ElemTree) {
    // The connector operator must be Table II's, exactly.
    for op in anchored_ops(tree) {
        if op != ExtOp::Bin(spec.connector) {
            report.push(Diagnostic::new(
                Severity::Error,
                "connector-op-mismatch",
                Location::Tree(tree.name.clone()),
                format!(
                    "connector for Ext{} must use '{}', found {}",
                    spec.id,
                    spec.connector.symbol(),
                    op_name(op)
                ),
            ));
        }
    }
    // New material must grow under the ExtE_k wrap, not directly — otherwise
    // the "greater freedom to extenders" discipline is lost.
    let exte_name = format!("ExtE{}", spec.id);
    let wraps = tree
        .nodes
        .iter()
        .any(|n| matches!(n.kind, NodeKind::Interior(s) if grammar.symbol_name(s) == exte_name));
    if !wraps {
        report.push(Diagnostic::new(
            Severity::Error,
            "connector-missing-extender-wrap",
            Location::Tree(tree.name.clone()),
            format!(
                "connector for Ext{} does not wrap its material under {exte_name}",
                spec.id
            ),
        ));
    }
}

fn check_extender(report: &mut Report, grammar: &Grammar, spec: &ExtensionSpec, tree: &ElemTree) {
    for op in anchored_ops(tree) {
        if !spec.extenders.contains(&op) {
            report.push(Diagnostic::new(
                Severity::Error,
                "extender-op-mismatch",
                Location::Tree(tree.name.clone()),
                format!(
                    "extender for Ext{} uses {} which Table II does not admit",
                    spec.id,
                    op_name(op)
                ),
            ));
        }
    }
    // An extender reaching back into a marked site would let revisions
    // rewrite the initial process.
    for node in &tree.nodes {
        if let NodeKind::Interior(s) = node.kind {
            if ext_id(grammar.symbol_name(s), "ExtC").is_some() {
                report.push(Diagnostic::new(
                    Severity::Error,
                    "extender-touches-marked-site",
                    Location::Tree(tree.name.clone()),
                    format!(
                        "extender for Ext{} contains marked-site symbol '{}'",
                        spec.id,
                        grammar.symbol_name(s)
                    ),
                ));
            }
        }
    }
}

fn check_pool(report: &mut Report, grammar: &Grammar, spec: &ExtensionSpec, sym: SymId) {
    for tok in grammar.pool(sym) {
        let admitted = spec.variables.iter().any(|v| match (v, tok) {
            (Token::Param { kind: a, .. }, Token::Param { kind: b, .. }) => a == b,
            (a, b) => a == b,
        });
        if !admitted {
            report.push(Diagnostic::new(
                Severity::Error,
                "inadmissible-lexeme",
                Location::Symbol(grammar.symbol_name(sym).to_string()),
                format!(
                    "pool for Ext{} holds a lexeme Table II does not admit: {tok:?}",
                    spec.id
                ),
            ));
        }
    }
}

/// Check the connector/extender discipline of a river-style grammar.
///
/// The checks key off the `ExtC<k>` / `ExtE<k>` / `V<k>` symbol-naming
/// convention of `gmr_bio::grammar::river_grammar`, so the function accepts
/// any [`Grammar`] (tests build small adversarial ones).
pub fn river_discipline_diagnostics(grammar: &Grammar) -> Report {
    let mut report = Report::new();
    for i in 0..grammar.symbol_count() {
        let sym = SymId(i as u16);
        let name = grammar.symbol_name(sym).to_string();

        if let Some(k) = ext_id(&name, "ExtC") {
            let Some(spec) = EXTENSIONS.get(k) else {
                report.push(Diagnostic::new(
                    Severity::Warn,
                    "unknown-extension",
                    Location::Symbol(name.clone()),
                    format!("symbol refers to Ext{k}, which Table II does not define"),
                ));
                continue;
            };
            let betas = grammar.betas_for(sym);
            if betas.len() > 1 {
                report.push(Diagnostic::new(
                    Severity::Warn,
                    "multiple-connectors",
                    Location::Symbol(name.clone()),
                    format!(
                        "{} connector trees root at Ext{k}; the discipline expects one",
                        betas.len()
                    ),
                ));
            }
            for id in betas {
                check_connector(&mut report, grammar, &spec, grammar.tree(*id));
            }
        } else if let Some(k) = ext_id(&name, "ExtE") {
            if let Some(spec) = EXTENSIONS.get(k) {
                for id in grammar.betas_for(sym) {
                    check_extender(&mut report, grammar, &spec, grammar.tree(*id));
                }
            }
        } else if let Some(k) = ext_id(&name, "V") {
            if let Some(spec) = EXTENSIONS.get(k) {
                check_pool(&mut report, grammar, &spec, sym);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_bio::river_grammar;
    use gmr_expr::{BinOp, UnOp};
    use gmr_hydro::vars::{VCD, VTMP};
    use gmr_tag::tree::ElemTreeBuilder;
    use gmr_tag::{GrammarBuilder, TreeKind};

    #[test]
    fn river_grammar_is_clean() {
        let rg = river_grammar();
        let structural = grammar_diagnostics(&rg.grammar);
        // The only expected structural findings are the deliberately inert
        // plain-Exp/S adjunction sites (Info).
        assert!(structural.is_clean(), "{}", structural.render_human());
        assert_eq!(
            structural.count(Severity::Warn),
            0,
            "{}",
            structural.render_human()
        );
        let discipline = river_discipline_diagnostics(&rg.grammar);
        assert!(
            discipline.diagnostics.is_empty(),
            "{}",
            discipline.render_human()
        );
    }

    /// A minimal grammar mimicking one river extension point, with hooks to
    /// seed violations.
    fn ext1_grammar(
        connector_op: BinOp,
        wrap_exte: bool,
        extender_op: BinOp,
        pool_var: u8,
    ) -> Grammar {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let extc = gb.sym("ExtC1");
        let exte = gb.sym("ExtE1");
        let v = gb.sym("V1");
        gb.start(s);

        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        let c = a.interior(r, extc);
        a.anchor(c, Token::Num(1.0));
        gb.tree(a.build().unwrap());

        let mut cb = ElemTreeBuilder::new("ext1-connector", TreeKind::Auxiliary, extc);
        let r = cb.root();
        cb.foot(r, extc);
        cb.anchor(r, Token::Bin(connector_op));
        if wrap_exte {
            let w = cb.interior(r, exte);
            cb.subst(w, v);
        } else {
            cb.subst(r, v);
        }
        gb.tree(cb.build().unwrap());

        let mut eb = ElemTreeBuilder::new("ext1-extender", TreeKind::Auxiliary, exte);
        let r = eb.root();
        eb.foot(r, exte);
        eb.anchor(r, Token::Bin(extender_op));
        eb.subst(r, v);
        gb.tree(eb.build().unwrap());

        gb.pool(v, [Token::Var(pool_var)]);
        gb.build().unwrap()
    }

    #[test]
    fn clean_ext1_fixture_passes() {
        // Ext1's connector is +; Vcd is admissible; * is an admitted extender.
        let g = ext1_grammar(BinOp::Add, true, BinOp::Mul, VCD);
        let report = river_discipline_diagnostics(&g);
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn wrong_connector_op_is_an_error() {
        // Ext1 connects with +, not *.
        let g = ext1_grammar(BinOp::Mul, true, BinOp::Mul, VCD);
        let report = river_discipline_diagnostics(&g);
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.diagnostics[0].rule, "connector-op-mismatch");
    }

    #[test]
    fn missing_extender_wrap_is_an_error() {
        let g = ext1_grammar(BinOp::Add, false, BinOp::Mul, VCD);
        let report = river_discipline_diagnostics(&g);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "connector-missing-extender-wrap" && d.severity == Severity::Error));
    }

    #[test]
    fn inadmissible_pool_variable_is_an_error() {
        // Vtmp is not in Ext1's Table II row.
        let g = ext1_grammar(BinOp::Add, true, BinOp::Mul, VTMP);
        let report = river_discipline_diagnostics(&g);
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.diagnostics[0].rule, "inadmissible-lexeme");
    }

    #[test]
    fn extender_reaching_marked_site_is_an_error() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let extc = gb.sym("ExtC1");
        let exte = gb.sym("ExtE1");
        let v = gb.sym("V1");
        gb.start(s);
        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        let c = a.interior(r, extc);
        a.anchor(c, Token::Num(1.0));
        gb.tree(a.build().unwrap());
        // A malicious extender that re-introduces a marked site.
        let mut eb = ElemTreeBuilder::new("evil-extender", TreeKind::Auxiliary, exte);
        let r = eb.root();
        eb.foot(r, exte);
        eb.anchor(r, Token::Bin(BinOp::Add));
        let back = eb.interior(r, extc);
        eb.subst(back, v);
        gb.tree(eb.build().unwrap());
        gb.pool(v, [Token::Var(VCD)]);
        let g = gb.build().unwrap();
        let report = river_discipline_diagnostics(&g);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "extender-touches-marked-site" && d.severity == Severity::Error));
    }

    #[test]
    fn unary_extenders_are_admitted() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let exte = gb.sym("ExtE5");
        gb.start(s);
        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        let w = a.interior(r, exte);
        a.anchor(w, Token::Num(1.0));
        gb.tree(a.build().unwrap());
        let mut eb = ElemTreeBuilder::new("ext5-extender-log", TreeKind::Auxiliary, exte);
        let r = eb.root();
        eb.anchor(r, Token::Un(UnOp::Log));
        eb.foot(r, exte);
        gb.tree(eb.build().unwrap());
        let g = gb.build().unwrap();
        let report = river_discipline_diagnostics(&g);
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn unknown_extension_id_warns() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let extc = gb.sym("ExtC4"); // Table II skips 4.
        gb.start(s);
        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        let c = a.interior(r, extc);
        a.anchor(c, Token::Num(1.0));
        gb.tree(a.build().unwrap());
        let g = gb.build().unwrap();
        let report = river_discipline_diagnostics(&g);
        assert_eq!(report.count(Severity::Warn), 1);
        assert_eq!(report.diagnostics[0].rule, "unknown-extension");
    }

    #[test]
    fn operator_lexeme_is_graded_error() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let v = gb.sym("V");
        gb.start(s);
        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        a.subst(r, v);
        gb.tree(a.build().unwrap());
        gb.pool(v, [Token::Var(0), Token::Bin(BinOp::Mul)]);
        let g = gb.build().unwrap();
        let report = grammar_diagnostics(&g);
        assert!(!report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "non-operand-lexeme" && d.severity == Severity::Error));
    }

    #[test]
    fn dead_pool_and_unreachable_tree_are_warnings() {
        let mut gb = GrammarBuilder::new();
        let s = gb.sym("S");
        let unused = gb.sym("Unused");
        let ghost = gb.sym("Ghost");
        gb.start(s);
        let mut a = ElemTreeBuilder::new("alpha", TreeKind::Initial, s);
        let r = a.root();
        a.anchor(r, Token::Num(1.0));
        gb.tree(a.build().unwrap());
        let mut b = ElemTreeBuilder::new("ghost-beta", TreeKind::Auxiliary, ghost);
        let r = b.root();
        b.foot(r, ghost);
        b.anchor(r, Token::Bin(BinOp::Add));
        b.anchor(r, Token::Num(2.0));
        gb.tree(b.build().unwrap());
        gb.pool(unused, [Token::Var(0)]);
        let g = gb.build().unwrap();
        let report = grammar_diagnostics(&g);
        assert!(report.is_clean()); // warnings only
        assert_eq!(report.count(Severity::Warn), 2);
        let rules: Vec<_> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"dead-pool"));
        assert!(rules.contains(&"unreachable-tree"));
    }
}
