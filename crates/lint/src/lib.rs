//! Static analysis for GMR grammars and evolved equations.
//!
//! The evolutionary layers of this workspace make sure individuals are
//! *well-formed* (derivation trees validate, lowering succeeds, evaluation
//! is total). This crate checks that they — and the prior knowledge they
//! grow from — are *sensible*:
//!
//! * [`units`] / [`infer`] — **dimensional analysis**: the Table III/IV unit
//!   strings are parsed into rational-exponent unit vectors and propagated
//!   bottom-up through expressions, flagging unit-inconsistent additions and
//!   comparisons, transcendental functions of dimensional quantities, and
//!   silent scale clashes (`ug` vs `mg`);
//! * [`grammar_lints`] — **grammar lints**: unreachable elementary trees,
//!   dead lexeme pools, inert adjunction sites, operator lexemes in operand
//!   pools, and the river grammar's connector/extender discipline checked
//!   against Table II;
//! * [`interval`] — **numeric-domain lints**: interval analysis over the
//!   protected evaluation semantics, flagging divisions whose denominator
//!   range straddles zero, `exp` overflow into the clamp, constants outside
//!   their Table III priors, and simplifiable constant subtrees;
//! * [`absint`] — **bytecode verification**: abstract interpretation over
//!   the compiled register programs of a
//!   [`CompiledSystem`](gmr_expr::CompiledSystem) — interval + non-finite
//!   taint, a state-independence proof for the split tier's prefix,
//!   independent dead-code detection, and machine-checked bounds proofs for
//!   the VM's `unsafe` register accesses (emitted as a
//!   [`SafetyReport`](absint::SafetyReport)).
//!
//! Everything funnels into the [`diag`] framework (severities, node-path
//!   locations, human and JSON rendering). The `gmr-lint` binary runs the
//! whole battery on the built-in river grammar and expert equations.

pub mod absint;
pub mod arity;
pub mod diag;
pub mod grammar_lints;
pub mod infer;
pub mod interval;
pub mod units;

pub use absint::{
    analyze_system, env_for_arity, AbsVal, SafetyObligation, SafetyReport, SystemAnalysis,
};
pub use arity::check_expr_arity;
pub use diag::{Diagnostic, Location, Report, Severity};
pub use grammar_lints::{grammar_diagnostics, river_discipline_diagnostics};
pub use infer::{infer_units, Inferred, Policy, UnitEnv};
pub use interval::{analyze_intervals, Interval, IntervalEnv};
pub use units::{Ratio, Unit};

use gmr_expr::Expr;
use gmr_tag::Grammar;

/// Canonical labels for the two river equations.
pub const EQUATION_LABELS: [&str; 2] = ["dBPhy/dt", "dBZoo/dt"];

/// Run every grammar-level lint: structural analysis plus the river
/// connector/extender discipline.
pub fn lint_grammar(grammar: &Grammar) -> Report {
    let mut report = grammar_diagnostics(grammar);
    report.extend(river_discipline_diagnostics(grammar));
    report
}

/// An equation linter bundling the unit and interval environments with a
/// severity policy, so callers (the CLI, the GP elite hook) lint repeatedly
/// without rebuilding the tables.
#[derive(Debug, Clone)]
pub struct EquationLinter {
    /// Leaf units.
    pub units: UnitEnv,
    /// Leaf value ranges.
    pub intervals: IntervalEnv,
    /// How harshly dimensional findings are graded.
    pub policy: Policy,
}

impl EquationLinter {
    /// The river problem's environments under the given policy.
    pub fn river(policy: Policy) -> EquationLinter {
        EquationLinter {
            units: UnitEnv::river(),
            intervals: IntervalEnv::river(),
            policy,
        }
    }

    /// Lint a system of equations. Equation `i` is labelled with
    /// [`EQUATION_LABELS`] when available, `eq<i>` otherwise.
    pub fn lint(&self, eqs: &[Expr]) -> Report {
        let mut report = Report::new();
        for (i, eq) in eqs.iter().enumerate() {
            let label = EQUATION_LABELS
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("eq{i}"));
            // Arity first: the unit environments double as the name-table
            // arities, and an out-of-range index would previously read a
            // silent 0.0 — now a compile error in the VMs and an Error here.
            report.extend(check_expr_arity(
                eq,
                self.units.vars.len(),
                self.units.states.len(),
                &label,
            ));
            let (_, units) = infer_units(eq, &self.units, self.policy, &label);
            report.extend(units);
            let (_, domain) = analyze_intervals(eq, &self.intervals, &label);
            report.extend(domain);
        }
        report
    }
}

/// Lint the built-in river grammar and the expert equations under the
/// strict policy — the acceptance gate run by CI and the `--builtin` CLI
/// mode. Clean by construction: the expert system is dimensionally
/// consistent and the grammar obeys its own discipline.
pub fn lint_builtin() -> Report {
    let rg = gmr_bio::river_grammar();
    let mut report = lint_grammar(&rg.grammar);
    let eqs = gmr_bio::manual_system();
    report.extend(EquationLinter::river(Policy::Strict).lint(&eqs));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_battery_is_error_free() {
        let report = lint_builtin();
        assert!(report.is_clean(), "{}", report.render_human());
        assert_eq!(report.count(Severity::Warn), 0, "{}", report.render_human());
        // The deliberately inert S/Exp adjunction sites are the only notes.
        assert!(report.count(Severity::Info) > 0);
    }

    #[test]
    fn linter_labels_equations_canonically() {
        let linter = EquationLinter::river(Policy::Revision);
        // BPhy + Vtmp in slot 1 → the label must be dBZoo/dt.
        let bad = Expr::bin(
            gmr_expr::BinOp::Add,
            Expr::State(0),
            Expr::Var(gmr_hydro::vars::VTMP),
        );
        let report = linter.lint(&[Expr::Num(0.0), bad]);
        assert_eq!(report.diagnostics.len(), 1);
        assert!(matches!(
            &report.diagnostics[0].location,
            Location::Expr { equation, .. } if equation == "dBZoo/dt"
        ));
    }

    #[test]
    fn revision_policy_keeps_legal_splices_below_error() {
        // The canonical Ext1 revision: manual flux + Vcd. Legal for the
        // search, dimension-bending, must not be an Error under Revision.
        let [dbphy, dbzoo] = gmr_bio::manual_system();
        let revised = Expr::bin(gmr_expr::BinOp::Add, dbphy, Expr::Var(gmr_hydro::vars::VCD));
        let linter = EquationLinter::river(Policy::Revision);
        let report = linter.lint(&[revised, dbzoo]);
        assert!(report.is_clean(), "{}", report.render_human());
        assert!(report.count(Severity::Warn) > 0);
    }
}
