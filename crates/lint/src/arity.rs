//! Arity lint: every `Var`/`State` index must exist under the name-table
//! arities the equations are evaluated against.
//!
//! Historically the evaluators papered over an out-of-range index with a
//! silent `0.0` read, so a mis-assembled grammar produced *plausible but
//! wrong* dynamics instead of an error. The VMs now enforce arity at
//! compile time ([`gmr_expr::check_arity`]); this lint surfaces the same
//! violation as a static-analysis error with a node-accurate location, so
//! a broken grammar or hand-written revision is caught before any
//! simulation runs.

use crate::diag::{Diagnostic, Location, Report, Severity};
use gmr_expr::Expr;

/// Recursively check `expr` against the arities, appending one error per
/// out-of-range leaf.
fn walk(
    expr: &Expr,
    n_vars: usize,
    n_states: usize,
    equation: &str,
    path: &mut Vec<u8>,
    report: &mut Report,
) {
    match expr {
        Expr::Num(_) | Expr::Param(_) => {}
        Expr::Var(i) => {
            if (*i as usize) >= n_vars {
                report.push(Diagnostic::new(
                    Severity::Error,
                    "var-out-of-range",
                    Location::Expr {
                        equation: equation.to_string(),
                        path: path.clone(),
                    },
                    format!(
                        "temporal variable index {i} out of range: the name table \
                         provides {n_vars} variable(s)"
                    ),
                ));
            }
        }
        Expr::State(i) => {
            if (*i as usize) >= n_states {
                report.push(Diagnostic::new(
                    Severity::Error,
                    "state-out-of-range",
                    Location::Expr {
                        equation: equation.to_string(),
                        path: path.clone(),
                    },
                    format!(
                        "state variable index {i} out of range: the name table \
                         provides {n_states} state(s)"
                    ),
                ));
            }
        }
        Expr::Unary(_, a) => {
            path.push(0);
            walk(a, n_vars, n_states, equation, path, report);
            path.pop();
        }
        Expr::Binary(_, a, b) => {
            path.push(0);
            walk(a, n_vars, n_states, equation, path, report);
            path.pop();
            path.push(1);
            walk(b, n_vars, n_states, equation, path, report);
            path.pop();
        }
    }
}

/// Lint one equation's leaf indices against the given arities.
pub fn check_expr_arity(expr: &Expr, n_vars: usize, n_states: usize, equation: &str) -> Report {
    let mut report = Report::new();
    let mut path = Vec::new();
    walk(expr, n_vars, n_states, equation, &mut path, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_expr::BinOp;

    #[test]
    fn in_range_indices_are_clean() {
        let e = Expr::bin(BinOp::Add, Expr::Var(1), Expr::State(0));
        assert!(check_expr_arity(&e, 2, 1, "eq0").diagnostics.is_empty());
    }

    #[test]
    fn out_of_range_var_is_an_error_with_path() {
        let e = Expr::bin(BinOp::Add, Expr::Num(1.0), Expr::Var(5));
        let report = check_expr_arity(&e, 2, 1, "dBPhy/dt");
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.rule, "var-out-of-range");
        assert_eq!(
            d.location,
            Location::Expr {
                equation: "dBPhy/dt".into(),
                path: vec![1],
            }
        );
    }

    #[test]
    fn out_of_range_state_is_an_error() {
        let e = Expr::un(gmr_expr::UnOp::Neg, Expr::State(2));
        let report = check_expr_arity(&e, 0, 2, "eq0");
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, "state-out-of-range");
    }
}
