//! Bottom-up dimensional inference over expression trees.
//!
//! Every leaf gets a unit from a [`UnitEnv`] (parameters from Table III,
//! temporal variables from Table IV, states from the biomass convention);
//! numeric literals are *polymorphic* — a bare `1.0` may stand for a count,
//! a threshold in the surrounding unit, or a scale factor, so it unifies
//! with anything. Units then propagate upward: `×`/`÷` combine exponent
//! vectors, `+ − min max` demand agreement, `log`/`exp` demand (and yield)
//! dimensionless arguments, `pow` needs a constant rational exponent.
//!
//! Disagreements become diagnostics. Under [`Policy::Strict`] a *dimension*
//! clash is an `Error` (the expert equations must be consistent — that they
//! are is an acceptance gate of this crate); under [`Policy::Revision`] it
//! is a `Warn`, because the paper's revisions deliberately splice empirical
//! terms (`… + Vcd`) whose units do not match the host equation — worth
//! surfacing, not worth rejecting.

use crate::diag::{Diagnostic, Location, Report, Severity};
use crate::units::{Ratio, Unit};
use gmr_expr::{BinOp, Expr, UnOp};

/// How harshly dimensional findings are graded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Expert-equation mode: dimension clashes are errors.
    Strict,
    /// Evolved-model mode: dimension clashes are warnings.
    Revision,
}

impl Policy {
    fn mismatch(self) -> Severity {
        match self {
            Policy::Strict => Severity::Error,
            Policy::Revision => Severity::Warn,
        }
    }
    fn scale_mismatch(self) -> Severity {
        match self {
            Policy::Strict => Severity::Warn,
            Policy::Revision => Severity::Info,
        }
    }
    fn transcendental(self) -> Severity {
        match self {
            Policy::Strict => Severity::Warn,
            Policy::Revision => Severity::Info,
        }
    }
}

/// Leaf-unit assignments.
#[derive(Debug, Clone)]
pub struct UnitEnv {
    /// Unit per temporal-variable index.
    pub vars: Vec<Unit>,
    /// Unit per state-variable index.
    pub states: Vec<Unit>,
    /// Unit per parameter kind.
    pub params: Vec<Unit>,
}

impl UnitEnv {
    /// The river problem's environment: Table IV variable units, Table III
    /// parameter units, `ug L^-1` biomass states.
    pub fn river() -> UnitEnv {
        let parse =
            |s: &str| Unit::parse(s).unwrap_or_else(|e| panic!("table unit '{s}' must parse: {e}"));
        UnitEnv {
            vars: gmr_hydro::vars::UNITS.iter().map(|s| parse(s)).collect(),
            states: gmr_bio::params::STATE_UNITS
                .iter()
                .map(|s| parse(s))
                .collect(),
            params: gmr_bio::params::PARAMS
                .iter()
                .map(|p| parse(p.unit))
                .collect(),
        }
    }
}

/// The inferred unit of a subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inferred {
    /// A definite unit.
    Known(Unit),
    /// A numeric literal — unifies with any unit.
    Any,
    /// Indeterminate (out-of-range leaf index, or downstream of a reported
    /// conflict). Produces no further diagnostics.
    Unknown,
}

impl Inferred {
    /// The unit if definitely known.
    pub fn unit(self) -> Option<Unit> {
        match self {
            Inferred::Known(u) => Some(u),
            _ => None,
        }
    }
}

struct Ctx<'a> {
    env: &'a UnitEnv,
    policy: Policy,
    equation: &'a str,
    report: Report,
    path: Vec<u8>,
}

impl Ctx<'_> {
    fn here(&self) -> Location {
        Location::Expr {
            equation: self.equation.to_string(),
            path: self.path.clone(),
        }
    }

    fn diag(&mut self, severity: Severity, rule: &'static str, message: String) {
        let loc = self.here();
        self.report
            .push(Diagnostic::new(severity, rule, loc, message));
    }

    /// Unify the operands of an additive/comparative operator.
    fn unify_additive(&mut self, op: BinOp, l: Inferred, r: Inferred) -> Inferred {
        match (l, r) {
            (Inferred::Known(a), Inferred::Known(b)) => {
                if a == b {
                    Inferred::Known(a)
                } else if a.same_dimension(&b) {
                    self.diag(
                        self.policy.scale_mismatch(),
                        "unit-scale-mismatch",
                        format!(
                            "operands of '{}' share a dimension but differ in scale: {a} vs {b}",
                            op.symbol()
                        ),
                    );
                    Inferred::Known(a)
                } else {
                    self.diag(
                        self.policy.mismatch(),
                        "unit-mismatch",
                        format!(
                            "operands of '{}' have incompatible units: {a} vs {b}",
                            op.symbol()
                        ),
                    );
                    Inferred::Unknown
                }
            }
            (Inferred::Known(a), Inferred::Any) | (Inferred::Any, Inferred::Known(a)) => {
                Inferred::Known(a)
            }
            (Inferred::Any, Inferred::Any) => Inferred::Any,
            _ => Inferred::Unknown,
        }
    }

    fn infer(&mut self, e: &Expr) -> Inferred {
        match e {
            Expr::Num(_) => Inferred::Any,
            Expr::Param(p) => match self.env.params.get(p.kind as usize) {
                Some(u) => Inferred::Known(*u),
                None => Inferred::Unknown,
            },
            Expr::Var(i) => match self.env.vars.get(*i as usize) {
                Some(u) => Inferred::Known(*u),
                None => Inferred::Unknown,
            },
            Expr::State(i) => match self.env.states.get(*i as usize) {
                Some(u) => Inferred::Known(*u),
                None => Inferred::Unknown,
            },
            Expr::Unary(op, a) => {
                self.path.push(0);
                let ia = self.infer(a);
                self.path.pop();
                match op {
                    UnOp::Neg => ia,
                    UnOp::Log | UnOp::Exp => {
                        if let Inferred::Known(u) = ia {
                            if !u.is_dimensionless() {
                                self.diag(
                                    self.policy.transcendental(),
                                    "transcendental-of-dimensional",
                                    format!("argument of '{}' carries units: {u}", op.symbol()),
                                );
                            }
                        }
                        match ia {
                            Inferred::Unknown => Inferred::Unknown,
                            _ => Inferred::Known(Unit::DIMENSIONLESS),
                        }
                    }
                }
            }
            Expr::Binary(op, l, r) => {
                self.path.push(0);
                let il = self.infer(l);
                self.path.pop();
                self.path.push(1);
                let ir = self.infer(r);
                self.path.pop();
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Min | BinOp::Max => {
                        self.unify_additive(*op, il, ir)
                    }
                    BinOp::Mul => match (il, ir) {
                        (Inferred::Known(a), Inferred::Known(b)) => Inferred::Known(a.mul(&b)),
                        (Inferred::Known(a), Inferred::Any)
                        | (Inferred::Any, Inferred::Known(a)) => Inferred::Known(a),
                        (Inferred::Any, Inferred::Any) => Inferred::Any,
                        _ => Inferred::Unknown,
                    },
                    BinOp::Div => match (il, ir) {
                        (Inferred::Known(a), Inferred::Known(b)) => Inferred::Known(a.div(&b)),
                        (Inferred::Known(a), Inferred::Any) => Inferred::Known(a),
                        (Inferred::Any, Inferred::Known(b)) => {
                            Inferred::Known(Unit::DIMENSIONLESS.div(&b))
                        }
                        (Inferred::Any, Inferred::Any) => Inferred::Any,
                        _ => Inferred::Unknown,
                    },
                    BinOp::Pow => self.infer_pow(il, r, ir),
                }
            }
        }
    }

    /// `pow(base, exp)`: the exponent must be a dimensionless constant; a
    /// rational literal exponent scales the base's exponent vector.
    fn infer_pow(&mut self, base: Inferred, exp: &Expr, iexp: Inferred) -> Inferred {
        if let Inferred::Known(u) = iexp {
            if !u.is_dimensionless() {
                self.diag(
                    self.policy.transcendental(),
                    "dimensional-exponent",
                    format!("exponent of 'pow' carries units: {u}"),
                );
                return Inferred::Unknown;
            }
        }
        match base {
            Inferred::Any => Inferred::Any,
            Inferred::Unknown => Inferred::Unknown,
            Inferred::Known(b) if b.is_dimensionless() => Inferred::Known(b),
            Inferred::Known(b) => match exp {
                Expr::Num(v) => match Ratio::approx(*v) {
                    Some(r) => Inferred::Known(b.powr(r)),
                    None => {
                        self.diag(
                            self.policy.transcendental(),
                            "irrational-exponent",
                            format!("dimensional base {b} raised to non-rational exponent {v}"),
                        );
                        Inferred::Unknown
                    }
                },
                _ => {
                    self.diag(
                        self.policy.transcendental(),
                        "variable-exponent",
                        format!("dimensional base {b} raised to a non-constant exponent"),
                    );
                    Inferred::Unknown
                }
            },
        }
    }
}

/// Infer the unit of `expr` and collect dimensional diagnostics.
pub fn infer_units(
    expr: &Expr,
    env: &UnitEnv,
    policy: Policy,
    equation: &str,
) -> (Inferred, Report) {
    let mut ctx = Ctx {
        env,
        policy,
        equation,
        report: Report::new(),
        path: Vec::new(),
    };
    let inferred = ctx.infer(expr);
    (inferred, ctx.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_bio::params::{CFMIN, CFS};
    use gmr_expr::ParamSlot;
    use gmr_hydro::vars::{VCD, VTMP};

    fn param(kind: u16) -> Expr {
        Expr::Param(ParamSlot {
            kind,
            value: gmr_bio::params::spec(kind).mean,
        })
    }

    #[test]
    fn manual_equations_are_unit_consistent() {
        let env = UnitEnv::river();
        let [dbphy, dbzoo] = gmr_bio::manual_system();
        for (label, eq) in [("dBPhy/dt", &dbphy), ("dBZoo/dt", &dbzoo)] {
            let (inferred, report) = infer_units(eq, &env, Policy::Strict, label);
            assert!(
                report.is_clean(),
                "{label} should be dimensionally clean:\n{}",
                report.render_human()
            );
            // Both equations are biomass fluxes: ug L^-1 day^-1.
            let expect = Unit::parse("ug L^-1 day^-1").unwrap();
            assert_eq!(inferred.unit(), Some(expect), "{label}");
        }
    }

    #[test]
    fn dimension_clash_in_addition_is_caught() {
        // BPhy + Vtmp: ug L^-1 + degC.
        let e = Expr::bin(BinOp::Add, Expr::State(0), Expr::Var(VTMP));
        let env = UnitEnv::river();
        let (_, report) = infer_units(&e, &env, Policy::Strict, "test");
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.diagnostics[0].rule, "unit-mismatch");
        // The same clash is only a warning under the revision policy.
        let (_, report) = infer_units(&e, &env, Policy::Revision, "test");
        assert_eq!(report.count(Severity::Error), 0);
        assert_eq!(report.count(Severity::Warn), 1);
    }

    #[test]
    fn scale_clash_is_distinguished_from_dimension_clash() {
        // Vn (mg/L) + CFS (ug/L): same dimension, factor-1000 scale bug.
        let e = Expr::bin(BinOp::Add, Expr::Var(1), param(CFS));
        let env = UnitEnv::river();
        let (_, report) = infer_units(&e, &env, Policy::Strict, "test");
        assert_eq!(report.count(Severity::Error), 0);
        assert_eq!(report.count(Severity::Warn), 1);
        assert_eq!(report.diagnostics[0].rule, "unit-scale-mismatch");
    }

    #[test]
    fn clean_addition_passes() {
        // CFS + BPhy - CFmin: all ug L^-1.
        let e = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Add, param(CFS), Expr::State(0)),
            param(CFMIN),
        );
        let env = UnitEnv::river();
        let (inferred, report) = infer_units(&e, &env, Policy::Strict, "test");
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
        assert_eq!(inferred.unit(), Some(Unit::parse("ug L^-1").unwrap()));
    }

    #[test]
    fn log_of_dimensional_quantity_warns() {
        let e = Expr::un(UnOp::Log, Expr::Var(VTMP));
        let env = UnitEnv::river();
        let (inferred, report) = infer_units(&e, &env, Policy::Strict, "test");
        assert_eq!(report.count(Severity::Warn), 1);
        assert_eq!(report.diagnostics[0].rule, "transcendental-of-dimensional");
        assert_eq!(inferred.unit(), Some(Unit::DIMENSIONLESS));
        // Location points at the log node's child path.
        assert!(matches!(
            &report.diagnostics[0].location,
            Location::Expr { path, .. } if path.is_empty()
        ));
    }

    #[test]
    fn pow_with_rational_exponent_scales_dims() {
        // pow(Vtmp - CBTP1, 2) is degC^2; times CPT (degC^-2) is clean.
        let diff = Expr::bin(BinOp::Sub, Expr::Var(VTMP), param(gmr_bio::params::CBTP1));
        let sq = Expr::bin(BinOp::Pow, diff, Expr::Num(2.0));
        let e = Expr::bin(BinOp::Mul, param(gmr_bio::params::CPT), sq);
        let env = UnitEnv::river();
        let (inferred, report) = infer_units(&e, &env, Policy::Strict, "test");
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
        assert_eq!(inferred.unit(), Some(Unit::DIMENSIONLESS));
    }

    #[test]
    fn numeric_literals_are_polymorphic() {
        // 1 - Vlgt/CBL is fine: the literal adapts to the dimensionless ratio.
        let ratio = Expr::bin(BinOp::Div, Expr::Var(0), param(gmr_bio::params::CBL));
        let e = Expr::bin(BinOp::Sub, Expr::Num(1.0), ratio);
        let env = UnitEnv::river();
        let (inferred, report) = infer_units(&e, &env, Policy::Strict, "test");
        assert!(report.diagnostics.is_empty());
        assert_eq!(inferred.unit(), Some(Unit::DIMENSIONLESS));
    }

    #[test]
    fn revision_splice_is_flagged_with_path() {
        // The Ext1 pattern: (manual flux) + Vcd.
        let [dbphy, _] = gmr_bio::manual_system();
        let e = Expr::bin(BinOp::Add, dbphy, Expr::Var(VCD));
        let env = UnitEnv::river();
        let (_, report) = infer_units(&e, &env, Policy::Revision, "dBPhy/dt");
        assert_eq!(report.count(Severity::Warn), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.rule, "unit-mismatch");
        assert!(matches!(&d.location, Location::Expr { path, .. } if path.is_empty()));
        assert!(
            d.message.contains("S"),
            "conductance should appear: {}",
            d.message
        );
    }
}
