//! The `gmr-lint` command-line driver.
//!
//! ```text
//! gmr-lint --builtin            lint the built-in river grammar + expert eqs
//! gmr-lint --expr '<equation>'  lint one equation (canonical names)
//! gmr-lint --artifact m.json    lint an exported gmr-model/v1 artifact
//! ```
//!
//! Options: `--json` for machine-readable output, `--revision` to grade
//! dimensional findings under the evolved-model policy (default strict),
//! `--bytecode` to additionally compile each input system through the
//! register-VM pipeline and run the abstract interpreter over the compiled
//! programs (`--tier` picks the pipeline tier, `--safety-out` writes the
//! unsafe-access [`SafetyReport`](gmr_lint::SafetyReport) as JSON), and
//! `--quiet` to suppress output and only set the exit code.
//!
//! Exit status — identical for every input mode: 0 when no `Error`-level
//! diagnostics (warnings and notes alone never fail), 1 when at least one
//! finding is an `Error`, 2 when the invocation itself is unusable (bad
//! flags, unreadable or unparseable input).

use gmr_expr::{CompiledSystem, Expr, NameTable, OptOptions};
use gmr_lint::{
    analyze_system, env_for_arity, lint_builtin, lint_grammar, EquationLinter, IntervalEnv, Policy,
    Report, SafetyReport,
};
use std::process::ExitCode;

const USAGE: &str = "\
gmr-lint: static analysis for GMR grammars and evolved equations

USAGE:
    gmr-lint [MODE] [OPTIONS]

MODES:
    --builtin        Lint the built-in river grammar and expert equations
                     (the default when no mode is given)
    --expr <SRC>     Lint a single equation written with the canonical
                     variable/parameter names (e.g. 'BPhy * CUA - Vtmp');
                     repeatable, equations are labelled in order
    --artifact <F>   Lint the equations of a gmr-model/v1 artifact file;
                     repeatable, each file is one system

OPTIONS:
    --bytecode       Also compile each input system through the register-VM
                     pipeline and verify the compiled bytecode (intervals,
                     prefix state-independence, dead code, unsafe bounds)
    --tier <T>       Pipeline tier for --bytecode: register, fused, full
                     (alias of split), threaded or simd (default full)
    --safety-out <F> Write the --bytecode SafetyReport ('gmr-safety/v1'
                     JSON; an array when several systems are analyzed)
    --json           Emit the report as JSON instead of human-readable text
    --revision       Grade dimensional findings under the evolved-model
                     policy (mismatches warn instead of erroring)
    --quiet          No output; communicate through the exit status only
    -h, --help       Show this help
";

struct Opts {
    builtin: bool,
    exprs: Vec<String>,
    artifacts: Vec<String>,
    bytecode: bool,
    tier: OptOptions,
    safety_out: Option<String>,
    json: bool,
    policy: Policy,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Opts>, String> {
    let mut opts = Opts {
        builtin: false,
        exprs: Vec::new(),
        artifacts: Vec::new(),
        bytecode: false,
        tier: OptOptions::full(),
        safety_out: None,
        json: false,
        policy: Policy::Strict,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--builtin" => opts.builtin = true,
            "--expr" => match it.next() {
                Some(src) => opts.exprs.push(src.clone()),
                None => return Err("--expr needs an argument".into()),
            },
            "--artifact" => match it.next() {
                Some(path) => opts.artifacts.push(path.clone()),
                None => return Err("--artifact needs a file argument".into()),
            },
            "--bytecode" => opts.bytecode = true,
            "--tier" => match it.next().map(String::as_str) {
                Some(name) => match gmr_expr::Tier::parse(name) {
                    Some(tier) => opts.tier = tier.options(),
                    None => return Err(format!("unknown tier '{name}'")),
                },
                None => {
                    return Err("--tier needs register|fused|full|threaded|simd".into());
                }
            },
            "--safety-out" => match it.next() {
                Some(path) => opts.safety_out = Some(path.clone()),
                None => return Err("--safety-out needs a file argument".into()),
            },
            "--json" => opts.json = true,
            "--revision" => opts.policy = Policy::Revision,
            "--strict" => opts.policy = Policy::Strict,
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if !opts.builtin && opts.exprs.is_empty() && opts.artifacts.is_empty() {
        opts.builtin = true;
    }
    Ok(Some(opts))
}

/// One system of equations to lint, with the schema it indexes.
struct InputSystem {
    label: String,
    eqs: Vec<Expr>,
    n_vars: usize,
    n_states: usize,
}

/// Minimal `gmr-model/v1` reader. The full artifact type lives in
/// `gmr-serve` — which depends on this crate, so the linter parses the
/// document itself through the shared `gmr-json` parser (schema tag, the
/// equation texts, and the embedded name table; topology and provenance
/// are irrelevant to analysis).
fn load_artifact(path: &str) -> Result<InputSystem, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let v = gmr_json::parse(&text).map_err(|e| format!("'{path}' is not valid JSON: {e}"))?;
    let schema = v.get("schema").and_then(|s| s.as_str()).unwrap_or("");
    if schema != "gmr-model/v1" {
        return Err(format!(
            "'{path}': schema tag is {schema:?}, expected \"gmr-model/v1\""
        ));
    }
    let label = v
        .get("name")
        .and_then(|s| s.as_str())
        .unwrap_or("artifact")
        .to_string();
    let texts: Vec<&str> = v
        .get("equations")
        .and_then(|e| e.as_arr())
        .ok_or_else(|| format!("'{path}': missing \"equations\""))?
        .iter()
        .map(|eq| {
            eq.get("text")
                .and_then(|t| t.as_str())
                .ok_or_else(|| format!("'{path}': equation without \"text\""))
        })
        .collect::<Result<_, _>>()?;
    if texts.is_empty() {
        return Err(format!("'{path}': no equations"));
    }
    let str_list = |key: &str| -> Result<Vec<String>, String> {
        v.get(key)
            .and_then(|l| l.as_arr())
            .ok_or_else(|| format!("'{path}': missing {key:?}"))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("'{path}': non-string in {key:?}"))
            })
            .collect()
    };
    let names = NameTable {
        vars: str_list("vars")?,
        states: str_list("states")?,
        params: str_list("params")?,
    };
    let eqs = texts
        .iter()
        .enumerate()
        .map(|(i, src)| {
            gmr_expr::parse(src, &names, |k| gmr_bio::params::spec(k).mean)
                .map_err(|e| format!("'{path}': equation {i} does not parse: {e}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(InputSystem {
        label,
        eqs,
        n_vars: names.vars.len(),
        n_states: names.states.len(),
    })
}

fn run(opts: &Opts) -> Result<(Report, Vec<SafetyReport>), String> {
    let mut report = Report::new();
    let mut systems: Vec<InputSystem> = Vec::new();
    let river = IntervalEnv::river();
    let river_arity = (river.vars.len(), river.states.len());

    if opts.builtin {
        if opts.policy == Policy::Strict {
            report.extend(lint_builtin());
        } else {
            let rg = gmr_bio::river_grammar();
            report.extend(lint_grammar(&rg.grammar));
            let linter = EquationLinter::river(opts.policy);
            report.extend(linter.lint(&gmr_bio::manual_system()));
        }
        systems.push(InputSystem {
            label: "builtin".into(),
            eqs: gmr_bio::manual_system().to_vec(),
            n_vars: river_arity.0,
            n_states: river_arity.1,
        });
    }
    if !opts.exprs.is_empty() {
        let names = gmr_bio::name_table();
        let linter = EquationLinter::river(opts.policy);
        let mut eqs = Vec::new();
        for src in &opts.exprs {
            let eq = gmr_expr::parse(src, &names, |k| gmr_bio::params::spec(k).mean)
                .map_err(|e| format!("cannot parse '{src}': {e}"))?;
            eqs.push(eq);
        }
        report.extend(linter.lint(&eqs));
        systems.push(InputSystem {
            label: "exprs".into(),
            eqs,
            n_vars: river_arity.0,
            n_states: river_arity.1,
        });
    }
    for path in &opts.artifacts {
        let sys = load_artifact(path)?;
        // AST-level lints apply when the artifact uses the river schema;
        // an alien schema still gets full bytecode verification.
        if (sys.n_vars, sys.n_states) == river_arity {
            report.extend(EquationLinter::river(opts.policy).lint(&sys.eqs));
        }
        systems.push(sys);
    }

    let mut safety = Vec::new();
    if opts.bytecode {
        for sys in &systems {
            let compiled =
                CompiledSystem::compile_checked(&sys.eqs, sys.n_vars, sys.n_states, opts.tier)
                    .map_err(|e| format!("'{}' does not compile: {e}", sys.label))?;
            let env = env_for_arity(sys.n_vars, sys.n_states);
            let analysis = analyze_system(&compiled, &env, &sys.label);
            report.extend(analysis.report);
            safety.push(analysis.safety);
        }
    }
    Ok((report, safety))
}

fn write_safety(path: &str, safety: &[SafetyReport]) -> Result<(), String> {
    let body = match safety {
        [one] => one.render_json(),
        many => {
            let mut out = String::from("[");
            for (i, s) in many.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(s.render_json().trim_end());
            }
            out.push_str("\n]\n");
            out
        }
    };
    std::fs::write(path, body).map_err(|e| format!("cannot write '{path}': {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (report, safety) = match run(&opts) {
        Ok(out) => out,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.safety_out {
        if let Err(msg) = write_safety(path, &safety) {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    }
    if !opts.quiet {
        if opts.json {
            println!("{}", report.render_json());
        } else {
            print!("{}", report.render_human());
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
