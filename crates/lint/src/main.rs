//! The `gmr-lint` command-line driver.
//!
//! ```text
//! gmr-lint --builtin            lint the built-in river grammar + expert eqs
//! gmr-lint --expr '<equation>'  lint one equation (canonical names)
//! ```
//!
//! Options: `--json` for machine-readable output, `--revision` to grade
//! dimensional findings under the evolved-model policy (default strict),
//! `--quiet` to suppress output and only set the exit code.
//!
//! Exit status: 0 when no `Error`-level diagnostics, 1 when there are, 2 on
//! usage errors.

use gmr_lint::{lint_builtin, lint_grammar, EquationLinter, Policy, Report};
use std::process::ExitCode;

const USAGE: &str = "\
gmr-lint: static analysis for GMR grammars and evolved equations

USAGE:
    gmr-lint [MODE] [OPTIONS]

MODES:
    --builtin        Lint the built-in river grammar and expert equations
                     (the default when no mode is given)
    --expr <SRC>     Lint a single equation written with the canonical
                     variable/parameter names (e.g. 'BPhy * CUA - Vtmp');
                     repeatable, equations are labelled in order

OPTIONS:
    --json           Emit the report as JSON instead of human-readable text
    --revision       Grade dimensional findings under the evolved-model
                     policy (mismatches warn instead of erroring)
    --quiet          No output; communicate through the exit status only
    -h, --help       Show this help
";

struct Opts {
    builtin: bool,
    exprs: Vec<String>,
    json: bool,
    policy: Policy,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Opts>, String> {
    let mut opts = Opts {
        builtin: false,
        exprs: Vec::new(),
        json: false,
        policy: Policy::Strict,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--builtin" => opts.builtin = true,
            "--expr" => match it.next() {
                Some(src) => opts.exprs.push(src.clone()),
                None => return Err("--expr needs an argument".into()),
            },
            "--json" => opts.json = true,
            "--revision" => opts.policy = Policy::Revision,
            "--strict" => opts.policy = Policy::Strict,
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if !opts.builtin && opts.exprs.is_empty() {
        opts.builtin = true;
    }
    Ok(Some(opts))
}

fn run(opts: &Opts) -> Result<Report, String> {
    let mut report = Report::new();
    if opts.builtin {
        if opts.policy == Policy::Strict {
            report.extend(lint_builtin());
        } else {
            let rg = gmr_bio::river_grammar();
            report.extend(lint_grammar(&rg.grammar));
            let linter = EquationLinter::river(opts.policy);
            report.extend(linter.lint(&gmr_bio::manual_system()));
        }
    }
    if !opts.exprs.is_empty() {
        let names = gmr_bio::name_table();
        let linter = EquationLinter::river(opts.policy);
        let mut eqs = Vec::new();
        for src in &opts.exprs {
            let eq = gmr_expr::parse(src, &names, |k| gmr_bio::params::spec(k).mean)
                .map_err(|e| format!("cannot parse '{src}': {e}"))?;
            eqs.push(eq);
        }
        report.extend(linter.lint(&eqs));
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&opts) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    if !opts.quiet {
        if opts.json {
            println!("{}", report.render_json());
        } else {
            print!("{}", report.render_human());
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
