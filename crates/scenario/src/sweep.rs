//! Online sweep reduction: one trajectory → a small summary record.
//!
//! A sweep never ships trajectories back to the caller — each variant's
//! daily `(BPhy, BZoo)` path is folded into a [`SweepSummary`] as it is
//! stepped. The reducer is strictly day-ordered and uses only
//! order-independent-free arithmetic (max, count, a single running sum),
//! so reducing online during a batched ensemble step is bit-identical to
//! reducing a solo trajectory after the fact — the property the scenario
//! bench gates on.

use gmr_json::{push_f64, Value};

/// What to reduce each trajectory to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReduceSpec {
    /// Bloom threshold (mg/m³ chl-a-equivalent biomass) for exceedance
    /// counting.
    pub threshold: f64,
}

impl Default for ReduceSpec {
    fn default() -> Self {
        // The paper's bloom-warning band sits around 25 mg/m³.
        ReduceSpec { threshold: 25.0 }
    }
}

/// Summary statistics of one variant's trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Variant index within the sweep.
    pub variant: u32,
    /// Maximum pre-step phytoplankton biomass over the run.
    pub peak_bphy: f64,
    /// Day index (0-based) of the first occurrence of the peak.
    pub peak_day: usize,
    /// Days with biomass strictly above the threshold.
    pub exceed_days: usize,
    /// Mean biomass over the run.
    pub mean_bphy: f64,
    /// Biomass on the last day.
    pub final_bphy: f64,
    /// Zooplankton biomass on the last day.
    pub final_bzoo: f64,
}

impl SweepSummary {
    /// Render as a JSON object (deterministic key order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"variant\": ");
        push_f64(&mut out, self.variant as f64);
        out.push_str(", \"peak_bphy\": ");
        push_f64(&mut out, self.peak_bphy);
        out.push_str(", \"peak_day\": ");
        push_f64(&mut out, self.peak_day as f64);
        out.push_str(", \"exceed_days\": ");
        push_f64(&mut out, self.exceed_days as f64);
        out.push_str(", \"mean_bphy\": ");
        push_f64(&mut out, self.mean_bphy);
        out.push_str(", \"final_bphy\": ");
        push_f64(&mut out, self.final_bphy);
        out.push_str(", \"final_bzoo\": ");
        push_f64(&mut out, self.final_bzoo);
        out.push('}');
        out
    }

    /// Parse back from a strict-parsed JSON value (for benches and
    /// cluster tests that compare summaries across the wire).
    pub fn from_value(v: &Value) -> Option<SweepSummary> {
        Some(SweepSummary {
            variant: v.get("variant")?.as_u64()? as u32,
            peak_bphy: v.get("peak_bphy")?.as_f64()?,
            peak_day: v.get("peak_day")?.as_u64()? as usize,
            exceed_days: v.get("exceed_days")?.as_u64()? as usize,
            mean_bphy: v.get("mean_bphy")?.as_f64()?,
            final_bphy: v.get("final_bphy")?.as_f64()?,
            final_bzoo: v.get("final_bzoo")?.as_f64()?,
        })
    }
}

/// Day-ordered online reducer. Push exactly one `(bphy, bzoo)` pair per
/// day, in day order, then call [`SweepReducer::finish`].
#[derive(Debug, Clone)]
pub struct SweepReducer {
    variant: u32,
    threshold: f64,
    peak_bphy: f64,
    peak_day: usize,
    exceed_days: usize,
    sum_bphy: f64,
    days: usize,
    last_bphy: f64,
    last_bzoo: f64,
}

impl SweepReducer {
    pub fn new(variant: u32, reduce: &ReduceSpec) -> SweepReducer {
        SweepReducer {
            variant,
            threshold: reduce.threshold,
            peak_bphy: f64::NEG_INFINITY,
            peak_day: 0,
            exceed_days: 0,
            sum_bphy: 0.0,
            days: 0,
            last_bphy: 0.0,
            last_bzoo: 0.0,
        }
    }

    /// Fold in one day's pre-step state.
    pub fn push(&mut self, bphy: f64, bzoo: f64) {
        if bphy > self.peak_bphy {
            self.peak_bphy = bphy;
            self.peak_day = self.days;
        }
        if bphy > self.threshold {
            self.exceed_days += 1;
        }
        self.sum_bphy += bphy;
        self.days += 1;
        self.last_bphy = bphy;
        self.last_bzoo = bzoo;
    }

    pub fn finish(self) -> SweepSummary {
        SweepSummary {
            variant: self.variant,
            peak_bphy: self.peak_bphy,
            peak_day: self.peak_day,
            exceed_days: self.exceed_days,
            mean_bphy: if self.days > 0 {
                self.sum_bphy / self.days as f64
            } else {
                0.0
            },
            final_bphy: self.last_bphy,
            final_bzoo: self.last_bzoo,
        }
    }
}

/// Reduce a complete pair of trajectories (e.g. a solo `/simulate`
/// response) — the reference the online reducer must match bit-for-bit.
pub fn reduce_series(
    variant: u32,
    reduce: &ReduceSpec,
    bphy: &[f64],
    bzoo: &[f64],
) -> SweepSummary {
    assert_eq!(bphy.len(), bzoo.len());
    let mut r = SweepReducer::new(variant, reduce);
    for (&p, &z) in bphy.iter().zip(bzoo) {
        r.push(p, z);
    }
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_batch_bitwise() {
        let bphy: Vec<f64> = (0..400)
            .map(|i| 10.0 + (i as f64 * 0.37).sin() * 20.0)
            .collect();
        let bzoo: Vec<f64> = (0..400).map(|i| 2.0 + (i as f64 * 0.11).cos()).collect();
        let spec = ReduceSpec { threshold: 25.0 };
        let batch = reduce_series(7, &spec, &bphy, &bzoo);
        let mut r = SweepReducer::new(7, &spec);
        for (&p, &z) in bphy.iter().zip(&bzoo) {
            r.push(p, z);
        }
        let online = r.finish();
        assert_eq!(batch, online);
        assert!(batch.peak_bphy > 25.0);
        assert!(batch.exceed_days > 0 && batch.exceed_days < 400);
        assert_eq!(batch.final_bphy, bphy[399]);
        assert_eq!(batch.final_bzoo, bzoo[399]);
    }

    #[test]
    fn peak_day_is_first_occurrence() {
        let s = reduce_series(0, &ReduceSpec::default(), &[1.0, 5.0, 5.0, 2.0], &[0.0; 4]);
        assert_eq!(s.peak_day, 1);
        assert_eq!(s.peak_bphy, 5.0);
    }

    #[test]
    fn json_round_trips_bitwise() {
        let s = SweepSummary {
            variant: 3,
            peak_bphy: 33.123456789012345,
            peak_day: 211,
            exceed_days: 48,
            mean_bphy: 17.000000000000004,
            final_bphy: 9.87654321e-3,
            final_bzoo: 1.25,
        };
        let v = gmr_json::parse(&s.to_json()).unwrap();
        let back = SweepSummary::from_value(&v).unwrap();
        assert_eq!(
            s, back,
            "shortest-roundtrip floats survive the wire exactly"
        );
    }
}
