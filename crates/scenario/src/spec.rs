//! The `gmr-scenario/v1` specification: a strict, versioned JSON schema
//! describing a parameterized river scenario.
//!
//! A spec pins everything a scenario needs to be *deterministic by
//! construction*: the topology family and size, the generator seed, the
//! study length, and an ordered list of forcing transforms (climate
//! regimes and dam control points). Parsing is strict — unknown keys,
//! unknown transform kinds, and out-of-range parameters are rejected, the
//! same posture the serving registry takes for model artifacts.

use crate::forcing::{DamSpec, Transform};
use gmr_json::{push_escaped, push_f64, Value};

/// Schema tag every spec must carry.
pub const SCHEMA: &str = "gmr-scenario/v1";

/// Topology families the generator can grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// A single chain of stations: headwater to outlet.
    Mainstem,
    /// A random tree: side tributaries joining a wandering main channel.
    Tributaries,
    /// A tree grown with preferential attachment so multi-feed confluence
    /// nodes (in-degree ≥ 2) are common; confluences become virtual
    /// mixing stations, as in the Nakdong's VS1–VS3.
    Braided,
}

impl TopologyKind {
    fn tag(self) -> &'static str {
        match self {
            TopologyKind::Mainstem => "mainstem",
            TopologyKind::Tributaries => "tributaries",
            TopologyKind::Braided => "braided",
        }
    }
}

/// A validated scenario specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name: the admission key and the sweep routing key.
    pub name: String,
    /// Seed for every draw: topology shape, station environments, the
    /// synthetic generator, and per-variant transform jitter.
    pub seed: u64,
    /// Topology family.
    pub kind: TopologyKind,
    /// Total station count, virtual confluences included (2..=512).
    pub stations: usize,
    /// Study length in calendar years starting 1996 (1..=16).
    pub years: usize,
    /// Ordered forcing transforms applied over the generated table.
    pub transforms: Vec<Transform>,
    /// Relative half-width of the per-variant parameter jitter (sweeps
    /// perturb every transform parameter by `±spread` of its base value).
    pub spread: f64,
}

/// Spec rejection with a human-readable reason (safe to echo in a 400).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

fn req<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, SpecError> {
    obj.get(key).ok_or_else(|| err(format!("missing `{key}`")))
}

fn num(v: &Value, key: &str) -> Result<f64, SpecError> {
    v.as_f64()
        .filter(|x| x.is_finite())
        .ok_or_else(|| err(format!("`{key}` must be a finite number")))
}

fn uint(v: &Value, key: &str) -> Result<u64, SpecError> {
    v.as_u64()
        .ok_or_else(|| err(format!("`{key}` must be a non-negative integer")))
}

fn known_keys(v: &Value, allowed: &[&str], what: &str) -> Result<(), SpecError> {
    if let Value::Obj(m) = v {
        for k in m.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(err(format!("unknown {what} key `{k}`")));
            }
        }
        Ok(())
    } else {
        Err(err(format!("{what} must be an object")))
    }
}

/// Parse and validate a spec from already-parsed JSON.
pub fn spec_from_value(v: &Value) -> Result<ScenarioSpec, SpecError> {
    known_keys(
        v,
        &[
            "schema", "name", "seed", "topology", "years", "climate", "dams", "spread",
        ],
        "spec",
    )?;
    let schema = req(v, "schema")?
        .as_str()
        .ok_or_else(|| err("`schema` must be a string"))?;
    if schema != SCHEMA {
        return Err(err(format!("schema `{schema}` is not `{SCHEMA}`")));
    }
    let name = req(v, "name")?
        .as_str()
        .ok_or_else(|| err("`name` must be a string"))?
        .to_string();
    if name.is_empty()
        || name.len() > 64
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(err(
            "`name` must be 1..=64 chars of [A-Za-z0-9_-] (it keys routing)",
        ));
    }
    let seed = uint(req(v, "seed")?, "seed")?;
    let topo = req(v, "topology")?;
    known_keys(topo, &["kind", "stations"], "topology")?;
    let kind = match req(topo, "kind")?.as_str() {
        Some("mainstem") => TopologyKind::Mainstem,
        Some("tributaries") => TopologyKind::Tributaries,
        Some("braided") => TopologyKind::Braided,
        Some(other) => return Err(err(format!("unknown topology kind `{other}`"))),
        None => return Err(err("`topology.kind` must be a string")),
    };
    let stations = uint(req(topo, "stations")?, "topology.stations")? as usize;
    if !(2..=512).contains(&stations) {
        return Err(err("`topology.stations` must be in 2..=512"));
    }
    let years = uint(req(v, "years")?, "years")? as usize;
    if !(1..=16).contains(&years) {
        return Err(err("`years` must be in 1..=16"));
    }
    let spread = match v.get("spread") {
        Some(s) => num(s, "spread")?,
        None => 0.25,
    };
    if !(0.0..=0.9).contains(&spread) {
        return Err(err("`spread` must be in 0.0..=0.9"));
    }

    let mut transforms = Vec::new();
    if let Some(climate) = v.get("climate") {
        let arr = climate
            .as_arr()
            .ok_or_else(|| err("`climate` must be an array"))?;
        for c in arr {
            transforms.push(parse_climate(c)?);
        }
    }
    if let Some(dams) = v.get("dams") {
        let arr = dams
            .as_arr()
            .ok_or_else(|| err("`dams` must be an array"))?;
        if arr.len() > 8 {
            return Err(err("at most 8 dams per scenario"));
        }
        for d in arr {
            transforms.push(Transform::Dam(parse_dam(d)?));
        }
    }

    Ok(ScenarioSpec {
        name,
        seed,
        kind,
        stations,
        years,
        transforms,
        spread,
    })
}

fn parse_climate(c: &Value) -> Result<Transform, SpecError> {
    let kind = req(c, "kind")?
        .as_str()
        .ok_or_else(|| err("climate `kind` must be a string"))?;
    match kind {
        "monsoon_shift" => {
            known_keys(c, &["kind", "days"], "monsoon_shift")?;
            let days = num(req(c, "days")?, "days")?;
            if !(-60.0..=60.0).contains(&days) {
                return Err(err("monsoon_shift `days` must be in -60..=60"));
            }
            Ok(Transform::MonsoonShift { days })
        }
        "heatwave" => {
            known_keys(c, &["kind", "start_day", "length", "amp"], "heatwave")?;
            let start_day = num(req(c, "start_day")?, "start_day")?;
            let length = num(req(c, "length")?, "length")?;
            let amp = num(req(c, "amp")?, "amp")?;
            if !(0.0..=365.0).contains(&start_day) {
                return Err(err("heatwave `start_day` must be in 0..=365"));
            }
            if !(1.0..=120.0).contains(&length) {
                return Err(err("heatwave `length` must be in 1..=120"));
            }
            if !(0.0..=10.0).contains(&amp) {
                return Err(err("heatwave `amp` must be in 0..=10 °C"));
            }
            Ok(Transform::Heatwave {
                start_day,
                length,
                amp,
            })
        }
        "drought" => {
            known_keys(c, &["kind", "scale"], "drought")?;
            let scale = num(req(c, "scale")?, "scale")?;
            if !(0.2..=2.0).contains(&scale) {
                return Err(err("drought `scale` must be in 0.2..=2.0"));
            }
            Ok(Transform::Drought { scale })
        }
        other => Err(err(format!("unknown climate kind `{other}`"))),
    }
}

fn parse_dam(d: &Value) -> Result<DamSpec, SpecError> {
    known_keys(d, &["station", "capacity", "release", "overflow"], "dam")?;
    let station = req(d, "station")?
        .as_str()
        .ok_or_else(|| err("dam `station` must be a string"))?
        .to_string();
    let capacity = num(req(d, "capacity")?, "capacity")?;
    if !(100.0..=1e7).contains(&capacity) {
        return Err(err("dam `capacity` must be in 100..=1e7"));
    }
    let release = match req(d, "release")? {
        Value::Num(n) => vec![*n; 12],
        Value::Arr(a) if a.len() == 12 => a
            .iter()
            .map(|x| num(x, "release"))
            .collect::<Result<Vec<_>, _>>()?,
        _ => {
            return Err(err(
                "dam `release` must be a number or an array of 12 monthly fractions",
            ))
        }
    };
    if release.iter().any(|r| !(0.05..=2.0).contains(r)) {
        return Err(err("dam release fractions must be in 0.05..=2.0"));
    }
    let overflow = num(req(d, "overflow")?, "overflow")?;
    if !(0.0..=1.0).contains(&overflow) {
        return Err(err("dam `overflow` must be in 0..=1"));
    }
    Ok(DamSpec {
        station,
        capacity,
        release,
        overflow,
    })
}

/// Parse and validate a spec from JSON text.
pub fn parse_spec(src: &str) -> Result<ScenarioSpec, SpecError> {
    let v = gmr_json::parse(src).map_err(|e| err(format!("invalid JSON: {e}")))?;
    spec_from_value(&v)
}

/// Render a spec back to its canonical JSON text (round-trips through
/// [`parse_spec`] to an equal spec).
pub fn render_spec(spec: &ScenarioSpec) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\": ");
    push_escaped(&mut out, SCHEMA);
    out.push_str(", \"name\": ");
    push_escaped(&mut out, &spec.name);
    out.push_str(&format!(", \"seed\": {}", spec.seed));
    out.push_str(&format!(
        ", \"topology\": {{\"kind\": \"{}\", \"stations\": {}}}",
        spec.kind.tag(),
        spec.stations
    ));
    out.push_str(&format!(", \"years\": {}", spec.years));
    let climate: Vec<&Transform> = spec
        .transforms
        .iter()
        .filter(|t| !matches!(t, Transform::Dam(_)))
        .collect();
    if !climate.is_empty() {
        out.push_str(", \"climate\": [");
        for (i, t) in climate.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match t {
                Transform::MonsoonShift { days } => {
                    out.push_str("{\"kind\": \"monsoon_shift\", \"days\": ");
                    push_f64(&mut out, *days);
                    out.push('}');
                }
                Transform::Heatwave {
                    start_day,
                    length,
                    amp,
                } => {
                    out.push_str("{\"kind\": \"heatwave\", \"start_day\": ");
                    push_f64(&mut out, *start_day);
                    out.push_str(", \"length\": ");
                    push_f64(&mut out, *length);
                    out.push_str(", \"amp\": ");
                    push_f64(&mut out, *amp);
                    out.push('}');
                }
                Transform::Drought { scale } => {
                    out.push_str("{\"kind\": \"drought\", \"scale\": ");
                    push_f64(&mut out, *scale);
                    out.push('}');
                }
                Transform::Dam(_) => unreachable!("filtered above"),
            }
        }
        out.push(']');
    }
    let dams: Vec<&DamSpec> = spec
        .transforms
        .iter()
        .filter_map(|t| match t {
            Transform::Dam(d) => Some(d),
            _ => None,
        })
        .collect();
    if !dams.is_empty() {
        out.push_str(", \"dams\": [");
        for (i, d) in dams.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"station\": ");
            push_escaped(&mut out, &d.station);
            out.push_str(", \"capacity\": ");
            push_f64(&mut out, d.capacity);
            out.push_str(", \"release\": [");
            for (j, r) in d.release.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                push_f64(&mut out, *r);
            }
            out.push_str("], \"overflow\": ");
            push_f64(&mut out, d.overflow);
            out.push('}');
        }
        out.push(']');
    }
    out.push_str(", \"spread\": ");
    push_f64(&mut out, spec.spread);
    out.push('}');
    out
}

/// A representative spec used by crate tests and docs.
#[cfg(test)]
pub(crate) fn demo_src() -> String {
    r#"{
        "schema": "gmr-scenario/v1",
        "name": "demo-sweep",
        "seed": 7,
        "topology": {"kind": "braided", "stations": 24},
        "years": 2,
        "climate": [
            {"kind": "monsoon_shift", "days": 15},
            {"kind": "heatwave", "start_day": 190, "length": 12, "amp": 3.5},
            {"kind": "drought", "scale": 0.7}
        ],
        "dams": [
            {"station": "n04", "capacity": 200000, "release": 0.6, "overflow": 0.75}
        ],
        "spread": 0.2
    }"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let spec = parse_spec(&demo_src()).unwrap();
        assert_eq!(spec.name, "demo-sweep");
        assert_eq!(spec.kind, TopologyKind::Braided);
        assert_eq!(spec.stations, 24);
        assert_eq!(spec.transforms.len(), 4);
        let back = parse_spec(&render_spec(&spec)).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn rejects_bad_schema_and_unknown_keys() {
        assert!(parse_spec(&demo_src().replace("gmr-scenario/v1", "v2")).is_err());
        assert!(parse_spec(&demo_src().replace("\"seed\"", "\"sneed\"")).is_err());
        assert!(parse_spec(&demo_src().replace("monsoon_shift", "tsunami")).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        for (from, to) in [
            ("\"stations\": 24", "\"stations\": 1"),
            ("\"stations\": 24", "\"stations\": 1000"),
            ("\"years\": 2", "\"years\": 0"),
            ("\"days\": 15", "\"days\": 200"),
            ("\"scale\": 0.7", "\"scale\": 5.0"),
            ("\"overflow\": 0.75", "\"overflow\": 2.0"),
            ("\"spread\": 0.2", "\"spread\": 1.5"),
        ] {
            let src = demo_src().replace(from, to);
            assert!(parse_spec(&src).is_err(), "accepted {to}");
        }
    }

    #[test]
    fn monthly_release_schedule_accepted() {
        let src = demo_src().replace(
            "\"release\": 0.6",
            "\"release\": [0.4,0.4,0.5,0.6,0.7,0.8,1.0,1.0,0.8,0.6,0.5,0.4]",
        );
        let spec = parse_spec(&src).unwrap();
        let dam = spec
            .transforms
            .iter()
            .find_map(|t| match t {
                Transform::Dam(d) => Some(d),
                _ => None,
            })
            .unwrap();
        assert_eq!(dam.release.len(), 12);
        assert_eq!(dam.release[6], 1.0);
    }
}
