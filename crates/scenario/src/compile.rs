//! Scenario compilation: spec → topology → synthetic dataset → base
//! forcing table + transform context.
//!
//! Compilation is where "deterministic by construction" cashes out: the
//! topology generator and the synthetic generator both draw every value
//! from `spec.seed` in a fixed order, so the same spec compiles to a
//! bit-identical [`CompiledScenario`] on every host, every time. Sweep
//! variants derive from the compiled base by re-applying jittered
//! transform chains — never by re-generating — so variant tables are
//! bit-deterministic too.

use crate::forcing::{apply_transforms, variant_transforms, DamSite, ForcingCtx, Transform};
use crate::spec::{ScenarioSpec, SpecError};
use crate::topology::build_topology;
use gmr_hydro::data::days_in_year;
use gmr_hydro::synthetic::{generate_on, SyntheticConfig};
use gmr_hydro::vars::NUM_VARS;
use gmr_hydro::StationKind;

/// First calendar year of every scenario study (matches the paper's
/// Nakdong record start).
pub const START_YEAR: i32 = 1996;

/// A compiled scenario: the admitted unit a server hosts and a sweep
/// executes against.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledScenario {
    /// The validated spec this compiled from.
    pub spec: ScenarioSpec,
    /// Days in the study.
    pub days: usize,
    /// The target (outlet) station's generated forcing table, before any
    /// transform — variant 0's table is this plus the spec's own chain.
    pub base: Vec<[f64; NUM_VARS]>,
    /// Calendar + dam-site context for transform application.
    pub ctx: ForcingCtx,
    /// Outlet station name (the simulated reach).
    pub outlet: String,
}

impl CompiledScenario {
    /// The forcing table of sweep variant `variant`: the base table with
    /// that variant's (jittered) transform chain applied.
    pub fn variant_rows(&self, variant: u32) -> Vec<[f64; NUM_VARS]> {
        let chain = variant_transforms(
            &self.spec.transforms,
            self.spec.seed,
            self.spec.spread,
            variant,
        );
        let mut rows = self.base.clone();
        apply_transforms(&mut rows, &chain, &self.ctx);
        rows
    }
}

/// Compile a spec: grow the topology, run the synthetic generator over
/// it, and resolve every dam control point against the generated
/// hydrology. Errors are admission failures (safe to echo in a 400).
pub fn compile(spec: &ScenarioSpec) -> Result<CompiledScenario, SpecError> {
    let (net, envs) = build_topology(spec);

    // Dams must name real, physical stations before we pay for
    // generation.
    for t in &spec.transforms {
        if let Transform::Dam(d) = t {
            let sid = net.by_name(&d.station).ok_or_else(|| {
                SpecError(format!(
                    "dam station `{}` is not in the topology",
                    d.station
                ))
            })?;
            if net.station(sid).kind == StationKind::Virtual {
                return Err(SpecError(format!(
                    "dam station `{}` is a virtual confluence",
                    d.station
                )));
            }
        }
    }

    let cfg = SyntheticConfig {
        seed: spec.seed,
        start_year: START_YEAR,
        end_year: START_YEAR + spec.years as i32 - 1,
        train_end_year: START_YEAR + spec.years as i32 - 1,
        ..Default::default()
    };
    let ds = generate_on(&cfg, net, &envs);
    let days = ds.days;

    // Calendar: day-of-year and month per row (mirrors the generator's
    // own calendar walk).
    let mut doy = Vec::with_capacity(days);
    let mut month = Vec::with_capacity(days);
    {
        let mut year = START_YEAR;
        let mut d = 0usize;
        while doy.len() < days {
            doy.push(d as f64);
            month.push(month_of_doy(d, days_in_year(year) == 366));
            d += 1;
            if d >= days_in_year(year) {
                d = 0;
                year += 1;
            }
        }
    }

    // Resolve dam sites against the generated hydrology, in transform
    // order.
    let target = ds.target;
    let q_target_mean =
        ds.stations[target.0].flow.iter().sum::<f64>() / ds.stations[target.0].flow.len() as f64;
    let mut dams = Vec::new();
    for t in &spec.transforms {
        if let Transform::Dam(d) = t {
            let sid = ds.network.by_name(&d.station).expect("checked above");
            // Travel delay from the dam to the outlet: sum of edge delays
            // along the (unique) downstream path.
            let mut lag = 0usize;
            let mut cur = sid;
            while let Some(e) = ds.network.downstream_of(cur) {
                lag += e.delay_days;
                cur = e.to;
            }
            let q_nat = ds.stations[sid.0].flow.clone();
            let q_mean = q_nat.iter().sum::<f64>() / q_nat.len() as f64;
            let share = if q_target_mean > 0.0 {
                (q_mean / q_target_mean).clamp(0.0, 1.0)
            } else {
                0.0
            };
            dams.push(DamSite { q_nat, lag, share });
        }
    }

    let outlet = ds.network.station(target).name.clone();
    Ok(CompiledScenario {
        spec: spec.clone(),
        days,
        base: ds.stations[target.0].vars.clone(),
        ctx: ForcingCtx { doy, month, dams },
        outlet,
    })
}

/// Month index (0–11) of a 0-based day-of-year.
fn month_of_doy(doy: usize, leap: bool) -> usize {
    let feb = if leap { 29 } else { 28 };
    let lengths = [31, feb, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    let mut d = doy;
    for (m, len) in lengths.iter().enumerate() {
        if d < *len {
            return m;
        }
        d -= len;
    }
    11
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;

    fn spec_src(seed: u64) -> String {
        format!(
            r#"{{"schema": "gmr-scenario/v1", "name": "c", "seed": {seed},
                 "topology": {{"kind": "mainstem", "stations": 20}},
                 "years": 1,
                 "climate": [{{"kind": "drought", "scale": 0.8}}],
                 "dams": [{{"station": "n05", "capacity": 100000,
                            "release": 0.6, "overflow": 0.5}}]}}"#
        )
    }

    #[test]
    fn compiles_bit_deterministically() {
        let spec = parse_spec(&spec_src(5)).unwrap();
        let a = compile(&spec).unwrap();
        let b = compile(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.days, 366);
        assert_eq!(a.base.len(), 366);
        assert_eq!(a.ctx.dams.len(), 1);
        // Different seed, different world.
        let c = compile(&parse_spec(&spec_src(6)).unwrap()).unwrap();
        assert_ne!(a.base, c.base);
    }

    #[test]
    fn variant_rows_deterministic_and_distinct() {
        let spec = parse_spec(&spec_src(5)).unwrap();
        let scn = compile(&spec).unwrap();
        let v0a = scn.variant_rows(0);
        let v0b = scn.variant_rows(0);
        assert_eq!(v0a, v0b);
        let v1 = scn.variant_rows(1);
        let v2 = scn.variant_rows(2);
        assert_ne!(v0a, v1);
        assert_ne!(v1, v2);
        assert_eq!(v1, scn.variant_rows(1), "independent of call order");
    }

    #[test]
    fn rejects_unknown_or_virtual_dam_station() {
        let spec = parse_spec(&spec_src(5).replace("n05", "nope")).unwrap();
        assert!(compile(&spec).is_err());
    }

    #[test]
    fn month_calendar() {
        assert_eq!(month_of_doy(0, false), 0);
        assert_eq!(month_of_doy(31, false), 1);
        assert_eq!(month_of_doy(59, false), 2); // Mar 1 in a common year
        assert_eq!(month_of_doy(59, true), 1); // Feb 29 in a leap year
        assert_eq!(month_of_doy(364, false), 11);
    }
}
