//! Topology generator: grows arbitrary-size [`RiverNetwork`] DAGs from a
//! seeded spec.
//!
//! Three families, all respecting the network invariants (out-degree ≤ 1,
//! exactly one outlet, acyclic — a conservative river):
//!
//! * **mainstem** — a single chain, headwater to outlet;
//! * **tributaries** — a random tree whose side branches join a wandering
//!   main channel;
//! * **braided** — preferential attachment toward stations that already
//!   collect a branch, so multi-feed confluences (in-degree ≥ 2) are
//!   common; confluence nodes become *virtual* mixing stations exactly
//!   like the Nakdong's VS1–VS3.
//!
//! Station 0 is always the outlet; every node `i ≥ 1` drains to a node
//! with a smaller index, which makes the graph acyclic by construction.
//! All draws flow from `spec.seed` in a fixed order (edges, then
//! retentions, then environments), so a spec maps to one topology,
//! bit-identically, on every run.

use crate::spec::{ScenarioSpec, TopologyKind};
use gmr_hydro::{Edge, RiverNetwork, Station, StationEnv, StationId, StationKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt folded into the seed so topology draws are decoupled from the
/// generator's own stream.
const TOPO_SALT: u64 = 0x746f_706f_6c6f_6779; // "topology"

/// Grow the network and per-station environments for a spec.
///
/// Deterministic: the same `(kind, stations, seed)` triple always yields
/// the same network and environments.
pub fn build_topology(spec: &ScenarioSpec) -> (RiverNetwork, Vec<StationEnv>) {
    let n = spec.stations;
    let mut rng = StdRng::seed_from_u64(spec.seed ^ TOPO_SALT);

    // ---- Edges: node i drains to parent[i] < i. ----
    let mut parent = vec![usize::MAX; n];
    let mut child_count = vec![0usize; n];
    let mut distance = vec![0.0f64; n];
    for i in 1..n {
        let p = match spec.kind {
            TopologyKind::Mainstem => i - 1,
            TopologyKind::Tributaries => {
                if i == 1 || rng.gen_bool(0.6) {
                    i - 1
                } else {
                    rng.gen_range(0..i)
                }
            }
            TopologyKind::Braided => {
                // Preferential attachment: join a station that already
                // collects a branch, forming a multi-feed confluence.
                let braid = i > 1 && rng.gen_bool(0.45);
                let hubs: Vec<usize> = (0..i).filter(|&j| child_count[j] >= 1).collect();
                if braid && !hubs.is_empty() {
                    hubs[rng.gen_range(0..hubs.len())]
                } else {
                    rng.gen_range(0..i)
                }
            }
        };
        parent[i] = p;
        child_count[p] += 1;
        distance[i] = rng.gen_range(5.0..45.0);
    }
    // A braided topology must actually braid: if no confluence formed
    // (possible at small n), merge the last two stations' drains.
    if spec.kind == TopologyKind::Braided && n >= 3 && child_count.iter().all(|&c| c < 2) {
        child_count[parent[n - 1]] -= 1;
        parent[n - 1] = parent[n - 2];
        child_count[parent[n - 1]] += 1;
    }

    // ---- Retentions (station order; outlet is the barrage-like pool). ----
    let retention: Vec<f64> = (0..n)
        .map(|i| {
            if i == 0 {
                rng.gen_range(0.18..0.32)
            } else {
                rng.gen_range(0.06..0.18)
            }
        })
        .collect();

    // ---- Stations: confluences (in-degree ≥ 2) become virtual mixing
    // points; the outlet stays a measuring station (it is the target). ----
    let stations: Vec<Station> = (0..n)
        .map(|i| {
            let virtual_confluence = i != 0 && child_count[i] >= 2;
            Station {
                name: format!("n{i:02}"),
                kind: if virtual_confluence {
                    StationKind::Virtual
                } else {
                    StationKind::Measuring
                },
                retention: if virtual_confluence {
                    0.0
                } else {
                    retention[i]
                },
            }
        })
        .collect();
    let edges: Vec<Edge> = (1..n)
        .map(|i| Edge {
            from: StationId(i),
            to: StationId(parent[i]),
            distance_km: distance[i],
            // ~25 km/day mean water-body velocity, as in the Nakdong.
            delay_days: ((distance[i] / 25.0).round() as usize).max(1),
        })
        .collect();

    // ---- Environments (station order; one fixed draw block per station
    // regardless of kind, so kinds never shift the stream). ----
    let envs: Vec<StationEnv> = (0..n)
        .map(|i| {
            let e = StationEnv {
                nutrient_scale: rng.gen_range(0.85..1.45),
                temp_offset: rng.gen_range(-0.5..1.2),
                cond_offset: rng.gen_range(0.0..90.0),
                catchment: rng.gen_range(2.0..9.0),
            };
            if stations[i].kind == StationKind::Virtual {
                StationEnv::neutral()
            } else {
                e
            }
        })
        .collect();

    let net = RiverNetwork::new(stations, edges)
        .expect("generated topology satisfies the network invariants by construction");
    (net, envs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;

    fn spec(kind: &str, stations: usize, seed: u64) -> ScenarioSpec {
        parse_spec(&format!(
            r#"{{"schema": "gmr-scenario/v1", "name": "t", "seed": {seed},
                 "topology": {{"kind": "{kind}", "stations": {stations}}},
                 "years": 1}}"#
        ))
        .unwrap()
    }

    #[test]
    fn mainstem_is_a_chain() {
        let (net, envs) = build_topology(&spec("mainstem", 16, 3));
        assert_eq!(net.len(), 16);
        assert_eq!(envs.len(), 16);
        assert_eq!(net.edges().len(), 15);
        for (sid, _) in net.stations() {
            assert!(
                net.upstream_of(sid).count() <= 1,
                "chain has no confluences"
            );
        }
        assert_eq!(net.station(net.outlet()).name, "n00");
    }

    #[test]
    fn braided_has_virtual_confluences() {
        let (net, envs) = build_topology(&spec("braided", 48, 11));
        let confluences: Vec<_> = net
            .stations()
            .filter(|(sid, _)| net.upstream_of(*sid).count() >= 2)
            .collect();
        assert!(
            confluences.len() >= 2,
            "braided 48-station net should braid, got {}",
            confluences.len()
        );
        for (sid, st) in &confluences {
            if *sid != net.outlet() {
                assert_eq!(st.kind, StationKind::Virtual);
                assert_eq!(st.retention, 0.0);
                assert_eq!(envs[sid.0], StationEnv::neutral());
            }
        }
    }

    #[test]
    fn braided_small_n_forced_to_braid() {
        for seed in 0..20 {
            let (net, _) = build_topology(&spec("braided", 3, seed));
            let confluences = net
                .stations()
                .filter(|(sid, _)| net.upstream_of(*sid).count() >= 2)
                .count();
            assert!(confluences >= 1, "seed {seed} produced no confluence");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let (a, ea) = build_topology(&spec("tributaries", 64, 5));
        let (b, eb) = build_topology(&spec("tributaries", 64, 5));
        assert_eq!(a, b);
        assert_eq!(ea, eb);
        let (c, _) = build_topology(&spec("tributaries", 64, 6));
        assert_ne!(a, c);
    }

    #[test]
    fn all_kinds_validate_up_to_512() {
        for kind in ["mainstem", "tributaries", "braided"] {
            for n in [2, 17, 256, 512] {
                let (net, envs) = build_topology(&spec(kind, n, 9));
                assert_eq!(net.len(), n);
                assert_eq!(envs.len(), n);
                // `RiverNetwork::new` validated; also check topo order
                // covers everything exactly once.
                assert_eq!(net.topo_order().len(), n);
            }
        }
    }
}
