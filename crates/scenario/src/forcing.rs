//! The forcing compiler: climate regimes and dam control points as
//! composable transforms over a generated forcing table.
//!
//! A transform is a pure function `rows → rows` (given the scenario's
//! calendar and hydrology context), applied in spec order. Composability
//! is the point: a sweep variant is just the same chain with jittered
//! parameters, and two transforms commute or not exactly as their physics
//! dictates — a heatwave after a drought heats the already-concentrated
//! river.
//!
//! Dams follow the DamStudy shape: a storage pool, a (monthly) release
//! schedule expressed as fractions of mean natural inflow, and an
//! overflow rule spilling a fraction of any excess above capacity. The
//! regulated outflow changes dilution downstream; concentration-like
//! columns of the forcing table scale by the flow ratio, attenuated by
//! the dam's share of the target station's flow.

use gmr_hydro::vars::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One dam/reservoir control point (parsed from the spec's `dams` array).
#[derive(Debug, Clone, PartialEq)]
pub struct DamSpec {
    /// Name of the station whose flow the dam regulates.
    pub station: String,
    /// Storage capacity in the same volume units as daily flow.
    pub capacity: f64,
    /// Twelve monthly release fractions of mean natural inflow.
    pub release: Vec<f64>,
    /// Fraction of storage excess above capacity spilled per day.
    pub overflow: f64,
}

/// A composable forcing transform.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Shift the monsoon-driven wash-in pattern by `days` within each
    /// year (positive = monsoon arrives later).
    MonsoonShift { days: f64 },
    /// An additive temperature bump of `amp` °C over `length` days
    /// starting at day-of-year `start_day`, every year.
    Heatwave {
        start_day: f64,
        length: f64,
        amp: f64,
    },
    /// Scale the water supply: `scale < 1` is drier (lower flow, higher
    /// concentrations), `scale > 1` wetter.
    Drought { scale: f64 },
    /// A dam control point (storage / release schedule / overflow rule).
    Dam(DamSpec),
}

/// Hydrology context a dam transform needs, resolved at scenario compile
/// time: the natural flow series at the dam's station, the travel delay
/// from there to the target, and the dam's share of target flow.
#[derive(Debug, Clone, PartialEq)]
pub struct DamSite {
    /// Natural (unregulated) daily flow at the dam's station.
    pub q_nat: Vec<f64>,
    /// Whole-day travel delay from the dam to the target station.
    pub lag: usize,
    /// Mean share of the target station's flow that passes the dam,
    /// in `[0, 1]`.
    pub share: f64,
}

/// Calendar + hydrology context shared by every transform application.
#[derive(Debug, Clone, PartialEq)]
pub struct ForcingCtx {
    /// Day-of-year (0-based) per row.
    pub doy: Vec<f64>,
    /// Month index (0–11) per row, for dam release schedules.
    pub month: Vec<usize>,
    /// One resolved site per `Transform::Dam`, in transform order.
    pub dams: Vec<DamSite>,
}

/// Columns that carry rain-driven wash-in signal (shifted by monsoon
/// timing): nutrients and transparency.
const WASHIN_COLS: [u8; 4] = [VN, VP, VSI, VSD];

/// Apply a transform chain in order. `ctx.dams[i]` pairs with the i-th
/// `Transform::Dam` of the chain.
pub fn apply_transforms(rows: &mut [[f64; NUM_VARS]], transforms: &[Transform], ctx: &ForcingCtx) {
    let mut dam_idx = 0usize;
    for t in transforms {
        match t {
            Transform::MonsoonShift { days } => monsoon_shift(rows, &ctx.doy, *days),
            Transform::Heatwave {
                start_day,
                length,
                amp,
            } => heatwave(rows, &ctx.doy, *start_day, *length, *amp),
            Transform::Drought { scale } => drought(rows, *scale),
            Transform::Dam(spec) => {
                dam(rows, spec, &ctx.dams[dam_idx], &ctx.month);
                dam_idx += 1;
            }
        }
    }
}

/// Rotate the wash-in columns cyclically within each calendar year.
fn monsoon_shift(rows: &mut [[f64; NUM_VARS]], doy: &[f64], days: f64) {
    let shift = days.round() as i64;
    if shift == 0 {
        return;
    }
    // Year segments: a new year starts where day-of-year resets to 0.
    let mut start = 0usize;
    let mut t = 1usize;
    while start < rows.len() {
        while t < rows.len() && doy[t] != 0.0 {
            t += 1;
        }
        let len = (t - start) as i64;
        let seg: Vec<[f64; NUM_VARS]> = rows[start..t].to_vec();
        for (off, row) in rows[start..t].iter_mut().enumerate() {
            // The pattern at day d now looks like the unshifted pattern
            // at day d - shift (monsoon arriving `shift` days later).
            let src = (off as i64 - shift).rem_euclid(len) as usize;
            for v in WASHIN_COLS {
                row[v as usize] = seg[src][v as usize];
            }
        }
        start = t;
        t += 1;
    }
}

/// Additive smooth temperature bump each year; dissolved oxygen drops
/// with solubility (the generator's own −0.33 °C⁻¹ slope).
fn heatwave(rows: &mut [[f64; NUM_VARS]], doy: &[f64], start_day: f64, length: f64, amp: f64) {
    for (t, row) in rows.iter_mut().enumerate() {
        let d = doy[t] - start_day;
        if (0.0..length).contains(&d) {
            let bump = amp * (std::f64::consts::PI * d / length).sin();
            row[VTMP as usize] = (row[VTMP as usize] + bump).min(38.0);
            row[VDO as usize] = (row[VDO as usize] - 0.33 * bump).max(0.5);
        }
    }
}

/// Water-supply scaling. The generated base couples concentrations to
/// dilution (`80 / flow`), so a drier river concentrates nutrients and
/// salts and runs clearer (less sediment wash-in).
fn drought(rows: &mut [[f64; NUM_VARS]], scale: f64) {
    let conc = scale.powf(-0.5);
    let cond = scale.powf(-0.25);
    let clarity = scale.powf(-0.15);
    for row in rows.iter_mut() {
        row[VN as usize] = (row[VN as usize] * conc).max(0.02);
        row[VP as usize] = (row[VP as usize] * conc).max(0.001);
        row[VSI as usize] = (row[VSI as usize] * conc).max(0.02);
        row[VCD as usize] = (row[VCD as usize] * cond).max(80.0);
        row[VSD as usize] = (row[VSD as usize] * clarity).clamp(0.1, 8.0);
    }
}

/// Run the storage / release-schedule / overflow recurrence over the
/// dam's natural inflow, then scale dilution-sensitive columns by the
/// concentration ratio the regulated flow implies at the target.
fn dam(rows: &mut [[f64; NUM_VARS]], spec: &DamSpec, site: &DamSite, month: &[usize]) {
    let days = rows.len().min(site.q_nat.len());
    if days == 0 {
        return;
    }
    let mean_q = site.q_nat[..days].iter().sum::<f64>() / days as f64;
    // Regulated outflow series at the dam.
    let mut q_reg = vec![0.0f64; days];
    let mut storage = 0.5 * spec.capacity;
    for t in 0..days {
        let inflow = site.q_nat[t];
        let target = spec.release[month[t]] * mean_q;
        let release = target.min(storage + inflow);
        storage += inflow - release;
        let spill = if storage > spec.capacity {
            spec.overflow * (storage - spec.capacity)
        } else {
            0.0
        };
        storage -= spill;
        q_reg[t] = release + spill;
    }
    // Concentration response at the target: target flow changes by
    // `1 + share·(ratio − 1)` where ratio is the dam's outflow over its
    // natural flow, lagged by the travel delay; concentrations scale
    // inversely.
    for (t, row) in rows.iter_mut().enumerate().take(days) {
        let lagged = t.saturating_sub(site.lag);
        let nat = site.q_nat[lagged].max(1e-6);
        let ratio = (q_reg[lagged] / nat).clamp(0.2, 5.0);
        let m = (1.0 / (1.0 + site.share * (ratio - 1.0))).clamp(0.25, 4.0);
        row[VN as usize] = (row[VN as usize] * m).max(0.02);
        row[VP as usize] = (row[VP as usize] * m).max(0.001);
        row[VSI as usize] = (row[VSI as usize] * m).max(0.02);
        row[VCD as usize] = (row[VCD as usize] * m.sqrt()).max(80.0);
        row[VSD as usize] = (row[VSD as usize] * m.powf(-0.25)).clamp(0.1, 8.0);
    }
}

/// Salt folded into the seed for per-variant jitter draws.
const SWEEP_SALT: u64 = 0x7377_6565_7020_7631; // "sweep v1"

/// The transform chain of sweep variant `variant`.
///
/// Variant 0 is the spec's own chain, verbatim. Every other variant
/// jitters each transform parameter deterministically from
/// `(seed, variant)` — multiplicatively by `±spread` for scale-like
/// parameters, additively (±`spread`·30 days) for timing — then clamps
/// back into the spec-valid range. Independent of chunking or execution
/// order: variant `i` is the same chain no matter how the sweep is
/// batched.
pub fn variant_transforms(
    transforms: &[Transform],
    seed: u64,
    spread: f64,
    variant: u32,
) -> Vec<Transform> {
    if variant == 0 {
        return transforms.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(
        seed ^ SWEEP_SALT ^ (variant as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let mul = |rng: &mut StdRng, v: f64, lo: f64, hi: f64| -> f64 {
        let u: f64 = rng.gen_range(-1.0..1.0);
        (v * (1.0 + spread * u)).clamp(lo, hi)
    };
    transforms
        .iter()
        .map(|t| match t {
            Transform::MonsoonShift { days } => {
                let u: f64 = rng.gen_range(-1.0..1.0);
                Transform::MonsoonShift {
                    days: (days + spread * 30.0 * u).clamp(-60.0, 60.0),
                }
            }
            Transform::Heatwave {
                start_day,
                length,
                amp,
            } => {
                let u: f64 = rng.gen_range(-1.0..1.0);
                let start_day = (start_day + spread * 30.0 * u).clamp(0.0, 365.0);
                let length = mul(&mut rng, *length, 1.0, 120.0);
                let amp = mul(&mut rng, *amp, 0.0, 10.0);
                Transform::Heatwave {
                    start_day,
                    length,
                    amp,
                }
            }
            Transform::Drought { scale } => Transform::Drought {
                scale: mul(&mut rng, *scale, 0.2, 2.0),
            },
            Transform::Dam(d) => {
                let capacity = mul(&mut rng, d.capacity, 100.0, 1e7);
                let release = d
                    .release
                    .iter()
                    .map(|r| mul(&mut rng, *r, 0.05, 2.0))
                    .collect();
                let overflow = mul(&mut rng, d.overflow, 0.0, 1.0);
                Transform::Dam(DamSpec {
                    station: d.station.clone(),
                    capacity,
                    release,
                    overflow,
                })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_rows(days: usize) -> Vec<[f64; NUM_VARS]> {
        (0..days)
            .map(|t| {
                let mut r = [1.0; NUM_VARS];
                r[VTMP as usize] = 20.0;
                r[VDO as usize] = 8.0;
                r[VN as usize] = 2.0 + (t as f64 * 0.1).sin();
                r[VCD as usize] = 300.0;
                r[VSD as usize] = 2.0;
                r
            })
            .collect()
    }

    fn ctx(days: usize) -> ForcingCtx {
        // One synthetic 365-day calendar repeated.
        let doy: Vec<f64> = (0..days).map(|t| (t % 365) as f64).collect();
        let month: Vec<usize> = doy.iter().map(|d| (*d as usize / 31).min(11)).collect();
        ForcingCtx {
            doy,
            month,
            dams: vec![],
        }
    }

    #[test]
    fn heatwave_bumps_window_only() {
        let mut rows = flat_rows(365);
        let c = ctx(365);
        apply_transforms(
            &mut rows,
            &[Transform::Heatwave {
                start_day: 100.0,
                length: 10.0,
                amp: 4.0,
            }],
            &c,
        );
        assert_eq!(rows[99][VTMP as usize], 20.0);
        assert!(rows[105][VTMP as usize] > 23.0);
        assert!(rows[105][VDO as usize] < 8.0);
        assert_eq!(rows[111][VTMP as usize], 20.0);
    }

    #[test]
    fn monsoon_shift_rotates_washin_within_year() {
        let mut rows = flat_rows(730);
        let base = rows.clone();
        let c = ctx(730);
        apply_transforms(&mut rows, &[Transform::MonsoonShift { days: 20.0 }], &c);
        // Wash-in columns rotated: day 30 now carries day 10's value.
        assert_eq!(rows[30][VN as usize], base[10][VN as usize]);
        // Second year rotates within itself.
        assert_eq!(rows[365 + 30][VN as usize], base[365 + 10][VN as usize]);
        // Non-wash-in columns untouched.
        assert_eq!(rows[30][VTMP as usize], base[30][VTMP as usize]);
    }

    #[test]
    fn drought_concentrates() {
        let mut rows = flat_rows(10);
        let base = rows.clone();
        let c = ctx(10);
        apply_transforms(&mut rows, &[Transform::Drought { scale: 0.5 }], &c);
        assert!(rows[3][VN as usize] > base[3][VN as usize]);
        assert!(rows[3][VCD as usize] > base[3][VCD as usize]);
        assert!(rows[3][VSD as usize] > base[3][VSD as usize]);
    }

    #[test]
    fn dam_smooths_and_scales() {
        let days = 200;
        let mut rows = flat_rows(days);
        let base = rows.clone();
        let mut c = ctx(days);
        // Strongly seasonal natural flow.
        let q_nat: Vec<f64> = (0..days)
            .map(|t| 60.0 + 50.0 * (t as f64 / 30.0).sin())
            .collect();
        c.dams.push(DamSite {
            q_nat,
            lag: 2,
            share: 0.8,
        });
        let spec = DamSpec {
            station: "n04".into(),
            capacity: 5000.0,
            release: vec![0.5; 12],
            overflow: 0.75,
        };
        apply_transforms(&mut rows, &[Transform::Dam(spec)], &c);
        // Regulated low release concentrates nutrients on high-flow days
        // and the table actually changed.
        assert_ne!(rows, base);
        for row in &rows {
            assert!(row[VN as usize] >= 0.02);
            assert!(row[VSD as usize] <= 8.0);
        }
    }

    #[test]
    fn transforms_compose_in_order() {
        let c = ctx(365);
        let chain = [
            Transform::Drought { scale: 0.6 },
            Transform::Heatwave {
                start_day: 150.0,
                length: 20.0,
                amp: 3.0,
            },
        ];
        let mut ab = flat_rows(365);
        apply_transforms(&mut ab, &chain, &c);
        let mut step = flat_rows(365);
        apply_transforms(&mut step, &chain[..1], &c);
        apply_transforms(&mut step, &chain[1..], &c);
        assert_eq!(ab, step, "chain equals sequential application");
    }

    #[test]
    fn variant_zero_is_base_and_variants_deterministic() {
        let base = vec![
            Transform::Drought { scale: 0.7 },
            Transform::MonsoonShift { days: 10.0 },
        ];
        assert_eq!(variant_transforms(&base, 9, 0.25, 0), base);
        let a = variant_transforms(&base, 9, 0.25, 3);
        let b = variant_transforms(&base, 9, 0.25, 3);
        assert_eq!(a, b);
        assert_ne!(a, base);
        assert_ne!(a, variant_transforms(&base, 9, 0.25, 4));
        // Jitter stays in the valid range.
        for t in &a {
            if let Transform::Drought { scale } = t {
                assert!((0.2..=2.0).contains(scale));
            }
        }
    }
}
