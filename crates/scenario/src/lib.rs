//! # gmr-scenario — parameterized river networks and what-if sweeps
//!
//! The paper's study is one river (the Nakdong), one hydrology, one
//! question. This crate turns that fixed study into a *scenario engine*:
//! a small declarative spec (`gmr-scenario/v1`) describes a river
//! network family, a climate regime, and dam control points, and the
//! engine compiles it into a concrete, bit-deterministic forcing world
//! that the serving stack can sweep over at cluster scale.
//!
//! Three layers:
//!
//! 1. **Topology** ([`build_topology`]) — grows a [`gmr_hydro::RiverNetwork`]
//!    of arbitrary size (mainstem chain, tributary tree, or braided
//!    confluences) from the spec's seed;
//! 2. **Forcing** ([`apply_transforms`]) — composable transforms over the
//!    generated forcing tables: monsoon timing shifts, heatwaves, drought
//!    scaling, and dam storage/release/overflow controls in the
//!    `DamStudy` shape;
//! 3. **Sweep** ([`SweepReducer`]) — fans one scenario into hundreds of
//!    jittered variants ([`CompiledScenario::variant_rows`]) and reduces
//!    each trajectory online to summary statistics.
//!
//! Everything is deterministic: the same spec + seed yields bit-identical
//! topology, forcing tables, variants, and summaries on every host. The
//! serving layer leans on this — a sweep summary computed through batched
//! SIMD lanes must equal the summary reduced from a solo `/simulate`
//! trajectory, bit for bit.

pub mod compile;
pub mod forcing;
pub mod spec;
pub mod sweep;
pub mod topology;

pub use compile::{compile, CompiledScenario, START_YEAR};
pub use forcing::{apply_transforms, variant_transforms, DamSite, DamSpec, ForcingCtx, Transform};
pub use spec::{parse_spec, render_spec, ScenarioSpec, SpecError, TopologyKind, SCHEMA};
pub use sweep::{reduce_series, ReduceSpec, SweepReducer, SweepSummary};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end determinism: spec text → compile → variants is a pure
    /// function of the bytes.
    #[test]
    fn whole_crate_determinism() {
        let src = spec::demo_src();
        let a = compile(&parse_spec(&src).unwrap()).unwrap();
        let b = compile(&parse_spec(&src).unwrap()).unwrap();
        assert_eq!(a, b);
        for v in [0u32, 1, 17, 255] {
            assert_eq!(a.variant_rows(v), b.variant_rows(v), "variant {v}");
        }
        // And the canonical rendering re-parses to the same world.
        let rendered = render_spec(&a.spec);
        let c = compile(&parse_spec(&rendered).unwrap()).unwrap();
        assert_eq!(a, c);
    }
}
