//! Failure injection: the engine must stay well-behaved when the fitness
//! problem misbehaves — lethal fitness everywhere, NaN fitness, a problem
//! with zero fitness cases, and short-circuit controllers that always stop.

use gmr_gp::{Engine, Evaluator, GpConfig, ParamPriors, Phenotype};
use gmr_tag::grammar::test_fixtures::tiny_grammar;

struct Hostile {
    mode: Mode,
}

#[derive(Clone, Copy)]
enum Mode {
    AlwaysInfinite,
    AlwaysNan,
    ZeroCases,
    StopsImmediately,
}

impl Evaluator for Hostile {
    fn num_equations(&self) -> usize {
        1
    }
    fn num_cases(&self) -> usize {
        match self.mode {
            Mode::ZeroCases => 0,
            _ => 64,
        }
    }
    fn evaluate(&self, _ph: &Phenotype, ctl: &mut dyn FnMut(f64, usize) -> bool) -> (f64, bool) {
        match self.mode {
            Mode::AlwaysInfinite => (f64::INFINITY, true),
            Mode::AlwaysNan => (f64::NAN, true),
            Mode::ZeroCases => (f64::INFINITY, true),
            Mode::StopsImmediately => {
                // Report a terrible running fitness right away.
                if !ctl(1e30, 1) {
                    return (1e30, false);
                }
                (1.0, true)
            }
        }
    }
}

fn cfg(seed: u64) -> GpConfig {
    GpConfig {
        pop_size: 12,
        max_gen: 3,
        min_size: 1,
        max_size: 8,
        local_search_steps: 1,
        threads: 2,
        seed,
        ..GpConfig::default()
    }
}

fn priors() -> ParamPriors {
    ParamPriors::new([(2.0, 0.0, 4.0), (0.5, 0.0, 1.0)])
}

#[test]
fn survives_always_infinite_fitness() {
    let (g, _) = tiny_grammar();
    let problem = Hostile {
        mode: Mode::AlwaysInfinite,
    };
    let report = Engine::new(&g, &problem, priors(), cfg(1)).run();
    assert_eq!(report.best.fitness, f64::INFINITY);
    assert!(report.best.tree.validate(&g).is_ok());
    assert_eq!(report.history.len(), 4);
}

#[test]
fn survives_nan_fitness() {
    let (g, _) = tiny_grammar();
    let problem = Hostile {
        mode: Mode::AlwaysNan,
    };
    let report = Engine::new(&g, &problem, priors(), cfg(2)).run();
    // NaN is treated as worst-possible by total ordering; the run completes
    // and the champion is structurally valid.
    assert!(report.best.tree.validate(&g).is_ok());
    assert!(report.evaluations > 0);
}

#[test]
fn survives_zero_fitness_cases() {
    let (g, _) = tiny_grammar();
    let problem = Hostile {
        mode: Mode::ZeroCases,
    };
    let report = Engine::new(&g, &problem, priors(), cfg(3)).run();
    assert!(report.best.tree.validate(&g).is_ok());
}

#[test]
fn survives_controller_that_always_stops() {
    let (g, _) = tiny_grammar();
    let problem = Hostile {
        mode: Mode::StopsImmediately,
    };
    let report = Engine::new(&g, &problem, priors(), cfg(4)).run();
    // With ES active every evaluation may be short-circuited; the final
    // champion is still re-evaluated fully at the end of the run.
    assert!(report.best.fully_evaluated);
    assert_eq!(report.best.fitness, 1.0);
}

#[test]
fn zero_probability_operators_degenerate_to_replication() {
    // All operator mass on replication: fitness can never improve beyond
    // generation zero, but the run must still complete and stay sorted.
    struct Constant;
    impl Evaluator for Constant {
        fn num_equations(&self) -> usize {
            1
        }
        fn num_cases(&self) -> usize {
            4
        }
        fn evaluate(
            &self,
            ph: &Phenotype,
            _ctl: &mut dyn FnMut(f64, usize) -> bool,
        ) -> (f64, bool) {
            (ph.eqs()[0].size() as f64, true) // smaller trees are fitter
        }
    }
    let (g, _) = tiny_grammar();
    let mut c = cfg(5);
    c.p_crossover = 0.0;
    c.p_subtree_mut = 0.0;
    c.p_gauss_mut = 0.0;
    c.local_search_steps = 0;
    let report = Engine::new(&g, &Constant, priors(), c).run();
    let gen0 = report.history[0].best;
    assert_eq!(report.best.fitness, gen0, "replication-only cannot improve");
}
