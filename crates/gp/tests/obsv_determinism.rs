//! Observability must be off the fitness path: installing the journal and
//! raising span detail to Fine cannot move a single bit of the search.
//!
//! This lives in its own test binary because the contract is about the
//! *process-global* journal: the off-arm must run before `gmr_obsv::init`
//! ever executes in the process, which no test sharing a binary could
//! guarantee. One test function sequences both arms.
//!
//! Compiled with `--no-default-features` the same test doubles as the
//! compiled-out proof: every instrumentation call site is a no-op and the
//! journal stays uninstalled.

use gmr_expr::EvalContext;
use gmr_gp::short_circuit::Extrapolate;
use gmr_gp::{Engine, Evaluator, GpConfig, ParamPriors, Phenotype};
use gmr_tag::grammar::test_fixtures::tiny_grammar;

/// Fit `y = 2x - 1` with a short-circuit checkpoint every 8 cases — the
/// same workload `determinism.rs` pins across thread counts.
struct LineFit {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LineFit {
    fn new() -> Self {
        let xs: Vec<f64> = (0..64).map(|i| i as f64 / 4.0).collect();
        let ys = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        LineFit { xs, ys }
    }
}

impl Evaluator for LineFit {
    fn num_equations(&self) -> usize {
        1
    }
    fn num_cases(&self) -> usize {
        self.xs.len()
    }
    fn evaluate(&self, ph: &Phenotype, ctl: &mut dyn FnMut(f64, usize) -> bool) -> (f64, bool) {
        let eq = &ph.eqs()[0];
        let comp = ph.compiled();
        let mut scratch = comp.map(|sys| sys.scratch());
        let mut out = [0.0f64];
        let mut sse = 0.0;
        for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
            let state = [x];
            let ctx = EvalContext {
                vars: &[0.0],
                state: &state,
            };
            let p = match (&comp, &mut scratch) {
                (Some(sys), Some(scratch)) => {
                    sys.eval_step(&ctx, scratch, &mut out);
                    out[0]
                }
                _ => eq.eval(&ctx),
            };
            let d = p - y;
            sse += d * d;
            let done = i + 1;
            if done % 8 == 0 && done < self.xs.len() {
                let running = (sse / done as f64).sqrt();
                if !ctl(running, done) {
                    return (running, false);
                }
            }
        }
        ((sse / self.xs.len() as f64).sqrt(), true)
    }
}

/// The matrix both arms run: extrapolation mode × thread count.
const MATRIX: [(Extrapolate, usize); 4] = [
    (Extrapolate::Optimistic, 1),
    (Extrapolate::Optimistic, 4),
    (Extrapolate::RunningRmse, 1),
    (Extrapolate::RunningRmse, 4),
];

/// Run once and return the (best, mean) trajectory as raw bits.
fn trajectory(extrapolate: Extrapolate, threads: usize) -> Vec<(u64, u64)> {
    let (g, _) = tiny_grammar();
    let problem = LineFit::new();
    let priors = ParamPriors::new([(2.0, 0.0, 4.0), (0.5, 0.0, 1.0)]);
    let cfg = GpConfig {
        pop_size: 32,
        max_gen: 10,
        min_size: 2,
        max_size: 10,
        local_search_steps: 2,
        es_threshold: Some(1.1),
        extrapolate,
        threads,
        seed: 45,
        ..GpConfig::default()
    };
    let report = Engine::new(&g, &problem, priors, cfg).run();
    report
        .history
        .iter()
        .map(|s| (s.best.to_bits(), s.mean.to_bits()))
        .collect()
}

#[test]
fn trajectories_bit_identical_with_observability_on_and_off() {
    // Arm 1: journal uninstalled — every span site is one atomic load.
    assert!(
        gmr_obsv::global().is_none(),
        "the off-arm must run before any init() in this process"
    );
    let off: Vec<Vec<(u64, u64)>> = MATRIX.iter().map(|&(e, t)| trajectory(e, t)).collect();

    // Arm 2: journal recording at the chattiest detail level.
    gmr_obsv::init(gmr_obsv::DEFAULT_CAPACITY);
    gmr_obsv::span::set_detail(gmr_obsv::Detail::Fine);
    let on: Vec<Vec<(u64, u64)>> = MATRIX.iter().map(|&(e, t)| trajectory(e, t)).collect();

    for ((&(e, t), off), on) in MATRIX.iter().zip(&off).zip(&on) {
        assert_eq!(
            off, on,
            "fitness trajectory moved when observability was enabled \
             (extrapolate {e:?}, threads {t})"
        );
    }

    // With the feature compiled in, arm 2 must actually have recorded —
    // otherwise this test proves nothing.
    if cfg!(feature = "obsv") {
        assert!(gmr_obsv::enabled(), "init() should install the journal");
        let recs = gmr_obsv::drain();
        assert!(
            recs.iter().any(|r| matches!(
                r.event,
                gmr_obsv::Event::Span {
                    name: "gen.evaluate",
                    ..
                }
            )),
            "expected gen.evaluate spans in the journal, got {} events",
            recs.len()
        );
        assert!(
            recs.iter()
                .any(|r| matches!(r.event, gmr_obsv::Event::Gen { .. })),
            "expected per-generation events in the journal"
        );
    } else {
        assert!(
            !gmr_obsv::enabled() && gmr_obsv::global().is_none(),
            "with the feature off, init() must stay a no-op"
        );
    }
}
