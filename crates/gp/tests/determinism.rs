//! Thread-count invariance: the per-generation best-fitness trajectory must
//! be bit-identical for any `threads` setting at a fixed seed.
//!
//! The engine's determinism contract (see `engine.rs` module docs) is that
//! parallelism only reorders *when* candidates are evaluated inside a
//! round, never *what* they evaluate against: the short-circuit baseline is
//! snapshotted at round boundaries, so each evaluation is a pure function
//! of (phenotype, round baseline). These tests pin that contract: a single
//! bit of fitness divergence between thread counts is a bug, not noise.

use gmr_expr::EvalContext;
use gmr_gp::short_circuit::Extrapolate;
use gmr_gp::{Engine, Evaluator, GpConfig, ParamPriors, Phenotype};
use gmr_tag::grammar::test_fixtures::tiny_grammar;

/// Fit `y = 2x - 1` — same reachable target the engine's unit tests use,
/// with a short-circuit checkpoint every 8 cases so ES actually engages.
struct LineFit {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LineFit {
    fn new() -> Self {
        let xs: Vec<f64> = (0..64).map(|i| i as f64 / 4.0).collect();
        let ys = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        LineFit { xs, ys }
    }
}

impl Evaluator for LineFit {
    fn num_equations(&self) -> usize {
        1
    }
    fn num_cases(&self) -> usize {
        self.xs.len()
    }
    fn evaluate(&self, ph: &Phenotype, ctl: &mut dyn FnMut(f64, usize) -> bool) -> (f64, bool) {
        let eq = &ph.eqs()[0];
        let comp = ph.compiled();
        let mut scratch = comp.map(|sys| sys.scratch());
        let mut out = [0.0f64];
        let mut sse = 0.0;
        for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
            let state = [x];
            // tiny_grammar's pool includes Var(0); supply its (constant 0.0)
            // slot so arity-checked compiled programs accept the system.
            let ctx = EvalContext {
                vars: &[0.0],
                state: &state,
            };
            let p = match (&comp, &mut scratch) {
                (Some(sys), Some(scratch)) => {
                    sys.eval_step(&ctx, scratch, &mut out);
                    out[0]
                }
                _ => eq.eval(&ctx),
            };
            let d = p - y;
            sse += d * d;
            let done = i + 1;
            if done % 8 == 0 && done < self.xs.len() {
                let running = (sse / done as f64).sqrt();
                if !ctl(running, done) {
                    return (running, false);
                }
            }
        }
        ((sse / self.xs.len() as f64).sqrt(), true)
    }
}

fn cfg(threads: usize, extrapolate: Extrapolate, seed: u64) -> GpConfig {
    GpConfig {
        pop_size: 32,
        max_gen: 12,
        min_size: 2,
        max_size: 10,
        local_search_steps: 2,
        es_threshold: Some(1.1),
        extrapolate,
        threads,
        seed,
        ..GpConfig::default()
    }
}

/// Run once and return the (best, mean) fitness trajectory as raw bits.
fn trajectory(threads: usize, extrapolate: Extrapolate, seed: u64) -> Vec<(u64, u64)> {
    let (g, _) = tiny_grammar();
    let problem = LineFit::new();
    let priors = ParamPriors::new([(2.0, 0.0, 4.0), (0.5, 0.0, 1.0)]);
    let report = Engine::new(&g, &problem, priors, cfg(threads, extrapolate, seed)).run();
    assert_eq!(
        report.history.len(),
        13,
        "one record per generation + gen 0"
    );
    report
        .history
        .iter()
        .map(|s| (s.best.to_bits(), s.mean.to_bits()))
        .collect()
}

fn assert_thread_invariant(extrapolate: Extrapolate, seed: u64) {
    let reference = trajectory(1, extrapolate, seed);
    for threads in [2usize, 4, 8] {
        let t = trajectory(threads, extrapolate, seed);
        assert_eq!(
            reference, t,
            "fitness trajectory diverged between threads=1 and threads={threads} \
             (extrapolate {extrapolate:?}, seed {seed})"
        );
    }
}

#[test]
fn trajectories_bit_identical_across_thread_counts_optimistic() {
    assert_thread_invariant(Extrapolate::Optimistic, 42);
}

#[test]
fn trajectories_bit_identical_across_thread_counts_running_rmse() {
    // The eager extrapolation mode short-circuits far more aggressively, so
    // it exercises the baseline-snapshot path harder.
    assert_thread_invariant(Extrapolate::RunningRmse, 43);
}

#[test]
fn trajectories_bit_identical_with_cache_and_compilation_off() {
    // Determinism must not depend on the memo layers masking divergence.
    let run = |threads: usize| {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let priors = ParamPriors::new([(2.0, 0.0, 4.0), (0.5, 0.0, 1.0)]);
        let mut c = cfg(threads, Extrapolate::RunningRmse, 44);
        c.use_cache = false;
        c.use_compiled = false;
        let report = Engine::new(&g, &problem, priors, c).run();
        (
            report.best.fitness.to_bits(),
            report
                .history
                .iter()
                .map(|s| s.best.to_bits())
                .collect::<Vec<_>>(),
        )
    };
    let reference = run(1);
    for threads in [2usize, 4, 8] {
        assert_eq!(reference, run(threads), "divergence at threads={threads}");
    }
}
