//! The generational TAG3P engine.
//!
//! One generation (the red loop of Fig. 5): evaluate the population, select
//! parents by tournament, produce a revised population with the genetic
//! operators (probabilities from the paper's Appendix B), run stochastic
//! hill-climbing local search on each offspring, and carry the elite over.
//! The three §III-D speed-ups — tree caching, evaluation short-circuiting
//! and runtime compilation — are independent switches in [`GpConfig`], which
//! is exactly what the Fig. 10 experiment toggles.
//!
//! Determinism: a run's fitness trajectory is a pure function of the seed
//! for **any** `threads` value. Per-individual RNG streams are derived from
//! the global candidate index, evaluation rounds snapshot the
//! short-circuiting baseline (`bestPrevFull`) at round boundaries, and the
//! only cross-thread write — `fetch_min` on that baseline — is commutative,
//! so thread interleaving can change *which worker* runs a candidate but
//! never what the candidate computes. See DESIGN.md, "Evaluation pool".

use crate::cache::{CachedFitness, TreeCache};
use crate::individual::Individual;
use crate::operators::{
    crossover, deletion, gaussian_mutation_partial, insertion, param_tweak, subtree_mutation,
    DEFAULT_RETRIES,
};
use crate::phenotype::Phenotype;
use crate::pool::{with_pool, EvalPool, PoolStats};
use crate::priors::ParamPriors;
use crate::short_circuit::{AtomicF64, EsController, EsOutcome, Extrapolate};
use gmr_expr::{simplify, Expr};
use gmr_obsv::metrics::{Counter, Registry, Sample};
use gmr_obsv::Event;
use gmr_tag::lower::{lower, lower_system};
use gmr_tag::{DerivTree, Grammar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fitness problem. Implementations integrate the lowered equation system
/// over their fitness cases, reporting the running fitness to `ctl` at
/// checkpoints; `ctl` returning `false` aborts (short-circuit).
pub trait Evaluator: Sync {
    /// Number of equations the derivation's root encodes (2 for the river
    /// system; 1 for single-equation problems).
    fn num_equations(&self) -> usize;
    /// Number of fitness cases (time steps).
    fn num_cases(&self) -> usize;
    /// Evaluate a derived phenotype; returns `(fitness, fully_evaluated)`.
    ///
    /// When [`Phenotype::compiled`] is `Some`, the engine compiled the
    /// system once per genotype and the implementation should run the
    /// bytecode instead of interpreting [`Phenotype::eqs`].
    fn evaluate(&self, ph: &Phenotype, ctl: &mut dyn FnMut(f64, usize) -> bool) -> (f64, bool);
}

/// Engine configuration. Defaults are the paper's Appendix B settings.
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// Population size (paper: 200).
    pub pop_size: usize,
    /// Number of generations (paper: 100).
    pub max_gen: usize,
    /// Minimum chromosome (derivation-tree) size (paper: 2).
    pub min_size: usize,
    /// Maximum chromosome size (paper: 50).
    pub max_size: usize,
    /// Tournament size (paper: 5).
    pub tournament: usize,
    /// Elite size (paper: 2).
    pub elite: usize,
    /// Crossover probability (paper: 0.3).
    pub p_crossover: f64,
    /// Subtree-mutation probability (paper: 0.3).
    pub p_subtree_mut: f64,
    /// Gaussian-mutation probability (paper: 0.3; the remaining mass is
    /// replication).
    pub p_gauss_mut: f64,
    /// Per-constant resample probability inside Gaussian mutation. The
    /// paper resamples every constant (1.0); the default 0.3 is a
    /// coordinate-wise walk that needs far fewer evaluations to calibrate
    /// (documented deviation; see DESIGN.md).
    pub p_param_each: f64,
    /// Draw the initial population's constants from the truncated-Gaussian
    /// priors instead of pinning them at the means. §III-B3 assumes
    /// naturally occurring values follow that prior; sampling it at
    /// initialisation diversifies generation zero.
    pub init_params_from_prior: bool,
    /// Local-search steps per offspring (paper: 5).
    pub local_search_steps: usize,
    /// Include fine-grained single-constant tweaks among the local-search
    /// moves (alongside the paper's insertion/deletion). Essential at small
    /// evaluation budgets; see DESIGN.md.
    pub ls_param_tweak: bool,
    /// Evaluation short-circuiting threshold; `None` disables ES.
    pub es_threshold: Option<f64>,
    /// ES extrapolation method. `Optimistic` (the default) only stops
    /// evaluations that *cannot* beat the baseline even with a perfect
    /// remaining suffix — immune to transient running-RMSE spikes;
    /// `RunningRmse` is the paper's eager variant (Fig. 11 sweeps its
    /// threshold).
    pub extrapolate: Extrapolate,
    /// Tree caching on/off.
    pub use_cache: bool,
    /// Runtime compilation (bytecode VM) on/off.
    pub use_compiled: bool,
    /// Total cache entry budget.
    pub cache_capacity: usize,
    /// Ramp the Gaussian-mutation σ down linearly over the final k
    /// generations (§III-B3).
    pub sigma_ramp_last: usize,
    /// σ scale reached at the final generation.
    pub sigma_floor: f64,
    /// Worker threads for fitness evaluation (1 = fully deterministic).
    pub threads: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            pop_size: 200,
            max_gen: 100,
            min_size: 2,
            max_size: 50,
            tournament: 5,
            elite: 2,
            p_crossover: 0.3,
            p_subtree_mut: 0.3,
            p_gauss_mut: 0.3,
            p_param_each: 0.3,
            init_params_from_prior: true,
            local_search_steps: 5,
            ls_param_tweak: true,
            es_threshold: Some(1.0),
            extrapolate: Extrapolate::Optimistic,
            use_cache: true,
            use_compiled: true,
            cache_capacity: 1 << 18,
            sigma_ramp_last: 20,
            sigma_floor: 0.1,
            threads: 1,
            seed: 0,
        }
    }
}

/// Per-generation progress record.
#[derive(Debug, Clone, Copy)]
pub struct GenStats {
    /// Generation index (0 = initial population).
    pub generation: usize,
    /// Best fitness in the population.
    pub best: f64,
    /// Mean finite fitness.
    pub mean: f64,
    /// Cumulative fitness evaluations so far.
    pub evaluations: u64,
    /// Cumulative integrated time steps so far.
    pub evaluated_steps: u64,
    /// Wall time of this generation.
    pub elapsed: Duration,
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The best individual found (fully re-evaluated).
    pub best: Individual,
    /// Per-generation statistics.
    pub history: Vec<GenStats>,
    /// Total fitness evaluations (cache hits excluded).
    pub evaluations: u64,
    /// Total integrated time steps (the Fig. 11 "# evaluated time steps").
    pub evaluated_steps: u64,
    /// Evaluations that ran to completion.
    pub full_evaluations: u64,
    /// Evaluations stopped by short-circuiting.
    pub short_circuited: u64,
    /// Final cache hit rate.
    pub cache_hit_rate: f64,
    /// Tree-cache hits.
    pub cache_hits: u64,
    /// Tree-cache misses.
    pub cache_misses: u64,
    /// Phenotypes derived (lower + simplify + hash, plus compile when
    /// runtime compilation is on).
    pub pheno_builds: u64,
    /// Evaluations that reused a memoised phenotype instead of re-deriving.
    pub pheno_reuses: u64,
    /// Register-VM equations compiled (one per equation per build when
    /// runtime compilation is on; equations of one system compile together
    /// so cross-equation CSE can share work).
    pub compiles: u64,
    /// Evaluation-pool statistics: per-worker candidates, steals, idle time.
    pub pool: PoolStats,
    /// Fraction of the final population's top ten whose recorded fitness
    /// came from a full evaluation (Fig. 11's "% fully evaluated among
    /// best").
    pub top_full_fraction: f64,
    /// Snapshot of the engine's metric registry at the end of the run —
    /// the same counters the scalar fields above are read from, plus
    /// whatever else was registered during the run.
    pub metrics: Vec<(String, Sample)>,
}

impl RunReport {
    /// The generation at which the champion's fitness was first reached —
    /// the earliest history entry whose per-generation best matches the
    /// final best. Artifact provenance records this so a served model can
    /// be traced to the point in the run that produced it.
    pub fn champion_generation(&self) -> u64 {
        self.history
            .iter()
            .find(|g| g.best <= self.best.fitness)
            .map(|g| g.generation as u64)
            .unwrap_or(self.history.len().saturating_sub(1) as u64)
    }

    /// The per-generation history as CSV (`generation,best,mean,evaluations,
    /// evaluated_steps,elapsed_ms`) — convenient for plotting convergence
    /// curves without further tooling.
    pub fn history_csv(&self) -> String {
        let mut out = String::from("generation,best,mean,evaluations,evaluated_steps,elapsed_ms\n");
        for g in &self.history {
            out.push_str(&format!(
                "{},{},{},{},{},{:.3}\n",
                g.generation,
                g.best,
                g.mean,
                g.evaluations,
                g.evaluated_steps,
                g.elapsed.as_secs_f64() * 1e3,
            ));
        }
        out
    }

    /// The full report as a JSON object: champion summary, the §III-D
    /// counters, per-worker pool accounting, the metric-registry snapshot
    /// and the per-generation history. Written next to each experiment's
    /// CSV output so runs stay machine-inspectable after the process exits.
    pub fn to_json(&self) -> String {
        use gmr_obsv::json::{push_escaped, push_f64};
        let mut o = String::from("{\n  \"best\": {\"fitness\": ");
        push_f64(&mut o, self.best.fitness);
        o.push_str(&format!(
            ", \"size\": {}, \"fully_evaluated\": {}, \"origin\": ",
            self.best.tree.size(),
            self.best.fully_evaluated
        ));
        push_escaped(&mut o, self.best.origin);
        o.push_str("},\n");
        o.push_str(&format!(
            "  \"evaluations\": {}, \"evaluated_steps\": {}, \"full_evaluations\": {}, \"short_circuited\": {},\n",
            self.evaluations, self.evaluated_steps, self.full_evaluations, self.short_circuited
        ));
        o.push_str("  \"cache_hit_rate\": ");
        push_f64(&mut o, self.cache_hit_rate);
        o.push_str(&format!(
            ", \"cache_hits\": {}, \"cache_misses\": {},\n  \"pheno_builds\": {}, \"pheno_reuses\": {}, \"compiles\": {},\n",
            self.cache_hits, self.cache_misses, self.pheno_builds, self.pheno_reuses, self.compiles
        ));
        o.push_str("  \"top_full_fraction\": ");
        push_f64(&mut o, self.top_full_fraction);
        o.push_str(&format!(
            ",\n  \"pool\": {{\"rounds\": {}, \"workers\": [",
            self.pool.rounds
        ));
        for (i, w) in self.pool.workers.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str(&format!(
                "{{\"worker\": {}, \"candidates\": {}, \"claims\": {}, \"steals\": {}, \"busy_ms\": {:.3}, \"idle_ms\": {:.3}}}",
                w.worker,
                w.candidates,
                w.claims,
                w.steals,
                w.busy.as_secs_f64() * 1e3,
                w.idle.as_secs_f64() * 1e3
            ));
        }
        o.push_str("]},\n  \"metrics\": ");
        o.push_str(&gmr_obsv::metrics::snapshot_json(&self.metrics));
        o.push_str(",\n  \"history\": [");
        for (i, g) in self.history.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str(&format!("{{\"generation\": {}, \"best\": ", g.generation));
            push_f64(&mut o, g.best);
            o.push_str(", \"mean\": ");
            push_f64(&mut o, g.mean);
            o.push_str(&format!(
                ", \"evaluations\": {}, \"evaluated_steps\": {}, \"elapsed_ms\": {:.3}}}",
                g.evaluations,
                g.evaluated_steps,
                g.elapsed.as_secs_f64() * 1e3
            ));
        }
        o.push_str("]\n}\n");
        o
    }
}

/// A per-generation invariant check over the elite: called after each
/// generation's survivor selection with the generation index, an elite
/// genotype and its lowered (simplified) phenotype. Used by `gmr-core` to
/// run the `gmr-lint` battery over whatever the search currently believes in
/// — a static-analysis tripwire for search-layer bugs (constants escaping
/// their priors, lexemes the grammar should never have produced).
pub type InvariantHook<'a> = Box<dyn Fn(usize, &DerivTree, &[Expr]) + Sync + 'a>;

/// The TAG3P engine.
pub struct Engine<'a, E: Evaluator> {
    grammar: &'a Grammar,
    evaluator: &'a E,
    priors: ParamPriors,
    cfg: GpConfig,
    cache: TreeCache,
    invariant_hook: Option<InvariantHook<'a>>,
    best_prev_full: AtomicF64,
    /// The engine's metric sheet. The counters below are registered in it
    /// under `engine.*` names, so one snapshot carries everything the
    /// scalar `RunReport` fields report (plus anything registered later).
    metrics: Registry,
    evals: Arc<Counter>,
    steps: Arc<Counter>,
    fulls: Arc<Counter>,
    shorts: Arc<Counter>,
    pheno_builds: Arc<Counter>,
    pheno_reuses: Arc<Counter>,
    compiles: Arc<Counter>,
}

/// Cumulative counter values at a generation boundary; consecutive
/// snapshots give the per-generation deltas reported in `gen` journal
/// events.
#[derive(Clone, Copy, Default)]
struct CounterSnap {
    evals: u64,
    fulls: u64,
    shorts: u64,
    hits: u64,
    misses: u64,
}

fn mix_seed(master: u64, gen: u64, idx: u64) -> u64 {
    let mut x = master ^ gen.rotate_left(17) ^ idx.rotate_left(41) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl<'a, E: Evaluator> Engine<'a, E> {
    /// Assemble an engine.
    pub fn new(grammar: &'a Grammar, evaluator: &'a E, priors: ParamPriors, cfg: GpConfig) -> Self {
        let cache = TreeCache::new(cfg.cache_capacity);
        let metrics = Registry::new();
        let evals = metrics.counter("engine.evals");
        let steps = metrics.counter("engine.steps");
        let fulls = metrics.counter("engine.full_evals");
        let shorts = metrics.counter("engine.short_circuits");
        let pheno_builds = metrics.counter("engine.pheno_builds");
        let pheno_reuses = metrics.counter("engine.pheno_reuses");
        let compiles = metrics.counter("engine.compiles");
        Engine {
            grammar,
            evaluator,
            priors,
            cfg,
            cache,
            invariant_hook: None,
            best_prev_full: AtomicF64::new(f64::INFINITY),
            metrics,
            evals,
            steps,
            fulls,
            shorts,
            pheno_builds,
            pheno_reuses,
            compiles,
        }
    }

    /// The engine's metric registry — counters/gauges/histograms
    /// snapshotted into every [`RunReport`]. Callers may register their own
    /// instruments here before [`Self::run`].
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The configuration in force.
    pub fn config(&self) -> &GpConfig {
        &self.cfg
    }

    /// Install a per-generation elite invariant check (see [`InvariantHook`]).
    /// Must be called before [`Self::run`]; the hook observes every recorded
    /// generation, including generation zero.
    pub fn set_invariant_hook(&mut self, hook: impl Fn(usize, &DerivTree, &[Expr]) + Sync + 'a) {
        self.invariant_hook = Some(Box::new(hook));
    }

    /// Run the installed invariant hook over the current elite.
    fn check_invariants(&self, gen: usize, pop: &[Individual]) {
        let Some(hook) = &self.invariant_hook else {
            return;
        };
        for ind in pop.iter().take(self.cfg.elite.max(1)) {
            // Corrupted genotypes already carry lethal fitness; the hook
            // only sees what actually lowers. The elite's memoised
            // phenotype makes this a lookup, not a re-derivation.
            if let Some(ph) = &ind.pheno {
                hook(gen, &ind.tree, ph.eqs());
            } else if let Ok(eqs) = self.phenotype(&ind.tree) {
                hook(gen, &ind.tree, &eqs);
            }
        }
    }

    /// Lower a genotype to its (simplified) equation system.
    pub fn phenotype(&self, tree: &DerivTree) -> Result<Vec<Expr>, gmr_tag::LowerError> {
        let derived = tree.derived(self.grammar);
        let eqs = if self.evaluator.num_equations() == 1 {
            vec![lower(&derived)?]
        } else {
            lower_system(&derived, self.evaluator.num_equations())?
        };
        Ok(eqs.iter().map(simplify).collect())
    }

    /// Derive the full phenotype (lower + simplify + hash + compile),
    /// updating the build counters.
    fn build_phenotype(&self, tree: &DerivTree) -> Result<Phenotype, gmr_tag::LowerError> {
        let eqs = self.phenotype(tree)?;
        self.pheno_builds.inc();
        if self.cfg.use_compiled {
            self.compiles.add(eqs.len() as u64);
        }
        Ok(Phenotype::build(eqs, self.cfg.use_compiled))
    }

    /// The individual's memoised phenotype, deriving (and storing) it on
    /// first use. `None` for corrupted genotypes that fail to lower.
    fn ensure_phenotype(&self, ind: &mut Individual) -> Option<Arc<Phenotype>> {
        if let Some(ph) = &ind.pheno {
            self.pheno_reuses.inc();
            return Some(Arc::clone(ph));
        }
        let ph = Arc::new(self.build_phenotype(&ind.tree).ok()?);
        ind.pheno = Some(Arc::clone(&ph));
        Some(ph)
    }

    /// Evaluate a derived phenotype against a short-circuiting baseline
    /// snapshot, with whichever §III-D techniques are enabled. Returns
    /// `(fitness, fully_evaluated)`.
    ///
    /// The result is a pure function of `(phenotype, baseline)` — that
    /// purity is what makes round-snapshotted baselines yield bit-identical
    /// fitness for any thread count.
    fn evaluate_phenotype(&self, ph: &Phenotype, baseline: f64) -> (f64, bool) {
        let key = if self.cfg.use_cache {
            let key = ph.key();
            if let Some(hit) = self.cache.get(key) {
                return (hit.fitness, hit.full);
            }
            Some(key)
        } else {
            None
        };

        let es = match self.cfg.es_threshold {
            Some(th) => EsController {
                threshold: th,
                best_prev_full: baseline,
                extrapolate: self.cfg.extrapolate,
            },
            None => EsController::disabled(),
        };
        let total = self.evaluator.num_cases();
        let mut last_done = 0usize;
        let mut ctl = |running: f64, done: usize| -> bool {
            last_done = done;
            match es.check(running, done, total) {
                EsOutcome::Continue => true,
                EsOutcome::Stop(_) => false,
            }
        };
        let (fitness, full) = {
            let _sp = gmr_obsv::span_fine!("vm.simulate");
            self.evaluator.evaluate(ph, &mut ctl)
        };

        self.evals.inc();
        if full {
            self.steps.add(total as u64);
            self.fulls.inc();
            // A NaN from a misbehaving evaluator must not poison the ES
            // baseline (NaN wins every fetch_min comparison from then on).
            if !fitness.is_nan() {
                self.best_prev_full.fetch_min(fitness);
            }
        } else {
            self.steps.add(last_done as u64);
            self.shorts.inc();
        }
        if let Some(key) = key {
            self.cache.insert(key, CachedFitness { fitness, full });
        }
        (fitness, full)
    }

    /// Evaluate one genotype with whichever §III-D techniques are enabled,
    /// against the live short-circuiting baseline. Returns
    /// `(fitness, fully_evaluated)`.
    pub fn evaluate_tree(&self, tree: &DerivTree) -> (f64, bool) {
        let Ok(ph) = self.build_phenotype(tree) else {
            // Grammar-generated trees always lower; a failure here is a
            // corrupted genotype — lethal fitness, never a crash.
            return (f64::INFINITY, true);
        };
        self.evaluate_phenotype(&ph, self.best_prev_full.load())
    }

    fn counter_snap(&self) -> CounterSnap {
        CounterSnap {
            evals: self.evals.get(),
            fulls: self.fulls.get(),
            shorts: self.shorts.get(),
            hits: self.cache.stats().hits(),
            misses: self.cache.stats().misses(),
        }
    }

    /// Journal one generation's statistics with counter deltas since the
    /// previous boundary. Pure observation — reads counters, never fitness
    /// state.
    fn emit_gen_event(&self, gs: &GenStats, prev: &mut CounterSnap) {
        let cur = self.counter_snap();
        if gmr_obsv::enabled() {
            gmr_obsv::emit(Event::Gen {
                seed: self.cfg.seed,
                generation: gs.generation as u64,
                best: gs.best,
                mean: gs.mean,
                evaluations: gs.evaluations,
                steps: gs.evaluated_steps,
                elapsed_us: gs.elapsed.as_micros() as u64,
                d_evals: cur.evals - prev.evals,
                d_fulls: cur.fulls - prev.fulls,
                d_shorts: cur.shorts - prev.shorts,
                d_cache_hits: cur.hits - prev.hits,
                d_cache_misses: cur.misses - prev.misses,
            });
        }
        *prev = cur;
    }

    /// Journal an elite change (strict improvement of the population's
    /// best), carrying the revision operator that produced the new elite.
    fn emit_elite_event(&self, gen: usize, pop: &[Individual], prev_best: &mut f64) {
        let Some(best) = pop.first() else { return };
        if best.fitness < *prev_best {
            *prev_best = best.fitness;
            if gmr_obsv::enabled() {
                gmr_obsv::emit(Event::EliteChange {
                    seed: self.cfg.seed,
                    generation: gen as u64,
                    fitness: best.fitness,
                    size: best.tree.size() as u64,
                    origin: best.origin,
                });
                // Opcode-pair statistics of the new elite's simplified
                // system — pre-aggregated here so the journal stays
                // expression-free. `gmr-trace opcodes` sums these into
                // the corpus that drives superinstruction selection.
                if let Some(pheno) = &best.pheno {
                    let counts = gmr_expr::pair_counts(pheno.eqs());
                    gmr_obsv::emit(Event::Opcodes {
                        seed: self.cfg.seed,
                        generation: gen as u64,
                        total: gmr_expr::total_pairs(&counts),
                        pairs: counts
                            .into_iter()
                            .map(|c| (c.parent.to_string(), c.child.to_string(), c.pos, c.count))
                            .collect(),
                    });
                }
            }
        }
    }

    /// Journal the pool's cumulative accounting at a round boundary — the
    /// mid-run visibility the shutdown-only stats collection used to lack.
    fn emit_round_event(&self, pool: &EvalPool, kind: &'static str, len: usize) {
        if !gmr_obsv::enabled() {
            return;
        }
        let snap = pool.snapshot();
        gmr_obsv::emit(Event::Round {
            seed: self.cfg.seed,
            round: snap.rounds,
            kind,
            len: len as u64,
            workers: snap.workers.len() as u64,
            candidates: snap.total_candidates(),
            steals: snap.total_steals(),
            busy_us: snap.total_busy().as_micros() as u64,
            idle_us: snap.total_idle().as_micros() as u64,
        });
    }

    fn evaluate_population(&self, pool: &EvalPool, pop: &mut [Individual]) {
        // Snapshot the ES baseline at the round boundary: every candidate
        // in the round sees the same value regardless of which worker runs
        // it or in what order — the determinism contract.
        let baseline = self.best_prev_full.load();
        pool.for_each_mut(pop, |_, ind| {
            if !ind.fitness.is_infinite() {
                return;
            }
            match self.ensure_phenotype(ind) {
                Some(ph) => {
                    let (f, full) = self.evaluate_phenotype(&ph, baseline);
                    ind.fitness = f;
                    ind.fully_evaluated = full;
                }
                None => {
                    ind.fitness = f64::INFINITY;
                    ind.fully_evaluated = true;
                }
            }
        });
    }

    fn tournament<'p, R: Rng>(&self, pop: &'p [Individual], rng: &mut R) -> &'p Individual {
        let mut best = &pop[rng.gen_range(0..pop.len())];
        for _ in 1..self.cfg.tournament.max(1) {
            let cand = &pop[rng.gen_range(0..pop.len())];
            if cand.fitness < best.fitness {
                best = cand;
            }
        }
        best
    }

    fn sigma_scale(&self, gen: usize) -> f64 {
        let k = self.cfg.sigma_ramp_last.min(self.cfg.max_gen);
        if k == 0 || gen + k < self.cfg.max_gen {
            return 1.0;
        }
        // Linear ramp from 1.0 (at max_gen - k) down to sigma_floor.
        let into = gen + k + 1 - self.cfg.max_gen;
        let t = into as f64 / k as f64;
        1.0 + t * (self.cfg.sigma_floor - 1.0)
    }

    fn breed<R: Rng>(&self, pop: &[Individual], rng: &mut R, sigma: f64) -> Vec<Individual> {
        let n = self.cfg.pop_size.saturating_sub(self.cfg.elite);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let roll: f64 = rng.gen();
            let (c, s, g) = (
                self.cfg.p_crossover,
                self.cfg.p_subtree_mut,
                self.cfg.p_gauss_mut,
            );
            if roll < c {
                let mut a = self.tournament(pop, rng).clone();
                let mut b = self.tournament(pop, rng).clone();
                if crossover(
                    &mut a.tree,
                    &mut b.tree,
                    self.grammar,
                    rng,
                    self.cfg.min_size,
                    self.cfg.max_size,
                    DEFAULT_RETRIES,
                ) {
                    a.invalidate();
                    b.invalidate();
                    a.origin = "crossover";
                    b.origin = "crossover";
                }
                out.push(a);
                if out.len() < n {
                    out.push(b);
                }
            } else if roll < c + s {
                let mut a = self.tournament(pop, rng).clone();
                if subtree_mutation(
                    &mut a.tree,
                    self.grammar,
                    rng,
                    self.cfg.max_size,
                    DEFAULT_RETRIES,
                ) {
                    a.invalidate();
                    a.origin = "subtree-mut";
                }
                out.push(a);
            } else if roll < c + s + g {
                let mut a = self.tournament(pop, rng).clone();
                gaussian_mutation_partial(
                    &mut a.tree,
                    self.grammar,
                    &self.priors,
                    sigma,
                    self.cfg.p_param_each,
                    rng,
                );
                a.invalidate();
                a.origin = "gauss-mut";
                out.push(a);
            } else {
                // Replication: fitness carries over.
                let mut a = self.tournament(pop, rng).clone();
                a.origin = "replicate";
                out.push(a);
            }
        }
        out
    }

    /// Stochastic hill-climbing local search (§III-D): propose insertion,
    /// deletion — and, when enabled, a fine parameter tweak — with equal
    /// probability; adopt on strict improvement.
    fn local_search(&self, pool: &EvalPool, pop: &mut [Individual], gen: usize) {
        if self.cfg.local_search_steps == 0 {
            return;
        }
        let master = self.cfg.seed;
        let sigma = self.sigma_scale(gen.saturating_sub(1));
        // Same round-boundary baseline snapshot as `evaluate_population`.
        let baseline = self.best_prev_full.load();
        pool.for_each_mut(pop, |idx, ind| {
            let mut rng = StdRng::seed_from_u64(mix_seed(master, gen as u64 ^ 0xA5, idx as u64));
            for _ in 0..self.cfg.local_search_steps {
                let mut cand = ind.tree.clone();
                let moves = if self.cfg.ls_param_tweak { 3 } else { 2 };
                let mv = rng.gen_range(0..moves);
                let changed = match mv {
                    0 => insertion(&mut cand, self.grammar, &mut rng, self.cfg.max_size),
                    1 => deletion(&mut cand, self.grammar, &mut rng, self.cfg.min_size),
                    _ => param_tweak(&mut cand, self.grammar, &self.priors, sigma, &mut rng),
                };
                if !changed {
                    continue;
                }
                let Ok(ph) = self.build_phenotype(&cand) else {
                    continue;
                };
                let (f, full) = self.evaluate_phenotype(&ph, baseline);
                if f < ind.fitness {
                    ind.tree = cand;
                    ind.fitness = f;
                    ind.fully_evaluated = full;
                    ind.origin = match mv {
                        0 => "ls-insert",
                        1 => "ls-delete",
                        _ => "ls-tweak",
                    };
                    // The adopted candidate's phenotype is already derived —
                    // memoise it so later generations skip the rebuild.
                    ind.pheno = Some(Arc::new(ph));
                }
            }
        });
    }

    /// Run the evolutionary loop to completion.
    pub fn run(&self) -> RunReport {
        self.run_with_observer(|_| {})
    }

    /// [`Self::run`] with a per-generation callback — progress display for
    /// long searches. The callback receives each generation's stats right
    /// after it is recorded.
    pub fn run_with_observer(&self, observer: impl FnMut(&GenStats)) -> RunReport {
        // One persistent pool for the whole run: workers are spawned here,
        // parked between rounds, and joined when the run ends — never
        // re-created per generation. Worker count is clamped to the most
        // work a round can hold.
        let threads = self.cfg.threads.clamp(1, self.cfg.pop_size.max(1));
        let (mut report, pool_stats) = with_pool(threads, |pool| self.run_inner(pool, observer));
        report.pool = pool_stats;
        report
    }

    fn run_inner(&self, pool: &EvalPool, mut observer: impl FnMut(&GenStats)) -> RunReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut pop: Vec<Individual> = {
            let _sp = gmr_obsv::span!("gen.init");
            (0..self.cfg.pop_size)
                .map(|_| {
                    let mut tree =
                        self.grammar
                            .random_tree(&mut rng, self.cfg.min_size, self.cfg.max_size);
                    if self.cfg.init_params_from_prior {
                        // Sample generation zero's constants from the truncated
                        // Gaussian priors rather than pinning them at the means.
                        gaussian_mutation_partial(
                            &mut tree,
                            self.grammar,
                            &self.priors,
                            1.0,
                            1.0,
                            &mut rng,
                        );
                    }
                    Individual::new(tree)
                })
                .collect()
        };

        let mut history = Vec::with_capacity(self.cfg.max_gen + 1);
        let record = |gen: usize, pop: &[Individual], t0: Instant, hist: &mut Vec<GenStats>| {
            let best = pop.iter().map(|i| i.fitness).fold(f64::INFINITY, f64::min);
            let finite: Vec<f64> = pop
                .iter()
                .map(|i| i.fitness)
                .filter(|f| f.is_finite())
                .collect();
            let mean = if finite.is_empty() {
                f64::INFINITY
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            };
            hist.push(GenStats {
                generation: gen,
                best,
                mean,
                evaluations: self.evals.get(),
                evaluated_steps: self.steps.get(),
                elapsed: t0.elapsed(),
            });
        };

        let mut prev_counters = self.counter_snap();
        let mut prev_best = f64::INFINITY;

        let t0 = Instant::now();
        {
            let _sp = gmr_obsv::span!("gen.evaluate", 0);
            self.evaluate_population(pool, &mut pop);
        }
        self.emit_round_event(pool, "evaluate", pop.len());
        pop.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
        record(0, &pop, t0, &mut history);
        self.emit_gen_event(history.last().expect("just recorded"), &mut prev_counters);
        self.emit_elite_event(0, &pop, &mut prev_best);
        self.check_invariants(0, &pop);
        observer(history.last().expect("just recorded"));

        for gen in 1..=self.cfg.max_gen {
            let t0 = Instant::now();
            let sigma = self.sigma_scale(gen - 1);
            let mut offspring = {
                let _sp = gmr_obsv::span!("gen.breed", gen as u64);
                self.breed(&pop, &mut rng, sigma)
            };
            {
                let _sp = gmr_obsv::span!("gen.evaluate", gen as u64);
                self.evaluate_population(pool, &mut offspring);
            }
            self.emit_round_event(pool, "evaluate", offspring.len());
            if self.cfg.local_search_steps > 0 {
                let _sp = gmr_obsv::span!("gen.local_search", gen as u64);
                self.local_search(pool, &mut offspring, gen);
                drop(_sp);
                self.emit_round_event(pool, "local-search", offspring.len());
            }

            {
                let _sp = gmr_obsv::span!("gen.select", gen as u64);
                let mut next: Vec<Individual> = pop.iter().take(self.cfg.elite).cloned().collect();
                next.append(&mut offspring);
                next.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
                next.truncate(self.cfg.pop_size);
                pop = next;
            }
            record(gen, &pop, t0, &mut history);
            self.emit_gen_event(history.last().expect("just recorded"), &mut prev_counters);
            self.emit_elite_event(gen, &pop, &mut prev_best);
            self.check_invariants(gen, &pop);
            observer(history.last().expect("just recorded"));
        }

        let top = pop.len().min(10);
        let top_full_fraction = if top == 0 {
            0.0
        } else {
            pop[..top].iter().filter(|i| i.fully_evaluated).count() as f64 / top as f64
        };
        // Re-evaluate the champion fully (its recorded fitness may be a
        // short-circuited surrogate).
        let mut best = pop.into_iter().next().expect("population is non-empty");
        let saved = self.cfg.es_threshold;
        if saved.is_some() {
            // A direct full evaluation, bypassing ES and the cache entry
            // that may hold a surrogate. The champion's memoised phenotype
            // usually makes this re-derivation-free.
            let _sp = gmr_obsv::span!("gen.champion");
            let Some(ph) = self.ensure_phenotype(&mut best) else {
                return self.report(best, history, top_full_fraction);
            };
            let (f, _) = self.evaluator.evaluate(&ph, &mut |_, _| true);
            best.fitness = f;
            best.fully_evaluated = true;
        }
        self.report(best, history, top_full_fraction)
    }

    fn report(
        &self,
        best: Individual,
        history: Vec<GenStats>,
        top_full_fraction: f64,
    ) -> RunReport {
        RunReport {
            best,
            history,
            evaluations: self.evals.get(),
            evaluated_steps: self.steps.get(),
            full_evaluations: self.fulls.get(),
            short_circuited: self.shorts.get(),
            cache_hit_rate: self.cache.stats().hit_rate(),
            cache_hits: self.cache.stats().hits(),
            cache_misses: self.cache.stats().misses(),
            pheno_builds: self.pheno_builds.get(),
            pheno_reuses: self.pheno_reuses.get(),
            compiles: self.compiles.get(),
            pool: PoolStats::default(),
            top_full_fraction,
            metrics: self.metrics.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_expr::EvalContext;
    use gmr_tag::grammar::test_fixtures::tiny_grammar;

    /// Fit `y = 2x - 1` with the tiny grammar (reachable exactly:
    /// `(x * C0) - r…` with C0 → 2 and lexemes summing to 1).
    struct LineFit {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl LineFit {
        fn new() -> Self {
            let xs: Vec<f64> = (0..64).map(|i| i as f64 / 4.0).collect();
            let ys = xs.iter().map(|x| 2.0 * x - 1.0).collect();
            LineFit { xs, ys }
        }
    }

    impl Evaluator for LineFit {
        fn num_equations(&self) -> usize {
            1
        }
        fn num_cases(&self) -> usize {
            self.xs.len()
        }
        fn evaluate(&self, ph: &Phenotype, ctl: &mut dyn FnMut(f64, usize) -> bool) -> (f64, bool) {
            let eq = &ph.eqs()[0];
            let comp = ph.compiled();
            let mut scratch = comp.map(|sys| sys.scratch());
            let mut out = [0.0f64];
            let mut sse = 0.0;
            for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
                let state = [x];
                // The tiny grammar's pool includes Var(0); provide its slot
                // (always 0.0) so arity-checked compiled programs accept it.
                let ctx = EvalContext {
                    vars: &[0.0],
                    state: &state,
                };
                let p = match (&comp, &mut scratch) {
                    (Some(sys), Some(scratch)) => {
                        sys.eval_step(&ctx, scratch, &mut out);
                        out[0]
                    }
                    _ => eq.eval(&ctx),
                };
                let d = p - y;
                sse += d * d;
                let done = i + 1;
                if done % 8 == 0 && done < self.xs.len() {
                    let running = (sse / done as f64).sqrt();
                    if !ctl(running, done) {
                        return (running, false);
                    }
                }
            }
            ((sse / self.xs.len() as f64).sqrt(), true)
        }
    }

    fn small_cfg(seed: u64) -> GpConfig {
        GpConfig {
            pop_size: 40,
            max_gen: 25,
            min_size: 2,
            max_size: 10,
            local_search_steps: 2,
            threads: 1,
            seed,
            ..Default::default()
        }
    }

    fn priors() -> ParamPriors {
        // Kind 0: the alpha's anchor constant; kind 1: the R lexeme.
        ParamPriors::new([(2.0, 0.0, 4.0), (0.5, 0.0, 1.0)])
    }

    #[test]
    fn engine_improves_fitness() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let engine = Engine::new(&g, &problem, priors(), small_cfg(7));
        let report = engine.run();
        let first = report.history.first().unwrap().best;
        let last = report.best.fitness;
        assert!(last < first, "no improvement: {first} -> {last}");
        assert!(last < 1.0, "should fit the line well, got {last}");
    }

    #[test]
    fn best_fitness_is_monotone_with_elitism() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let engine = Engine::new(&g, &problem, priors(), small_cfg(11));
        let report = engine.run();
        let mut prev = f64::INFINITY;
        for gs in &report.history {
            assert!(
                gs.best <= prev + 1e-12,
                "gen {}: {} > {}",
                gs.generation,
                gs.best,
                prev
            );
            prev = gs.best;
        }
    }

    #[test]
    fn deterministic_for_fixed_seed_single_thread() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let a = Engine::new(&g, &problem, priors(), small_cfg(3)).run();
        let b = Engine::new(&g, &problem, priors(), small_cfg(3)).run();
        assert_eq!(a.best.fitness, b.best.fitness);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.best.tree, b.best.tree);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let a = Engine::new(&g, &problem, priors(), small_cfg(1)).run();
        let b = Engine::new(&g, &problem, priors(), small_cfg(2)).run();
        assert_ne!(a.best.tree, b.best.tree);
    }

    #[test]
    fn cache_gets_hits() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let engine = Engine::new(&g, &problem, priors(), small_cfg(5));
        let report = engine.run();
        assert!(
            report.cache_hit_rate > 0.0,
            "replication and elitism should hit the cache"
        );
    }

    #[test]
    fn short_circuiting_reduces_evaluated_steps() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let mut with = small_cfg(9);
        with.use_cache = false;
        let mut without = with.clone();
        without.es_threshold = None;
        let r_with = Engine::new(&g, &problem, priors(), with).run();
        let r_without = Engine::new(&g, &problem, priors(), without).run();
        assert!(r_with.short_circuited > 0, "ES should trigger");
        assert_eq!(r_without.short_circuited, 0);
        let per_eval_with = r_with.evaluated_steps as f64 / r_with.evaluations as f64;
        let per_eval_without = r_without.evaluated_steps as f64 / r_without.evaluations as f64;
        assert!(
            per_eval_with < per_eval_without,
            "{per_eval_with} !< {per_eval_without}"
        );
    }

    #[test]
    fn parallel_run_completes_and_improves() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let mut cfg = small_cfg(13);
        cfg.threads = 4;
        let report = Engine::new(&g, &problem, priors(), cfg).run();
        assert!(report.best.fitness < report.history[0].best);
        // The persistent pool saw both rounds of every generation.
        assert!(report.pool.rounds > 0);
        assert_eq!(
            report.pool.workers.len(),
            4,
            "persistent workers: {:?}",
            report.pool.workers
        );
    }

    #[test]
    fn phenotype_memo_is_reused() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let report = Engine::new(&g, &problem, priors(), small_cfg(19)).run();
        assert!(report.pheno_builds > 0);
        assert!(
            report.pheno_reuses > 0,
            "elite/champion paths must reuse the memo"
        );
        // Runtime compilation on: one program per equation per build.
        assert_eq!(report.compiles, report.pheno_builds);
        assert!(report.cache_hits + report.cache_misses > 0);
    }

    #[test]
    fn population_smaller_than_thread_count() {
        // The pool clamps workers to pending work; a 3-individual
        // population under threads=8 must complete and stay deterministic.
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let mut cfg = small_cfg(23);
        cfg.pop_size = 3;
        cfg.elite = 1;
        cfg.max_gen = 4;
        cfg.threads = 8;
        let wide = Engine::new(&g, &problem, priors(), cfg.clone()).run();
        cfg.threads = 1;
        let narrow = Engine::new(&g, &problem, priors(), cfg).run();
        assert!(wide.pool.workers.len() <= 3, "{:?}", wide.pool.workers);
        let wide_best: Vec<u64> = wide.history.iter().map(|g| g.best.to_bits()).collect();
        let narrow_best: Vec<u64> = narrow.history.iter().map(|g| g.best.to_bits()).collect();
        assert_eq!(wide_best, narrow_best);
    }

    #[test]
    fn sigma_ramp_schedule() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let mut cfg = small_cfg(0);
        cfg.max_gen = 100;
        cfg.sigma_ramp_last = 20;
        cfg.sigma_floor = 0.1;
        let engine = Engine::new(&g, &problem, priors(), cfg);
        assert_eq!(engine.sigma_scale(0), 1.0);
        assert_eq!(engine.sigma_scale(79), 1.0);
        let s80 = engine.sigma_scale(80);
        let s99 = engine.sigma_scale(99);
        assert!(s80 < 1.0 && s80 > s99, "{s80} {s99}");
        assert!((s99 - 0.1).abs() < 1e-9);
    }

    #[test]
    fn observer_sees_every_generation_in_order() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let engine = Engine::new(&g, &problem, priors(), small_cfg(41));
        let mut seen = Vec::new();
        let report = engine.run_with_observer(|gs| seen.push(gs.generation));
        assert_eq!(seen.len(), report.history.len());
        assert_eq!(seen, (0..=engine.config().max_gen).collect::<Vec<_>>());
    }

    #[test]
    fn invariant_hook_sees_every_generation_elite() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let cfg = small_cfg(17);
        let elite = cfg.elite;
        let max_gen = cfg.max_gen;
        let calls = AtomicUsize::new(0);
        let max_seen_gen = AtomicUsize::new(0);
        let mut engine = Engine::new(&g, &problem, priors(), cfg);
        engine.set_invariant_hook(|gen, tree, eqs| {
            calls.fetch_add(1, Ordering::Relaxed);
            max_seen_gen.fetch_max(gen, Ordering::Relaxed);
            assert!(!eqs.is_empty());
            assert!(tree.size() >= 2);
        });
        engine.run();
        // Generation 0 plus every evolved generation, elite individuals each.
        assert_eq!(calls.load(Ordering::Relaxed), (max_gen + 1) * elite);
        assert_eq!(max_seen_gen.load(Ordering::Relaxed), max_gen);
    }

    #[test]
    fn history_csv_is_well_formed() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let report = Engine::new(&g, &problem, priors(), small_cfg(31)).run();
        let csv = report.history_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "generation,best,mean,evaluations,evaluated_steps,elapsed_ms"
        );
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), report.history.len());
        for row in rows {
            assert_eq!(row.split(',').count(), 6);
        }
    }

    #[test]
    fn max_size_respected_throughout() {
        let (g, _) = tiny_grammar();
        let problem = LineFit::new();
        let cfg = small_cfg(21);
        let max = cfg.max_size;
        let engine = Engine::new(&g, &problem, priors(), cfg);
        let report = engine.run();
        assert!(report.best.tree.size() <= max);
        report.best.tree.validate(&g).unwrap();
    }
}
