//! The persistent evaluation pool.
//!
//! Per-candidate fitness cost spans orders of magnitude — a cache hit is
//! ~free, a short-circuited evaluation aborts after a few simulated days, a
//! full evaluation integrates the whole training horizon — so static
//! chunking leaves most workers idle behind the unluckiest chunk, and
//! re-spawning threads twice per generation adds latency on top. This pool
//! fixes both:
//!
//! * **Workers are created once per [`crate::Engine::run`]** (scoped over
//!   the whole evolutionary loop) and parked on a condvar between rounds.
//! * **Work is claimed dynamically**: each round exposes a shared index and
//!   workers claim chunks of `K` candidates with a single atomic update —
//!   work stealing over a shared index rather than fixed partitions. A fast
//!   worker that drains its first chunk simply claims another ("steals"
//!   work a static split would have assigned elsewhere).
//!
//! Determinism: the pool only decides *which worker* runs a candidate,
//! never *what* the candidate computation sees — tasks receive the global
//! candidate index, so index-derived RNG streams (and therefore fitness)
//! are identical for any worker count. See DESIGN.md, "Evaluation pool".
//!
//! The claim word is epoch-tagged (epoch in the high 32 bits, next index in
//! the low 32) so a worker that wakes late — or lingers around a round
//! boundary — can never claim indices from a round it did not observe: its
//! compare-exchange fails on the epoch and it goes back to sleep. That is
//! what makes the borrowed round closure sound: a task pointer is only ever
//! dereferenced for a successful claim of the matching epoch, and the
//! coordinator does not return (dropping the borrow) until every index of
//! that epoch is completed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// What one worker did over the pool's lifetime.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Worker index (0 is the coordinating thread).
    pub worker: usize,
    /// Candidates processed.
    pub candidates: u64,
    /// Chunk claims made.
    pub claims: u64,
    /// Claims beyond the first within a round — work a static split would
    /// have parked behind a slower worker.
    pub steals: u64,
    /// Time spent running candidate evaluations.
    pub busy: Duration,
    /// Time spent parked between rounds or waiting for work.
    pub idle: Duration,
}

/// Aggregate pool statistics for a run.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Per-worker records, sorted by worker index.
    pub workers: Vec<WorkerStats>,
    /// Rounds dispatched (two per generation: evaluation + local search).
    pub rounds: u64,
}

/// Live per-worker accounting: plain atomics every worker updates as it
/// goes, so the coordinator can snapshot pool state at any round boundary —
/// not only at shutdown. Candidate/claim counts are flushed before the
/// round's completion notification (they are exact at every boundary);
/// busy/idle time is flushed as each worker re-parks (bounded by one round
/// of skew).
#[derive(Default)]
struct LiveStats {
    candidates: AtomicU64,
    claims: AtomicU64,
    steals: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

impl LiveStats {
    fn to_worker_stats(&self, worker: usize) -> WorkerStats {
        WorkerStats {
            worker,
            candidates: self.candidates.load(Ordering::Relaxed),
            claims: self.claims.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
            idle: Duration::from_nanos(self.idle_ns.load(Ordering::Relaxed)),
        }
    }
}

impl PoolStats {
    /// Total candidates processed across workers.
    pub fn total_candidates(&self) -> u64 {
        self.workers.iter().map(|w| w.candidates).sum()
    }

    /// Total steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total idle time across workers.
    pub fn total_idle(&self) -> Duration {
        self.workers.iter().map(|w| w.idle).sum()
    }

    /// Total busy time across workers.
    pub fn total_busy(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum()
    }
}

/// Type-erased task pointer published to the workers. Sound to share
/// because (a) claims are epoch-checked, so the pointer is only used while
/// the owning round is in flight, and (b) the coordinator keeps the
/// borrowed closure alive until the round completes.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the raw pointer is only a capability token — workers never use it
// without first winning an epoch-checked claim (`claim_chunk`), and
// `run_round` borrows the closure for the whole round, so every dereference
// happens while the pointee is alive; the pointee itself is `Sync`, so
// concurrent `&`-calls from several workers are sound.
unsafe impl Send for TaskPtr {}
// SAFETY: as above — shared access is `&dyn Fn(usize) + Sync`.
unsafe impl Sync for TaskPtr {}

/// Round descriptor, updated under [`Shared::slot`]'s lock.
struct JobSlot {
    /// Monotone round counter; workers wake when it advances.
    epoch: u32,
    /// The current round's task (None between rounds).
    task: Option<TaskPtr>,
    /// Number of candidates in the current round.
    len: usize,
    /// Claim granularity for the current round.
    chunk: usize,
    /// Set once at the end of the run; workers exit.
    shutdown: bool,
}

struct Shared {
    slot: Mutex<JobSlot>,
    /// Workers park here between rounds.
    work_cv: Condvar,
    /// The coordinator parks here until `completed == len`.
    done_cv: Condvar,
    /// Epoch-tagged claim word: `(epoch << 32) | next_index`.
    claim: AtomicU64,
    /// Candidates completed in the current round.
    completed: AtomicUsize,
    /// A task panicked; payload parked in `panic_payload`.
    panicked: AtomicBool,
    /// First panic payload, re-raised by the coordinator.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Live per-worker accounting, index = worker (0 is the coordinator).
    live: Vec<LiveStats>,
}

impl Shared {
    fn lock_slot(&self) -> MutexGuard<'_, JobSlot> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Claim the next chunk for `epoch`; `None` when the round is drained
    /// or the epoch has moved on.
    fn claim_chunk(&self, epoch: u32, len: usize, chunk: usize) -> Option<(usize, usize)> {
        let mut cur = self.claim.load(Ordering::Acquire);
        loop {
            if (cur >> 32) as u32 != epoch {
                return None;
            }
            let next = (cur & 0xffff_ffff) as usize;
            if next >= len {
                return None;
            }
            let end = (next + chunk).min(len);
            let new = (u64::from(epoch) << 32) | end as u64;
            match self
                .claim
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some((next, end)),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Run the claim loop for one round as `worker`, flushing candidate,
    /// claim and steal counts into the worker's live accounting *before*
    /// signalling completion — a round-boundary snapshot therefore sees
    /// exact counts for every round it follows.
    fn drain_round(&self, epoch: u32, len: usize, chunk: usize, task: TaskPtr, worker: usize) {
        let _sp = gmr_obsv::span_fine!("pool.drain", u64::from(epoch));
        let live = &self.live[worker];
        let mut claims_this_round = 0u64;
        while let Some((start, end)) = self.claim_chunk(epoch, len, chunk) {
            claims_this_round += 1;
            // SAFETY: a successful `claim_chunk` for `epoch` proves this
            // round is still in flight, and the coordinator keeps the
            // borrowed closure behind `task` alive until `completed == len`
            // — which cannot happen before this chunk is accounted for.
            let f = unsafe { &*task.0 };
            let ran = catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    f(i);
                }
            }));
            if let Err(payload) = ran {
                // Record the first payload; the round still drains (every
                // index must be accounted for or the coordinator would wait
                // forever) and the coordinator re-raises before any result
                // is used.
                if !self.panicked.swap(true, Ordering::AcqRel) {
                    let mut slot = self.panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                    *slot = Some(payload);
                }
            }
            live.candidates
                .fetch_add((end - start) as u64, Ordering::Relaxed);
            live.claims.fetch_add(1, Ordering::Relaxed);
            if claims_this_round > 1 {
                live.steals.fetch_add(1, Ordering::Relaxed);
            }
            let done = self.completed.fetch_add(end - start, Ordering::AcqRel) + (end - start);
            if done >= len {
                // Pair the notification with the slot lock so the
                // coordinator cannot miss it between its check and wait.
                drop(self.lock_slot());
                self.done_cv.notify_all();
            }
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let live = &shared.live[worker];
    let mut my_epoch = 0u32;
    loop {
        let parked = Instant::now();
        let (epoch, len, chunk, task) = {
            let mut slot = shared.lock_slot();
            loop {
                if slot.shutdown {
                    live.idle_ns
                        .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    return;
                }
                if slot.epoch != my_epoch {
                    if let Some(task) = slot.task {
                        break (slot.epoch, slot.len, slot.chunk, task);
                    }
                    // Round already torn down; skip to its epoch so the
                    // next wait is for genuinely new work.
                    my_epoch = slot.epoch;
                }
                slot = shared.work_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        live.idle_ns
            .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
        my_epoch = epoch;
        let t0 = Instant::now();
        shared.drain_round(epoch, len, chunk, task, worker);
        live.busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Handle the engine's coordinator thread uses to dispatch rounds. Created
/// by [`EvalPool::with`]; not `Sync` — only the coordinating thread drives
/// it.
pub struct EvalPool<'s> {
    shared: &'s Shared,
    /// Spawned workers (the coordinator participates as worker 0 on top).
    extra_workers: usize,
    rounds: std::cell::Cell<u64>,
}

/// A round must at least outlast this before an idle worker counts as
/// stalled — fast rounds legitimately finish before parked workers wake.
const STALL_MIN_ROUND: Duration = Duration::from_millis(20);

impl<'s> EvalPool<'s> {
    /// Total worker count, counting the coordinating thread.
    pub fn workers(&self) -> usize {
        self.extra_workers + 1
    }

    /// Rounds dispatched so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.get()
    }

    /// Snapshot the pool's cumulative statistics *now*, mid-run — the
    /// numbers previously only available after shutdown. Candidate/claim/
    /// steal counts are exact at round boundaries; busy/idle lag by at most
    /// the round in flight (each worker flushes them as it re-parks).
    pub fn snapshot(&self) -> PoolStats {
        PoolStats {
            workers: self
                .shared
                .live
                .iter()
                .enumerate()
                .map(|(w, live)| live.to_worker_stats(w))
                .collect(),
            rounds: self.rounds.get(),
        }
    }

    /// Chunk size for a round: small enough to balance heterogeneous
    /// candidate costs, large enough to amortise the atomic claim.
    fn chunk_for(&self, len: usize) -> usize {
        (len / (self.workers() * 8)).clamp(1, 16)
    }

    /// Run `f(index, item)` over `items`, one call per item, distributed
    /// over the pool by dynamic chunk claiming. Blocks until every item is
    /// processed; panics from worker tasks are re-raised here.
    pub fn for_each_mut<T: Send>(&self, items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        let base = items.as_mut_ptr() as usize;
        let task = move |i: usize| {
            // SAFETY: `i < items.len()` (claim indices come from the round's
            // `len`, which is `items.len()`), and each index is claimed
            // exactly once per round, so this `&mut` aliases neither another
            // task's element nor the caller's slice borrow, which
            // `run_round` holds inactive until the round completes. `base`
            // travels as usize only to keep the closure `Sync`.
            let item = unsafe { &mut *(base as *mut T).add(i) };
            f(i, item);
        };
        self.run_round(items.len(), &task);
    }

    /// Dispatch one round of `len` independent index-addressed tasks.
    pub fn run_round(&self, len: usize, task: &(dyn Fn(usize) + Sync)) {
        if len == 0 {
            return;
        }
        self.rounds.set(self.rounds.get() + 1);
        // Workers are clamped to pending work: rounds too small to split
        // (or a pool with no spawned workers) run inline on the
        // coordinator, and surplus workers claim nothing either way.
        if self.extra_workers == 0 || len == 1 {
            let own = &self.shared.live[0];
            let t0 = Instant::now();
            for i in 0..len {
                task(i);
            }
            own.busy_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            own.candidates.fetch_add(len as u64, Ordering::Relaxed);
            own.claims.fetch_add(1, Ordering::Relaxed);
            return;
        }

        // Per-worker candidate counts before dispatch — a worker whose
        // count does not move across a long, well-stocked round stalled.
        let watch_stalls = gmr_obsv::enabled() && len >= 2 * self.workers();
        let before: Vec<u64> = if watch_stalls {
            self.shared
                .live
                .iter()
                .map(|l| l.candidates.load(Ordering::Relaxed))
                .collect()
        } else {
            Vec::new()
        };
        let round_t0 = Instant::now();

        let chunk = self.chunk_for(len);
        // SAFETY: lifetime erasure only — the fat pointer is bit-identical
        // to the borrow it came from. The borrow of `task` outlives every
        // use: this function publishes the pointer, then blocks in
        // `drain_round`/`done_cv` until all `len` indices complete, and the
        // next round's epoch bump invalidates any late claim before a stale
        // dereference could occur.
        let ptr = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(task)
        });
        let epoch = {
            let mut slot = self.shared.lock_slot();
            let epoch = slot.epoch.wrapping_add(1);
            slot.epoch = epoch;
            slot.task = Some(ptr);
            slot.len = len;
            slot.chunk = chunk;
            self.shared.completed.store(0, Ordering::Release);
            self.shared
                .claim
                .store(u64::from(epoch) << 32, Ordering::Release);
            self.shared.work_cv.notify_all();
            epoch
        };

        // The coordinator claims chunks like any worker.
        {
            let t0 = Instant::now();
            self.shared.drain_round(epoch, len, chunk, ptr, 0);
            self.shared.live[0]
                .busy_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }

        // Wait for stragglers still finishing claimed chunks.
        let parked = Instant::now();
        {
            let mut slot = self.shared.lock_slot();
            while self.shared.completed.load(Ordering::Acquire) < len {
                slot = self
                    .shared
                    .done_cv
                    .wait(slot)
                    .unwrap_or_else(|e| e.into_inner());
            }
            slot.task = None;
        }
        self.shared.live[0]
            .idle_ns
            .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);

        if watch_stalls {
            let round_us = round_t0.elapsed().as_micros() as u64;
            if round_t0.elapsed() >= STALL_MIN_ROUND {
                // Worker 0 is the coordinator and always participates;
                // check only the spawned workers.
                for (w, b) in before.iter().enumerate().skip(1) {
                    if self.shared.live[w].candidates.load(Ordering::Relaxed) == *b {
                        gmr_obsv::emit(gmr_obsv::Event::Stall {
                            round: self.rounds.get(),
                            worker: w as u32,
                            round_us,
                        });
                    }
                }
            }
        }

        if self.shared.panicked.load(Ordering::Acquire) {
            let payload = self
                .shared
                .panic_payload
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take();
            if let Some(payload) = payload {
                std::panic::resume_unwind(payload);
            }
            panic!("evaluation worker panicked");
        }
    }
}

/// Spawn a pool of `threads` workers (counting the calling thread), run
/// `f` with it, shut the workers down, and return `f`'s result plus the
/// collected [`PoolStats`].
pub fn with_pool<R>(threads: usize, f: impl FnOnce(&EvalPool) -> R) -> (R, PoolStats) {
    let extra = threads.max(1) - 1;
    let shared = Shared {
        slot: Mutex::new(JobSlot {
            epoch: 0,
            task: None,
            len: 0,
            chunk: 1,
            shutdown: false,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        claim: AtomicU64::new(0),
        completed: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
        live: (0..=extra).map(|_| LiveStats::default()).collect(),
    };

    /// Flags shutdown on drop, so workers are released even when `f` (or a
    /// re-raised task panic) unwinds — otherwise the scope's implicit join
    /// would deadlock on parked workers.
    struct ShutdownGuard<'a>(&'a Shared);
    impl Drop for ShutdownGuard<'_> {
        fn drop(&mut self) {
            let mut slot = self.0.lock_slot();
            slot.shutdown = true;
            self.0.work_cv.notify_all();
        }
    }

    let (result, rounds) = crossbeam::thread::scope(|s| {
        let _guard = ShutdownGuard(&shared);
        for w in 1..=extra {
            let shared = &shared;
            s.spawn(move |_| worker_loop(shared, w));
        }
        let pool = EvalPool {
            shared: &shared,
            extra_workers: extra,
            rounds: std::cell::Cell::new(0),
        };
        let result = f(&pool);
        (result, pool.rounds.get())
    })
    .expect("evaluation worker panicked");

    // Workers are joined (scope ended), so the live accounting is final.
    let workers = shared
        .live
        .iter()
        .enumerate()
        .map(|(w, live)| live.to_worker_stats(w))
        .collect();
    (result, PoolStats { workers, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn visit_counts(threads: usize, n: usize) -> Vec<u32> {
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let ((), stats) = with_pool(threads, |pool| {
            let mut items: Vec<usize> = (0..n).collect();
            pool.for_each_mut(&mut items, |i, it| {
                assert_eq!(*it, i, "index/item pairing preserved");
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(stats.total_candidates(), n as u64);
        counts.into_iter().map(|c| c.into_inner()).collect()
    }

    #[test]
    fn empty_round_is_a_no_op() {
        assert!(visit_counts(8, 0).is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(visit_counts(8, 1), vec![1]);
    }

    #[test]
    fn fewer_items_than_threads_each_visited_once() {
        assert_eq!(visit_counts(8, 3), vec![1, 1, 1]);
    }

    #[test]
    fn every_index_visited_exactly_once() {
        for threads in [1, 2, 4, 8] {
            let counts = visit_counts(threads, 257);
            assert!(
                counts.iter().all(|&c| c == 1),
                "threads={threads}: {counts:?}"
            );
        }
    }

    #[test]
    fn rounds_reuse_the_same_workers() {
        let (sum, stats) = with_pool(4, |pool| {
            let mut total = 0u64;
            for round in 0..10u64 {
                let mut items = vec![0u64; 64];
                pool.for_each_mut(&mut items, |i, it| *it = round * 1000 + i as u64);
                total += items.iter().sum::<u64>();
            }
            total
        });
        let expected: u64 = (0..10u64)
            .map(|r| (0..64u64).map(|i| r * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(sum, expected);
        assert_eq!(stats.rounds, 10);
        assert_eq!(stats.total_candidates(), 640);
        // Workers persist: at most `threads` records, not one per round.
        assert!(stats.workers.len() <= 4, "{:?}", stats.workers);
    }

    #[test]
    fn imbalanced_work_is_stolen() {
        // One pathologically slow item at index 0; with static halves the
        // second worker would finish ~immediately while the first serially
        // grinds the rest. Dynamic claiming lets the free worker take them.
        let ((), stats) = with_pool(2, |pool| {
            let mut items = vec![0u8; 64];
            pool.for_each_mut(&mut items, |i, _| {
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(30));
                }
            });
        });
        // The worker stuck on item 0 cannot have processed everything.
        let max_share = stats
            .workers
            .iter()
            .map(|w| w.candidates)
            .max()
            .unwrap_or(0);
        assert!(max_share < 64, "one worker did all the work: {stats:?}");
    }

    #[test]
    fn snapshot_is_exact_at_round_boundaries() {
        // The old stats path only materialised numbers at shutdown; the
        // live accounting must be readable — and exact for candidates —
        // after every round.
        with_pool(4, |pool| {
            for round in 1..=3u64 {
                let mut items = vec![0u8; 128];
                pool.for_each_mut(&mut items, |_, _| {
                    std::hint::black_box(());
                });
                let snap = pool.snapshot();
                assert_eq!(snap.rounds, round);
                assert_eq!(snap.total_candidates(), 128 * round);
                assert_eq!(snap.workers.len(), 4);
            }
        });
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_pool(4, |pool| {
                let mut items = vec![0u8; 32];
                pool.for_each_mut(&mut items, |i, _| {
                    if i == 17 {
                        panic!("injected failure");
                    }
                });
            });
        });
        let err = caught.expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("injected failure"), "{msg}");
    }

    #[test]
    fn stats_account_claims_and_steals() {
        let ((), stats) = with_pool(4, |pool| {
            let mut items = vec![0u8; 512];
            pool.for_each_mut(&mut items, |_, _| {
                std::hint::black_box(());
            });
        });
        let claims: u64 = stats.workers.iter().map(|w| w.claims).sum();
        assert!(claims >= 2, "512 items must take several claims");
        assert_eq!(
            stats.total_steals(),
            stats.workers.iter().map(|w| w.steals).sum::<u64>()
        );
    }
}
