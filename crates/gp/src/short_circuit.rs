//! Evaluation short-circuiting — Algorithm 1 of the paper.
//!
//! Temporal fitness evaluation is incremental: after integrating `i` of
//! `numFitcases` days, the running RMSE is already a usable estimate of the
//! final fitness. Algorithm 1 aborts an evaluation as soon as
//!
//! 1. the intermediate fitness exceeds `bestPrevFull × threshold`, and
//! 2. the extrapolated final fitness still exceeds `bestPrevFull`,
//!
//! returning the extrapolation as a surrogate fitness. `threshold` controls
//! eagerness (Fig. 11 sweeps 0.7 / 1.0 / 1.3: lower = more eager, fewer
//! evaluated time steps, slightly noisier fitness), and `bestPrevFull` is
//! the best fitness seen from *full* evaluations only.
//!
//! Extrapolation methods: the running RMSE is itself the natural
//! extrapolation for a mean-normalised metric ([`Extrapolate::RunningRmse`]);
//! [`Extrapolate::Optimistic`] scales it by `sqrt(done / total)`, assuming
//! zero error on the unseen suffix — a strictly more conservative stopper.

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` min-register usable across the evaluation thread pool.
#[derive(Debug)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Create with an initial value.
    pub fn new(v: f64) -> Self {
        AtomicF64 {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Current value.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Store a value.
    pub fn store(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Release);
    }

    /// Atomically lower the register to `min(current, v)`.
    pub fn fetch_min(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Acquire);
        loop {
            if f64::from_bits(cur) <= v {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// How the intermediate fitness is projected to a final fitness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Extrapolate {
    /// The running RMSE as-is (the paper's default behaviour for an
    /// already-normalised metric).
    #[default]
    RunningRmse,
    /// `running × sqrt(done / total)` — assumes a perfect unseen suffix, so
    /// it only stops evaluations that *cannot* beat the baseline.
    Optimistic,
}

impl Extrapolate {
    /// Project the running fitness after `done` of `total` cases.
    pub fn project(&self, running: f64, done: usize, total: usize) -> f64 {
        match self {
            Extrapolate::RunningRmse => running,
            Extrapolate::Optimistic => {
                if total == 0 {
                    running
                } else {
                    running * ((done as f64) / (total as f64)).sqrt()
                }
            }
        }
    }
}

/// What the controller decided at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EsOutcome {
    /// Keep evaluating.
    Continue,
    /// Stop; use this extrapolated fitness as the surrogate.
    Stop(f64),
}

/// Per-evaluation short-circuit controller (Algorithm 1). Create one per
/// individual evaluation with a snapshot of the population's best
/// fully-evaluated fitness.
#[derive(Debug, Clone, Copy)]
pub struct EsController {
    /// Eagerness threshold (Fig. 11's TH; 1.0 is the reference).
    pub threshold: f64,
    /// Best fitness from prior full evaluations (`bestPrevFull`).
    pub best_prev_full: f64,
    /// Extrapolation method.
    pub extrapolate: Extrapolate,
}

impl EsController {
    /// A controller that never stops (used when ES is disabled).
    pub fn disabled() -> Self {
        EsController {
            threshold: f64::INFINITY,
            best_prev_full: f64::INFINITY,
            extrapolate: Extrapolate::RunningRmse,
        }
    }

    /// Algorithm 1, lines 6–9: decide at a checkpoint.
    pub fn check(&self, running: f64, done: usize, total: usize) -> EsOutcome {
        if self.best_prev_full.is_finite() && running > self.best_prev_full * self.threshold {
            let est = self.extrapolate.project(running, done, total);
            if est > self.best_prev_full {
                return EsOutcome::Stop(est);
            }
        }
        EsOutcome::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_controller_never_stops() {
        let c = EsController::disabled();
        assert_eq!(c.check(1e18, 10, 100), EsOutcome::Continue);
    }

    #[test]
    fn stops_when_clearly_worse() {
        let c = EsController {
            threshold: 1.0,
            best_prev_full: 10.0,
            extrapolate: Extrapolate::RunningRmse,
        };
        assert_eq!(c.check(15.0, 50, 100), EsOutcome::Stop(15.0));
    }

    #[test]
    fn continues_when_still_promising() {
        let c = EsController {
            threshold: 1.0,
            best_prev_full: 10.0,
            extrapolate: Extrapolate::RunningRmse,
        };
        assert_eq!(c.check(9.0, 50, 100), EsOutcome::Continue);
    }

    #[test]
    fn threshold_controls_eagerness() {
        let eager = EsController {
            threshold: 0.7,
            best_prev_full: 10.0,
            extrapolate: Extrapolate::RunningRmse,
        };
        let lazy = EsController {
            threshold: 1.3,
            ..eager
        };
        // Running RMSE 11: above best (10) but below 10*1.3.
        assert_eq!(eager.check(11.0, 10, 100), EsOutcome::Stop(11.0));
        assert_eq!(lazy.check(11.0, 10, 100), EsOutcome::Continue);
        // Running 8 with TH 0.7: 8 > 7 triggers the check, but the estimate
        // (8) does not beat bestPrevFull (10)… it must NOT stop, since est
        // must exceed bestPrevFull to stop.
        assert_eq!(eager.check(8.0, 10, 100), EsOutcome::Continue);
    }

    #[test]
    fn optimistic_extrapolation_is_more_conservative() {
        let opt = EsController {
            threshold: 1.0,
            best_prev_full: 10.0,
            extrapolate: Extrapolate::Optimistic,
        };
        // Running 12 after 25% of cases projects to 6 — keep going.
        assert_eq!(opt.check(12.0, 25, 100), EsOutcome::Continue);
        // Same running fitness at 100% projects to 12 — stop.
        assert_eq!(opt.check(12.0, 100, 100), EsOutcome::Stop(12.0));
    }

    #[test]
    fn no_baseline_means_no_stopping() {
        let c = EsController {
            threshold: 0.7,
            best_prev_full: f64::INFINITY,
            extrapolate: Extrapolate::RunningRmse,
        };
        assert_eq!(c.check(1e9, 1, 100), EsOutcome::Continue);
    }

    #[test]
    fn atomic_f64_min_semantics() {
        let a = AtomicF64::new(f64::INFINITY);
        a.fetch_min(5.0);
        assert_eq!(a.load(), 5.0);
        a.fetch_min(7.0);
        assert_eq!(a.load(), 5.0);
        a.fetch_min(3.0);
        assert_eq!(a.load(), 3.0);
        a.store(1.0);
        assert_eq!(a.load(), 1.0);
    }

    #[test]
    fn atomic_f64_concurrent_min() {
        use std::sync::Arc;
        let a = Arc::new(AtomicF64::new(f64::INFINITY));
        let mut hs = Vec::new();
        for t in 0..8u64 {
            let a = Arc::clone(&a);
            hs.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    a.fetch_min(((t * 1000 + i) % 997) as f64 + 1.0);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(a.load(), 1.0);
    }
}
