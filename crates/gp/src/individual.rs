//! Individuals: a derivation-tree genotype plus its evaluation record and
//! memoised phenotype.

use crate::phenotype::Phenotype;
use gmr_tag::DerivTree;
use std::sync::Arc;

/// One member of the population.
#[derive(Debug, Clone)]
pub struct Individual {
    /// The genotype.
    pub tree: DerivTree,
    /// RMSE fitness (lower is better); `f64::INFINITY` until evaluated or
    /// for lethal phenotypes.
    pub fitness: f64,
    /// Whether the recorded fitness came from a full (non-short-circuited)
    /// evaluation. Only full evaluations update the short-circuiting
    /// baseline, and Fig. 11 reports the fraction of best models that were
    /// fully evaluated.
    pub fully_evaluated: bool,
    /// Memoised phenotype (lowered + simplified + compiled), shared across
    /// clones; cleared by [`Self::invalidate`] when an operator touches the
    /// genotype. `None` until first derived or for lethal genotypes.
    pub pheno: Option<Arc<Phenotype>>,
    /// The operator that last revised this genotype (`init`, `crossover`,
    /// `subtree-mut`, `gauss-mut`, `replicate`, `ls-insert`, `ls-delete`,
    /// `ls-tweak`) — elite-change journal events report it as the lineage
    /// of each improvement.
    pub origin: &'static str,
}

impl Individual {
    /// A fresh, unevaluated individual.
    pub fn new(tree: DerivTree) -> Self {
        Individual {
            tree,
            fitness: f64::INFINITY,
            fully_evaluated: false,
            pheno: None,
            origin: "init",
        }
    }

    /// Mark as needing re-evaluation (after a structural or parameter
    /// change). Drops the phenotype memo — parameter values are baked into
    /// the simplified/compiled system, so any genotype touch stales it.
    pub fn invalidate(&mut self) {
        self.fitness = f64::INFINITY;
        self.fully_evaluated = false;
        self.pheno = None;
    }

    /// Strictly-better comparison (lower RMSE wins; ties keep the incumbent).
    pub fn better_than(&self, other: &Individual) -> bool {
        self.fitness < other.fitness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_tag::grammar::test_fixtures::tiny_grammar;

    #[test]
    fn starts_unevaluated() {
        let (_, t) = tiny_grammar();
        let ind = Individual::new(t);
        assert_eq!(ind.fitness, f64::INFINITY);
        assert!(!ind.fully_evaluated);
    }

    #[test]
    fn invalidate_resets() {
        let (_, t) = tiny_grammar();
        let mut ind = Individual::new(t);
        ind.fitness = 1.0;
        ind.fully_evaluated = true;
        ind.pheno = Some(std::sync::Arc::new(crate::phenotype::Phenotype::build(
            vec![gmr_expr::Expr::Num(1.0)],
            true,
        )));
        ind.invalidate();
        assert_eq!(ind.fitness, f64::INFINITY);
        assert!(!ind.fully_evaluated);
        assert!(
            ind.pheno.is_none(),
            "memo must not survive a genotype touch"
        );
    }

    #[test]
    fn clones_share_the_phenotype_memo() {
        let (_, t) = tiny_grammar();
        let mut ind = Individual::new(t);
        ind.pheno = Some(std::sync::Arc::new(crate::phenotype::Phenotype::build(
            vec![gmr_expr::Expr::Num(2.0)],
            false,
        )));
        let copy = ind.clone();
        assert!(std::sync::Arc::ptr_eq(
            ind.pheno.as_ref().unwrap(),
            copy.pheno.as_ref().unwrap()
        ));
    }

    #[test]
    fn comparison_is_strict() {
        let (_, t) = tiny_grammar();
        let mut a = Individual::new(t.clone());
        let mut b = Individual::new(t);
        a.fitness = 1.0;
        b.fitness = 1.0;
        assert!(!a.better_than(&b));
        b.fitness = 2.0;
        assert!(a.better_than(&b));
    }
}
