//! Individuals: a derivation-tree genotype plus its evaluation record.

use gmr_tag::DerivTree;

/// One member of the population.
#[derive(Debug, Clone)]
pub struct Individual {
    /// The genotype.
    pub tree: DerivTree,
    /// RMSE fitness (lower is better); `f64::INFINITY` until evaluated or
    /// for lethal phenotypes.
    pub fitness: f64,
    /// Whether the recorded fitness came from a full (non-short-circuited)
    /// evaluation. Only full evaluations update the short-circuiting
    /// baseline, and Fig. 11 reports the fraction of best models that were
    /// fully evaluated.
    pub fully_evaluated: bool,
}

impl Individual {
    /// A fresh, unevaluated individual.
    pub fn new(tree: DerivTree) -> Self {
        Individual {
            tree,
            fitness: f64::INFINITY,
            fully_evaluated: false,
        }
    }

    /// Mark as needing re-evaluation (after a structural or parameter
    /// change).
    pub fn invalidate(&mut self) {
        self.fitness = f64::INFINITY;
        self.fully_evaluated = false;
    }

    /// Strictly-better comparison (lower RMSE wins; ties keep the incumbent).
    pub fn better_than(&self, other: &Individual) -> bool {
        self.fitness < other.fitness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_tag::grammar::test_fixtures::tiny_grammar;

    #[test]
    fn starts_unevaluated() {
        let (_, t) = tiny_grammar();
        let ind = Individual::new(t);
        assert_eq!(ind.fitness, f64::INFINITY);
        assert!(!ind.fully_evaluated);
    }

    #[test]
    fn invalidate_resets() {
        let (_, t) = tiny_grammar();
        let mut ind = Individual::new(t);
        ind.fitness = 1.0;
        ind.fully_evaluated = true;
        ind.invalidate();
        assert_eq!(ind.fitness, f64::INFINITY);
        assert!(!ind.fully_evaluated);
    }

    #[test]
    fn comparison_is_strict() {
        let (_, t) = tiny_grammar();
        let mut a = Individual::new(t.clone());
        let mut b = Individual::new(t);
        a.fitness = 1.0;
        b.fitness = 1.0;
        assert!(!a.better_than(&b));
        b.fitness = 2.0;
        assert!(a.better_than(&b));
    }
}
