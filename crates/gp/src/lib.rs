//! TAG3P — tree-adjoining-grammar guided genetic programming.
//!
//! The evolutionary engine of §III-B, with the efficiency techniques of
//! §III-D. It is domain-agnostic: everything river-specific arrives through
//! a [`Grammar`](gmr_tag::Grammar) (the search space), an [`Evaluator`]
//! (the fitness problem) and [`ParamPriors`] (Gaussian-mutation bounds).
//!
//! Components:
//!
//! * [`priors`] — parameter priors driving Gaussian mutation (mean/σ/bounds,
//!   with the paper's σ = mean/4 default and end-of-run ramp-down);
//! * [`operators`] — the genetic operators on derivation trees: crossover,
//!   subtree mutation, Gaussian mutation, and the local-search moves
//!   (insertion, deletion) of Fig. 6;
//! * [`cache`] — tree caching keyed by the canonical (simplified) structural
//!   hash of the lowered system;
//! * [`short_circuit`] — evaluation short-circuiting (Algorithm 1) with a
//!   tunable eagerness threshold;
//! * [`phenotype`] — the memoised lowered + simplified + bytecode-compiled
//!   system, cached per individual and invalidated only when an operator
//!   touches the genotype;
//! * [`pool`] — the persistent evaluation pool: workers spawned once per
//!   run, candidates claimed dynamically in chunks over a shared index;
//! * [`engine`] — the generational loop: tournament selection, elitism,
//!   offspring production, stochastic hill-climbing local search, parallel
//!   fitness evaluation through the pool with a thread-count-invariant
//!   determinism contract.

pub mod cache;
pub mod engine;
pub mod individual;
pub mod operators;
pub mod phenotype;
pub mod pool;
pub mod priors;
pub mod short_circuit;

pub use cache::{CacheStats, TreeCache};
pub use engine::{Engine, Evaluator, GenStats, GpConfig, InvariantHook, RunReport};
pub use individual::Individual;
pub use operators::{
    crossover, deletion, gaussian_mutation, gaussian_mutation_partial, insertion, param_tweak,
    subtree_mutation,
};
pub use phenotype::Phenotype;
pub use pool::{PoolStats, WorkerStats};
pub use priors::ParamPriors;
pub use short_circuit::{EsController, EsOutcome};
