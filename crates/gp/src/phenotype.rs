//! The compiled phenotype: lowered + simplified + register-VM-compiled
//! system.
//!
//! Deriving a phenotype from a genotype is the fixed per-candidate overhead
//! of every §III-D technique: the cache key requires lowering and algebraic
//! simplification, and runtime compilation requires lowering the simplified
//! system again — now through the optimizing register-VM pipeline
//! ([`gmr_expr::vm`]): cross-equation CSE, constant folding, fused
//! superinstructions and the state-independent prefix split. None of that
//! work depends on anything but the genotype, so the engine memoises the
//! result on the [`Individual`](crate::Individual) and invalidates it only
//! when a genetic operator actually touches the tree — elite survivors,
//! replicated offspring and the end-of-run champion re-evaluation all reuse
//! the memo instead of re-running simplify/hash/compile every generation.

use crate::cache::TreeCache;
use gmr_expr::{CompiledSystem, Expr, FidelityPolicy, Tier};

/// A fully derived phenotype, ready to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct Phenotype {
    eqs: Vec<Expr>,
    /// The whole system compiled as one unit (cross-equation CSE needs to
    /// see both equations); `None` when runtime compilation is off.
    compiled: Option<CompiledSystem>,
    key: (u64, u64),
}

impl Phenotype {
    /// Build from an already lowered + simplified system, compiling
    /// through the full optimizing pipeline when `compile` is set.
    pub fn build(eqs: Vec<Expr>, compile: bool) -> Self {
        let keys: Vec<_> = eqs.iter().map(|e| e.structural_hash()).collect();
        let key = TreeCache::system_key(&keys);
        let compiled = compile.then(|| {
            let _sp = gmr_obsv::span_fine!("vm.compile", eqs.len() as u64);
            // Fastest tier whose results are bit-identical to the
            // interpreter: fitness must not depend on the execution tier.
            CompiledSystem::compile(&eqs, Tier::fastest(FidelityPolicy::BitExact).options())
        });
        Phenotype { eqs, compiled, key }
    }

    /// The simplified equation system.
    pub fn eqs(&self) -> &[Expr] {
        &self.eqs
    }

    /// The compiled system — `None` when the phenotype was built with
    /// runtime compilation off.
    pub fn compiled(&self) -> Option<&CompiledSystem> {
        self.compiled.as_ref()
    }

    /// The tree-cache key of the system (combined structural hash of the
    /// simplified equations).
    pub fn key(&self) -> (u64, u64) {
        self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_expr::{BinOp, EvalContext};

    fn system() -> Vec<Expr> {
        vec![
            Expr::bin(BinOp::Add, Expr::Var(0), Expr::Num(1.0)),
            Expr::bin(BinOp::Mul, Expr::State(0), Expr::Num(2.0)),
        ]
    }

    #[test]
    fn compiled_matches_interpreter() {
        let ph = Phenotype::build(system(), true);
        let sys = ph.compiled().expect("compiled on");
        let ctx = EvalContext {
            vars: &[3.0],
            state: &[5.0],
        };
        let mut scratch = sys.scratch();
        let mut out = vec![0.0; sys.n_eqs()];
        sys.eval_step(&ctx, &mut scratch, &mut out);
        for (eq, got) in ph.eqs().iter().zip(&out) {
            assert_eq!(eq.eval(&ctx), *got);
        }
    }

    #[test]
    fn uncompiled_has_no_bytecode() {
        let ph = Phenotype::build(system(), false);
        assert!(ph.compiled().is_none());
        assert_eq!(ph.eqs().len(), 2);
    }

    #[test]
    fn key_matches_system_key() {
        let eqs = system();
        let keys: Vec<_> = eqs.iter().map(|e| e.structural_hash()).collect();
        let expected = TreeCache::system_key(&keys);
        assert_eq!(Phenotype::build(eqs, true).key(), expected);
    }
}
