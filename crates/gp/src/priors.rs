//! Parameter priors for Gaussian mutation.
//!
//! §III-B3, "Prior Knowledge about Model Parameters": each constant comes
//! with an expected value and an allowed range; naturally occurring values
//! are assumed truncated-Gaussian around the expectation. Mutation draws
//! around the *current* value (the sampled value becomes the new mean), with
//! σ initially mean/4 and ramped down linearly over the final k generations.

/// Prior for one parameter kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prior {
    /// Expected (initial) value.
    pub mean: f64,
    /// Lower bound (values clamp here).
    pub min: f64,
    /// Upper bound.
    pub max: f64,
}

impl Prior {
    /// The paper's default mutation σ: a quarter of the prior mean (with a
    /// floor tied to the range so zero-mean parameters still move).
    pub fn sigma(&self) -> f64 {
        let base = self.mean.abs() / 4.0;
        if base > 0.0 {
            base
        } else {
            (self.max - self.min) / 8.0
        }
    }

    /// Clamp a proposal into the allowed range ("if the sampled value lies
    /// outside of the given range, the boundary value is used instead").
    pub fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.min, self.max)
    }
}

/// Priors for every parameter kind, indexed by kind.
#[derive(Debug, Clone, Default)]
pub struct ParamPriors {
    priors: Vec<Prior>,
}

impl ParamPriors {
    /// Build from `(mean, min, max)` triples in kind order.
    pub fn new(triples: impl IntoIterator<Item = (f64, f64, f64)>) -> Self {
        let priors = triples
            .into_iter()
            .map(|(mean, min, max)| {
                assert!(
                    min <= mean && mean <= max,
                    "prior mean must lie in [min, max]"
                );
                Prior { mean, min, max }
            })
            .collect();
        ParamPriors { priors }
    }

    /// Number of kinds covered.
    pub fn len(&self) -> usize {
        self.priors.len()
    }

    /// True when no priors are registered.
    pub fn is_empty(&self) -> bool {
        self.priors.is_empty()
    }

    /// Prior for `kind`; unknown kinds fall back to a wide unit prior so an
    /// engine misconfiguration degrades search quality rather than panicking
    /// mid-run.
    pub fn get(&self, kind: u16) -> Prior {
        self.priors.get(kind as usize).copied().unwrap_or(Prior {
            mean: 0.5,
            min: -1e3,
            max: 1e3,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_is_quarter_mean() {
        let p = Prior {
            mean: 1.89,
            min: 0.1,
            max: 4.0,
        };
        assert!((p.sigma() - 0.4725).abs() < 1e-12);
    }

    #[test]
    fn zero_mean_gets_range_based_sigma() {
        let p = Prior {
            mean: 0.0,
            min: 0.0,
            max: 0.8,
        };
        assert!(p.sigma() > 0.0);
        assert_eq!(p.sigma(), 0.1);
    }

    #[test]
    fn clamping_to_bounds() {
        let p = Prior {
            mean: 0.5,
            min: 0.0,
            max: 1.0,
        };
        assert_eq!(p.clamp(1.5), 1.0);
        assert_eq!(p.clamp(-0.2), 0.0);
        assert_eq!(p.clamp(0.3), 0.3);
    }

    #[test]
    fn lookup_and_fallback() {
        let ps = ParamPriors::new([(1.0, 0.0, 2.0), (0.1, 0.0, 0.2)]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.get(1).mean, 0.1);
        // Unknown kind: wide fallback, no panic.
        let fb = ps.get(99);
        assert!(fb.min < -100.0 && fb.max > 100.0);
    }

    #[test]
    #[should_panic(expected = "prior mean must lie in")]
    fn rejects_inconsistent_prior() {
        let _ = ParamPriors::new([(5.0, 0.0, 1.0)]);
    }
}
