//! Genetic and local-search operators on derivation trees (Fig. 6).
//!
//! All operators act on the derivation-tree genotype, which is what makes
//! TAG3P search *closed*: any subtree whose root β-tree matches the symbol
//! at an adjoining site produces a syntactically valid individual, so no
//! repair step is ever needed. Operators that cannot find a valid
//! application within a bounded number of retries leave their arguments
//! untouched and report `false` — the engine then falls back to replication,
//! matching the paper's "the previous process is retried unless the retry
//! count has reached some predefined limit".

use crate::priors::ParamPriors;
use gmr_tag::derivation::Path;
use gmr_tag::{DerivNode, DerivTree, Grammar, SymId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Bounded retries for stochastic operator application.
pub const DEFAULT_RETRIES: usize = 8;

fn gauss<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn subtree_symbol(t: &DerivTree, grammar: &Grammar, path: &[usize]) -> SymId {
    grammar.tree(t.node(path).tree).root_symbol()
}

/// Subtree crossover: select a random non-root subtree in each parent,
/// check the subtrees are mutually compatible (each can adjoin where the
/// other sits — with TAG's symbol discipline that is exactly "same root
/// symbol") and that both children respect the size bounds, then swap.
///
/// Returns `true` if a swap happened.
pub fn crossover<R: Rng>(
    a: &mut DerivTree,
    b: &mut DerivTree,
    grammar: &Grammar,
    rng: &mut R,
    min_size: usize,
    max_size: usize,
    retries: usize,
) -> bool {
    let paths_a: Vec<Path> = a.paths().into_iter().filter(|p| !p.is_empty()).collect();
    let paths_b: Vec<Path> = b.paths().into_iter().filter(|p| !p.is_empty()).collect();
    if paths_a.is_empty() || paths_b.is_empty() {
        return false;
    }
    for _ in 0..retries.max(1) {
        let pa = paths_a.choose(rng).expect("non-empty");
        let pb = paths_b.choose(rng).expect("non-empty");
        if subtree_symbol(a, grammar, pa) != subtree_symbol(b, grammar, pb) {
            continue;
        }
        let sa = a.node(pa).size();
        let sb = b.node(pb).size();
        let new_a = a.size() - sa + sb;
        let new_b = b.size() - sb + sa;
        if new_a < min_size || new_a > max_size || new_b < min_size || new_b > max_size {
            continue;
        }
        let (addr_a, sub_a) = a.detach(pa);
        let (addr_b, sub_b) = b.detach(pb);
        a.attach(&pa[..pa.len() - 1], addr_a, sub_b);
        b.attach(&pb[..pb.len() - 1], addr_b, sub_a);
        return true;
    }
    false
}

/// Grow a random derivation subtree rooted at a β-tree for `sym`, of
/// approximately `target_size` derivation nodes.
pub fn grow_subtree<R: Rng>(
    grammar: &Grammar,
    rng: &mut R,
    sym: SymId,
    target_size: usize,
) -> Option<DerivNode> {
    let beta = *grammar.betas_for(sym).choose(rng)?;
    let mut root = grammar.instantiate(beta, rng);
    while root.size() < target_size {
        let open = root.open_addresses(grammar);
        let Some((path, addr, open_sym)) = open.choose(rng).cloned() else {
            break;
        };
        let child_beta = *grammar
            .betas_for(open_sym)
            .choose(rng)
            .expect("open address implies at least one β");
        let child = grammar.instantiate(child_beta, rng);
        root.descendant_mut(&path)
            .children
            .push(gmr_tag::derivation::Adjunction { addr, child });
    }
    Some(root)
}

/// Subtree mutation: replace a random non-root subtree with a freshly grown
/// one of similar size and the same root symbol (so the result is valid by
/// construction).
pub fn subtree_mutation<R: Rng>(
    t: &mut DerivTree,
    grammar: &Grammar,
    rng: &mut R,
    max_size: usize,
    retries: usize,
) -> bool {
    let paths: Vec<Path> = t.paths().into_iter().filter(|p| !p.is_empty()).collect();
    if paths.is_empty() {
        return false;
    }
    for _ in 0..retries.max(1) {
        let p = paths.choose(rng).expect("non-empty");
        let sym = subtree_symbol(t, grammar, p);
        let old_size = t.node(p).size();
        // "similar size": within one node of the original, capped by budget.
        let budget = max_size - (t.size() - old_size);
        let target = old_size
            .saturating_add(rng.gen_range(0..=2))
            .saturating_sub(1)
            .clamp(1, budget.max(1));
        let Some(fresh) = grow_subtree(grammar, rng, sym, target) else {
            continue;
        };
        let (addr, _old) = t.detach(p);
        t.attach(&p[..p.len() - 1], addr, fresh);
        return true;
    }
    false
}

/// Gaussian mutation: perturb the constant parameters of the individual.
/// The current value is the mean of the draw; σ comes from the prior scaled
/// by `sigma_scale` (the engine ramps this down over the final generations);
/// out-of-range proposals clamp to the boundary.
///
/// `p_each` is the probability that any given constant is resampled. The
/// paper's operator resamples *all* constants (`p_each = 1.0`); lower
/// values turn the operator into a coordinate-wise random walk, which is
/// far more sample-efficient at small population budgets (see DESIGN.md).
/// At least one constant is always resampled so the operator never no-ops.
pub fn gaussian_mutation<R: Rng>(
    t: &mut DerivTree,
    grammar: &Grammar,
    priors: &ParamPriors,
    sigma_scale: f64,
    rng: &mut R,
) {
    gaussian_mutation_partial(t, grammar, priors, sigma_scale, 1.0, rng);
}

/// [`gaussian_mutation`] with a per-parameter resample probability.
pub fn gaussian_mutation_partial<R: Rng>(
    t: &mut DerivTree,
    grammar: &Grammar,
    priors: &ParamPriors,
    sigma_scale: f64,
    p_each: f64,
    rng: &mut R,
) {
    let mut params = t.root.mutable_params(grammar);
    if params.is_empty() {
        return;
    }
    let forced = rng.gen_range(0..params.len());
    for (i, (kind, v)) in params.iter_mut().enumerate() {
        if i != forced && !rng.gen_bool(p_each.clamp(0.0, 1.0)) {
            continue;
        }
        let prior = priors.get(*kind);
        let proposal = gauss(rng, **v, prior.sigma() * sigma_scale);
        **v = prior.clamp(proposal);
    }
}

/// Local-search parameter tweak: nudge one random constant with a
/// fine-grained Gaussian step (σ/4 of its prior). Complements the paper's
/// insertion/deletion moves for stochastic hill climbing; enabled by
/// [`crate::GpConfig::ls_param_tweak`].
pub fn param_tweak<R: Rng>(
    t: &mut DerivTree,
    grammar: &Grammar,
    priors: &ParamPriors,
    sigma_scale: f64,
    rng: &mut R,
) -> bool {
    let mut params = t.root.mutable_params(grammar);
    if params.is_empty() {
        return false;
    }
    let i = rng.gen_range(0..params.len());
    let (kind, v) = &mut params[i];
    let prior = priors.get(*kind);
    let proposal = gauss(rng, **v, prior.sigma() * 0.25 * sigma_scale);
    **v = prior.clamp(proposal);
    true
}

/// Local-search insertion: adjoin one random compatible β-tree at a random
/// open address (Fig. 6(e–f)). Respects `max_size`.
pub fn insertion<R: Rng>(
    t: &mut DerivTree,
    grammar: &Grammar,
    rng: &mut R,
    max_size: usize,
) -> bool {
    if t.size() >= max_size {
        return false;
    }
    let open = t.open_addresses(grammar);
    let Some((path, addr, sym)) = open.choose(rng).cloned() else {
        return false;
    };
    let beta = *grammar.betas_for(sym).choose(rng).expect("open implies β");
    let child = grammar.instantiate(beta, rng);
    t.attach(&path, addr, child);
    true
}

/// Local-search deletion: remove one random *leaf* derivation node — always
/// valid, since removing a leaf adjunction cannot orphan anything
/// (Fig. 6(g–h)). Respects `min_size` and never removes the root.
pub fn deletion<R: Rng>(
    t: &mut DerivTree,
    grammar: &Grammar,
    rng: &mut R,
    min_size: usize,
) -> bool {
    let _ = grammar;
    if t.size() <= min_size.max(1) {
        return false;
    }
    let leaves: Vec<Path> = t
        .paths()
        .into_iter()
        .filter(|p| !p.is_empty() && t.node(p).children.is_empty())
        .collect();
    let Some(p) = leaves.choose(rng) else {
        return false;
    };
    let _ = t.detach(p);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_tag::grammar::test_fixtures::tiny_grammar;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn crossover_preserves_validity_and_total_size() {
        let (g, _) = tiny_grammar();
        let mut r = rng(1);
        for trial in 0..100u64 {
            let mut a = g.random_tree(&mut r, 2, 12);
            let mut b = g.random_tree(&mut r, 2, 12);
            let total = a.size() + b.size();
            let swapped = crossover(&mut a, &mut b, &g, &mut r, 1, 20, 8);
            assert_eq!(a.size() + b.size(), total, "trial {trial}");
            a.validate(&g).unwrap();
            b.validate(&g).unwrap();
            let _ = swapped;
        }
    }

    #[test]
    fn crossover_respects_size_bounds() {
        let (g, _) = tiny_grammar();
        let mut r = rng(2);
        for _ in 0..100 {
            let mut a = g.random_tree(&mut r, 2, 10);
            let mut b = g.random_tree(&mut r, 2, 10);
            if crossover(&mut a, &mut b, &g, &mut r, 2, 10, 8) {
                assert!(a.size() >= 2 && a.size() <= 10);
                assert!(b.size() >= 2 && b.size() <= 10);
            }
        }
    }

    #[test]
    fn subtree_mutation_keeps_tree_valid() {
        let (g, _) = tiny_grammar();
        let mut r = rng(3);
        for _ in 0..100 {
            let mut t = g.random_tree(&mut r, 3, 12);
            subtree_mutation(&mut t, &g, &mut r, 20, 8);
            t.validate(&g).unwrap();
            assert!(t.size() <= 20);
        }
    }

    #[test]
    fn gaussian_mutation_moves_params_within_bounds() {
        let (g, mut t0) = tiny_grammar();
        let priors = ParamPriors::new([(2.0, 0.0, 4.0), (0.5, 0.0, 1.0)]);
        let mut r = rng(4);
        let before: Vec<f64> = t0
            .root
            .mutable_params(&g)
            .iter()
            .map(|(_, v)| **v)
            .collect();
        let mut t = t0.clone();
        gaussian_mutation(&mut t, &g, &priors, 1.0, &mut r);
        let after: Vec<f64> = t.root.mutable_params(&g).iter().map(|(_, v)| **v).collect();
        assert_eq!(before.len(), after.len());
        assert_ne!(before, after, "at least one parameter should move");
        for (kind, v) in t.root.mutable_params(&g) {
            let p = priors.get(kind);
            assert!(*v >= p.min && *v <= p.max);
        }
    }

    #[test]
    fn gaussian_mutation_with_zero_scale_is_identity_up_to_clamp() {
        let (g, t0) = tiny_grammar();
        let priors = ParamPriors::new([(2.0, 0.0, 4.0), (0.5, 0.0, 1.0)]);
        let mut t = t0.clone();
        let mut r = rng(5);
        gaussian_mutation(&mut t, &g, &priors, 0.0, &mut r);
        assert_eq!(t, t0);
    }

    #[test]
    fn insertion_adds_exactly_one_node() {
        let (g, _) = tiny_grammar();
        let mut r = rng(6);
        let mut t = g.random_tree(&mut r, 2, 5);
        let before = t.size();
        assert!(insertion(&mut t, &g, &mut r, 50));
        assert_eq!(t.size(), before + 1);
        t.validate(&g).unwrap();
    }

    #[test]
    fn insertion_respects_max_size() {
        let (g, _) = tiny_grammar();
        let mut r = rng(7);
        let mut t = g.random_tree(&mut r, 5, 5);
        assert!(!insertion(&mut t, &g, &mut r, 5));
        assert_eq!(t.size(), 5);
    }

    #[test]
    fn deletion_removes_exactly_one_leaf() {
        let (g, _) = tiny_grammar();
        let mut r = rng(8);
        let mut t = g.random_tree(&mut r, 4, 8);
        let before = t.size();
        assert!(deletion(&mut t, &g, &mut r, 1));
        assert_eq!(t.size(), before - 1);
        t.validate(&g).unwrap();
    }

    #[test]
    fn deletion_respects_min_size_and_root() {
        let (g, _) = tiny_grammar();
        let mut r = rng(9);
        let mut t = g.random_tree(&mut r, 1, 1);
        assert!(!deletion(&mut t, &g, &mut r, 1));
        assert_eq!(t.size(), 1);
    }

    #[test]
    fn insert_then_delete_round_trips_size() {
        let (g, _) = tiny_grammar();
        let mut r = rng(10);
        let mut t = g.random_tree(&mut r, 3, 6);
        let s = t.size();
        assert!(insertion(&mut t, &g, &mut r, 50));
        assert!(deletion(&mut t, &g, &mut r, 1));
        assert_eq!(t.size(), s);
        t.validate(&g).unwrap();
    }

    #[test]
    fn grow_subtree_hits_target_size() {
        let (g, _) = tiny_grammar();
        let exp = g.symbol("Exp").unwrap();
        let mut r = rng(11);
        for target in 1..10 {
            let sub = grow_subtree(&g, &mut r, exp, target).unwrap();
            assert_eq!(sub.size(), target.max(1));
        }
    }

    #[test]
    fn grow_subtree_unknown_symbol_returns_none() {
        let (g, _) = tiny_grammar();
        let r_sym = g.symbol("R").unwrap();
        let mut r = rng(12);
        assert!(grow_subtree(&g, &mut r, r_sym, 3).is_none());
    }
}
