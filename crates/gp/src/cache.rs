//! Tree caching (§III-D): memoise fitness by canonical tree identity.
//!
//! "We cache the results of tree evaluation, and reuse them when we need to
//! reevaluate the same trees. … GMR improves the hit rate by algebraically
//! simplifying the trees before they are evaluated." The cache key is the
//! combined structural hash of the *simplified* lowered system, so
//! semantically identical revisions (`x + 0`, commuted operands, folded
//! numerics) share one entry.
//!
//! The map is sharded behind `parking_lot` mutexes for cheap concurrent
//! access from the parallel evaluation pool and uses the identity hash
//! (keys are already 128-bit mixes). When a shard exceeds its budget it
//! evicts incrementally — short-circuited (surrogate) entries first, then
//! half the remainder — rather than clearing wholesale, so an eviction wave
//! does not discard the hot fully-evaluated entries that elitism and
//! replication keep hitting. Fitness caching tolerates loss, never
//! staleness (keys are pure functions of the phenotype).

use gmr_expr::TreeKey;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity hasher for pre-mixed 128-bit keys.
#[derive(Default)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 writes are expected; fold anything else cheaply.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ b as u64;
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
    }
}

const SHARDS: usize = 16;

/// A cached evaluation: fitness and whether it came from a full evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedFitness {
    /// The recorded fitness.
    pub fitness: f64,
    /// Whether it was a full (non-short-circuited) evaluation.
    pub full: bool,
}

/// Hit/miss counters (monotonic, lock-free).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheStats {
    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
    /// Hit rate in `[0, 1]` (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

type Shard = HashMap<(u64, u64), CachedFitness, BuildHasherDefault<IdentityHasher>>;

/// Sharded fitness cache.
pub struct TreeCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    stats: CacheStats,
}

impl TreeCache {
    /// Create with a total entry budget (split across shards).
    pub fn new(capacity: usize) -> Self {
        TreeCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap: (capacity / SHARDS).max(16),
            stats: CacheStats::default(),
        }
    }

    /// Combine the per-equation keys of a lowered system into one cache key.
    pub fn system_key(keys: &[TreeKey]) -> (u64, u64) {
        let mut a = 0x243f_6a88_85a3_08d3u64;
        let mut b = 0x1319_8a2e_0370_7344u64;
        for k in keys {
            a = (a.rotate_left(13) ^ k.0).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            b = (b.rotate_left(29) ^ k.1).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        }
        (a, b)
    }

    fn shard(&self, key: (u64, u64)) -> &Mutex<Shard> {
        &self.shards[(key.0 as usize) % SHARDS]
    }

    /// Look up a fitness, recording hit/miss.
    pub fn get(&self, key: (u64, u64)) -> Option<CachedFitness> {
        let found = self.shard(key).lock().get(&key).copied();
        if found.is_some() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Insert (upgrading a short-circuited entry to a full one, never the
    /// reverse).
    pub fn insert(&self, key: (u64, u64), value: CachedFitness) {
        let mut shard = self.shard(key).lock();
        if shard.len() >= self.per_shard_cap {
            Self::evict(&mut shard, self.per_shard_cap);
        }
        match shard.get(&key) {
            Some(existing) if existing.full && !value.full => {}
            _ => {
                shard.insert(key, value);
            }
        }
    }

    /// Shed load from an over-budget shard without discarding its hot set:
    /// drop short-circuited (surrogate) entries first — they are cheap to
    /// recompute and their fitness is approximate anyway — and only if that
    /// leaves the shard still at budget thin the survivors to half.
    fn evict(shard: &mut Shard, cap: usize) {
        let before = shard.len();
        shard.retain(|_, v| v.full);
        let after_surrogates = shard.len();
        if shard.len() >= cap {
            let mut i = 0usize;
            shard.retain(|_, _| {
                i += 1;
                i.is_multiple_of(2)
            });
        }
        if gmr_obsv::enabled() {
            gmr_obsv::emit(gmr_obsv::Event::CacheEvict {
                shed_surrogate: (before - after_surrogates) as u64,
                shed_full: (after_surrogates - shard.len()) as u64,
                len_after: shard.len() as u64,
            });
        }
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_expr::{BinOp, Expr};

    fn key_of(e: &Expr) -> (u64, u64) {
        TreeCache::system_key(&[e.structural_hash()])
    }

    #[test]
    fn round_trip() {
        let cache = TreeCache::new(1024);
        let e = Expr::bin(BinOp::Add, Expr::Var(0), Expr::Num(1.0));
        let k = key_of(&e);
        assert!(cache.get(k).is_none());
        cache.insert(
            k,
            CachedFitness {
                fitness: 3.5,
                full: true,
            },
        );
        assert_eq!(
            cache.get(k),
            Some(CachedFitness {
                fitness: 3.5,
                full: true
            })
        );
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
    }

    #[test]
    fn different_trees_different_entries() {
        let cache = TreeCache::new(1024);
        let a = Expr::Var(0);
        let b = Expr::Var(1);
        cache.insert(
            key_of(&a),
            CachedFitness {
                fitness: 1.0,
                full: true,
            },
        );
        cache.insert(
            key_of(&b),
            CachedFitness {
                fitness: 2.0,
                full: true,
            },
        );
        assert_eq!(cache.get(key_of(&a)).unwrap().fitness, 1.0);
        assert_eq!(cache.get(key_of(&b)).unwrap().fitness, 2.0);
    }

    #[test]
    fn full_entries_not_downgraded() {
        let cache = TreeCache::new(1024);
        let k = (1, 2);
        cache.insert(
            k,
            CachedFitness {
                fitness: 1.0,
                full: true,
            },
        );
        cache.insert(
            k,
            CachedFitness {
                fitness: 9.0,
                full: false,
            },
        );
        assert_eq!(
            cache.get(k).unwrap(),
            CachedFitness {
                fitness: 1.0,
                full: true
            }
        );
        // But full overwrites short-circuited.
        cache.insert(
            k,
            CachedFitness {
                fitness: 0.5,
                full: true,
            },
        );
        assert_eq!(cache.get(k).unwrap().fitness, 0.5);
    }

    #[test]
    fn eviction_keeps_cache_bounded() {
        let cache = TreeCache::new(SHARDS * 16);
        for i in 0..10_000u64 {
            cache.insert(
                (i, i),
                CachedFitness {
                    fitness: i as f64,
                    full: true,
                },
            );
        }
        assert!(cache.len() <= SHARDS * 16 + SHARDS, "len {}", cache.len());
    }

    #[test]
    fn eviction_sheds_surrogates_before_full_entries() {
        // One shard's worth of entries: fill with full entries to just
        // under the cap, pad with short-circuited surrogates, then
        // overflow. The surrogates must go first; every full entry stays.
        let per_shard = 16; // capacity SHARDS*16 → 16 per shard
        let cache = TreeCache::new(SHARDS * per_shard);
        let full_keys: Vec<(u64, u64)> = (0..10).map(|i| (i * SHARDS as u64, i)).collect();
        for (n, &k) in full_keys.iter().enumerate() {
            cache.insert(
                k,
                CachedFitness {
                    fitness: n as f64,
                    full: true,
                },
            );
        }
        for i in 10..per_shard as u64 + 1 {
            cache.insert(
                (i * SHARDS as u64, i),
                CachedFitness {
                    fitness: 999.0,
                    full: false,
                },
            );
        }
        for (n, &k) in full_keys.iter().enumerate() {
            assert_eq!(
                cache.get(k).map(|v| v.fitness),
                Some(n as f64),
                "full entry {n} must survive the eviction wave"
            );
        }
    }

    #[test]
    fn eviction_wave_keeps_roughly_half_the_hot_set() {
        // All-full entries overflowing a single shard repeatedly: the old
        // clear-the-shard policy left ~0 survivors after each wave; the
        // halving policy must keep the shard at least half-populated.
        let per_shard = 64;
        let cache = TreeCache::new(SHARDS * per_shard);
        for i in 0..(per_shard as u64 * 3) {
            cache.insert(
                (i * SHARDS as u64, i),
                CachedFitness {
                    fitness: i as f64,
                    full: true,
                },
            );
        }
        let survivors = cache.len();
        assert!(
            survivors >= per_shard / 2,
            "eviction should halve, not clear: {survivors} left"
        );
        // Hit rate over the most recent cap-worth of keys survives the
        // wave (the clear-the-shard policy this replaces dropped the whole
        // working set at once, zeroing the post-wave hit rate).
        let mut hits = 0;
        for i in (per_shard as u64 * 2)..(per_shard as u64 * 3) {
            if cache.get((i * SHARDS as u64, i)).is_some() {
                hits += 1;
            }
        }
        assert!(
            hits >= per_shard / 4,
            "recent keys should largely survive: {hits}/{per_shard}"
        );
    }

    #[test]
    fn system_key_order_sensitive() {
        let a = Expr::Var(0).structural_hash();
        let b = Expr::Var(1).structural_hash();
        assert_ne!(
            TreeCache::system_key(&[a, b]),
            TreeCache::system_key(&[b, a])
        );
    }

    #[test]
    fn hit_rate_accounting() {
        let cache = TreeCache::new(64);
        let k = (7, 7);
        let _ = cache.get(k); // miss
        cache.insert(
            k,
            CachedFitness {
                fitness: 1.0,
                full: true,
            },
        );
        let _ = cache.get(k); // hit
        let _ = cache.get(k); // hit
        assert!((cache.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cache = Arc::new(TreeCache::new(4096));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let k = (i % 64, t);
                    c.insert(
                        k,
                        CachedFitness {
                            fitness: i as f64,
                            full: true,
                        },
                    );
                    let _ = c.get(k);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.stats().hits() > 0);
    }
}
