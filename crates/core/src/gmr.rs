//! The top-level GMR runner (Fig. 5).

use crate::evaluator::{river_priors, RiverEvaluator};
use gmr_bio::{river_grammar, RiverGrammar, RiverProblem};
use gmr_expr::Expr;
use gmr_gp::{Engine, GpConfig, RunReport};
use gmr_hydro::data::RiverDataset;
use gmr_tag::lower::lower_system;
use gmr_tag::DerivTree;

/// GMR configuration: the GP engine settings plus the multi-run protocol.
#[derive(Debug, Clone)]
pub struct GmrConfig {
    /// Engine settings (paper Appendix B defaults).
    pub gp: GpConfig,
    /// Independent runs with different seeds (paper: 60). The best model by
    /// *training* fitness is selected; all finalists are kept for analysis.
    pub runs: usize,
}

impl Default for GmrConfig {
    fn default() -> Self {
        GmrConfig {
            gp: GpConfig::default(),
            runs: 1,
        }
    }
}

/// Outcome of one GMR run.
#[derive(Debug, Clone)]
pub struct GmrResult {
    /// The winning genotype.
    pub tree: DerivTree,
    /// Its lowered, simplified equations `[dBPhy/dt, dBZoo/dt]`.
    pub equations: Vec<Expr>,
    /// Training RMSE / MAE.
    pub train_rmse: f64,
    /// Training MAE.
    pub train_mae: f64,
    /// Test RMSE.
    pub test_rmse: f64,
    /// Test MAE.
    pub test_mae: f64,
    /// Engine counters and history.
    pub report: RunReport,
}

impl GmrResult {
    /// Pretty-print the revised equations with the canonical names.
    pub fn render(&self, grammar: &RiverGrammar) -> String {
        let mut out = String::new();
        let labels = ["dBPhy/dt", "dBZoo/dt"];
        for (label, eq) in labels.iter().zip(&self.equations) {
            out.push_str(label);
            out.push_str(" = ");
            out.push_str(&eq.display(&grammar.names).to_string());
            out.push('\n');
        }
        out
    }
}

/// The genetic model revision framework bound to a dataset.
pub struct Gmr {
    /// The compiled prior knowledge.
    pub grammar: RiverGrammar,
    /// Training problem (fitness).
    pub train: RiverProblem,
    /// Held-out test problem (reporting only — never touches the search).
    pub test: RiverProblem,
}

impl Gmr {
    /// Bind the framework to a dataset's train/test splits.
    pub fn new(dataset: &RiverDataset) -> Self {
        Gmr {
            grammar: river_grammar(),
            train: RiverProblem::from_dataset(dataset, dataset.train),
            test: RiverProblem::from_dataset(dataset, dataset.test),
        }
    }

    /// Score a genotype on both splits.
    pub fn score(&self, tree: &DerivTree) -> (Vec<Expr>, [f64; 4]) {
        let derived = tree.derived(&self.grammar.grammar);
        let eqs = lower_system(&derived, 2).expect("river genotypes lower to two equations");
        let sys = [eqs[0].clone(), eqs[1].clone()];
        let scores = [
            self.train.rmse(&sys),
            self.train.mae(&sys),
            self.test.rmse(&sys),
            self.test.mae(&sys),
        ];
        (eqs, scores)
    }

    /// One GMR run with the given engine settings.
    pub fn run(&self, gp: &GpConfig) -> GmrResult {
        let evaluator = RiverEvaluator::new(self.train.clone());
        let engine = Engine::new(
            &self.grammar.grammar,
            &evaluator,
            river_priors(),
            gp.clone(),
        );
        let report = engine.run();
        let tree = report.best.tree.clone();
        let (equations, [train_rmse, train_mae, test_rmse, test_mae]) = self.score(&tree);
        GmrResult {
            tree,
            equations,
            train_rmse,
            train_mae,
            test_rmse,
            test_mae,
            report,
        }
    }

    /// The paper's multi-run protocol: `cfg.runs` independent runs with
    /// derived seeds. Results are sorted by training RMSE (the selection
    /// criterion available without peeking at the test set).
    pub fn run_many(&self, cfg: &GmrConfig) -> Vec<GmrResult> {
        let mut results: Vec<GmrResult> = (0..cfg.runs.max(1))
            .map(|i| {
                let mut gp = cfg.gp.clone();
                gp.seed = cfg
                    .gp
                    .seed
                    .wrapping_add(0x9e37_79b9u64.wrapping_mul(i as u64 + 1));
                self.run(&gp)
            })
            .collect();
        results.sort_by(|a, b| a.train_rmse.total_cmp(&b.train_rmse));
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_bio::manual::manual_system;
    use gmr_hydro::{generate, SyntheticConfig};

    fn small_dataset() -> gmr_hydro::RiverDataset {
        generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1998,
            train_end_year: 1997,
            ..Default::default()
        })
    }

    fn tiny_gp(seed: u64) -> GpConfig {
        GpConfig {
            pop_size: 16,
            max_gen: 4,
            local_search_steps: 1,
            threads: 2,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn gmr_run_produces_scored_result() {
        let ds = small_dataset();
        let gmr = Gmr::new(&ds);
        let res = gmr.run(&tiny_gp(1));
        assert_eq!(res.equations.len(), 2);
        assert!(res.train_rmse.is_finite());
        assert!(res.test_rmse.is_finite());
        assert!(res.train_rmse > 0.0);
        res.tree.validate(&gmr.grammar.grammar).unwrap();
    }

    #[test]
    fn gmr_beats_or_matches_unrevised_manual_on_training() {
        let ds = small_dataset();
        let gmr = Gmr::new(&ds);
        let manual = manual_system();
        let manual_rmse = gmr.train.rmse(&manual);
        let res = gmr.run(&tiny_gp(2));
        assert!(
            res.train_rmse <= manual_rmse,
            "revision should not be worse than the seed: {} vs {manual_rmse}",
            res.train_rmse
        );
    }

    #[test]
    fn run_many_sorted_by_train_rmse() {
        let ds = small_dataset();
        let gmr = Gmr::new(&ds);
        let cfg = GmrConfig {
            gp: tiny_gp(3),
            runs: 3,
        };
        let results = gmr.run_many(&cfg);
        assert_eq!(results.len(), 3);
        for w in results.windows(2) {
            assert!(w[0].train_rmse <= w[1].train_rmse);
        }
    }

    #[test]
    fn render_mentions_states() {
        let ds = small_dataset();
        let gmr = Gmr::new(&ds);
        let res = gmr.run(&tiny_gp(4));
        let text = res.render(&gmr.grammar);
        assert!(text.contains("dBPhy/dt ="));
        assert!(text.contains("dBZoo/dt ="));
        assert!(text.contains("BPhy"));
    }
}
