//! The top-level GMR runner (Fig. 5).

use crate::evaluator::{river_priors, RiverEvaluator};
use gmr_bio::{river_grammar, RiverGrammar, RiverProblem};
use gmr_expr::Expr;
use gmr_gp::{Engine, GpConfig, RunReport};
use gmr_hydro::data::RiverDataset;
use gmr_lint::{EquationLinter, Policy, Report};
use gmr_tag::lower::lower_system;
use gmr_tag::DerivTree;

/// GMR configuration: the GP engine settings plus the multi-run protocol.
#[derive(Debug, Clone)]
pub struct GmrConfig {
    /// Engine settings (paper Appendix B defaults).
    pub gp: GpConfig,
    /// Independent runs with different seeds (paper: 60). The best model by
    /// *training* fitness is selected; all finalists are kept for analysis.
    pub runs: usize,
    /// Run the `gmr-lint` battery over each generation's elite and panic on
    /// `Error`-level findings (a constant escaping its Table III prior, a
    /// lexeme the grammar should never produce). Cheap relative to fitness
    /// evaluation but pure overhead in production, so it defaults to on
    /// only in debug builds.
    pub lint_elite: bool,
}

impl Default for GmrConfig {
    fn default() -> Self {
        GmrConfig {
            gp: GpConfig::default(),
            runs: 1,
            lint_elite: cfg!(debug_assertions),
        }
    }
}

/// Outcome of one GMR run.
#[derive(Debug, Clone)]
pub struct GmrResult {
    /// The winning genotype.
    pub tree: DerivTree,
    /// Its lowered, simplified equations `[dBPhy/dt, dBZoo/dt]`.
    pub equations: Vec<Expr>,
    /// Training RMSE / MAE.
    pub train_rmse: f64,
    /// Training MAE.
    pub train_mae: f64,
    /// Test RMSE.
    pub test_rmse: f64,
    /// Test MAE.
    pub test_mae: f64,
    /// Engine counters and history.
    pub report: RunReport,
}

impl GmrResult {
    /// Pretty-print the revised equations with the canonical names.
    pub fn render(&self, grammar: &RiverGrammar) -> String {
        let mut out = String::new();
        let labels = ["dBPhy/dt", "dBZoo/dt"];
        for (label, eq) in labels.iter().zip(&self.equations) {
            out.push_str(label);
            out.push_str(" = ");
            out.push_str(&eq.display(&grammar.names).to_string());
            out.push('\n');
        }
        out
    }
}

/// The genetic model revision framework bound to a dataset.
pub struct Gmr {
    /// The compiled prior knowledge.
    pub grammar: RiverGrammar,
    /// Training problem (fitness).
    pub train: RiverProblem,
    /// Held-out test problem (reporting only — never touches the search).
    pub test: RiverProblem,
    /// The `gmr-lint` report for the compiled grammar, recorded at
    /// construction. Error-free for the built-in grammar; kept around so
    /// callers customising grammars can inspect what the linter thought.
    pub grammar_lints: Report,
}

impl Gmr {
    /// Bind the framework to a dataset's train/test splits.
    ///
    /// Construction runs the grammar-level lints (reachability, dead pools,
    /// connector/extender discipline); `Error`-level findings are a
    /// specification bug in the prior knowledge, so they panic in debug
    /// builds.
    pub fn new(dataset: &RiverDataset) -> Self {
        let grammar = river_grammar();
        let grammar_lints = gmr_lint::lint_grammar(&grammar.grammar);
        debug_assert!(
            grammar_lints.is_clean(),
            "compiled river grammar fails its own lints:\n{}",
            grammar_lints.render_human()
        );
        Gmr {
            grammar,
            train: RiverProblem::from_dataset(dataset, dataset.train),
            test: RiverProblem::from_dataset(dataset, dataset.test),
            grammar_lints,
        }
    }

    /// Score a genotype on both splits.
    pub fn score(&self, tree: &DerivTree) -> (Vec<Expr>, [f64; 4]) {
        let derived = tree.derived(&self.grammar.grammar);
        let eqs = lower_system(&derived, 2).expect("river genotypes lower to two equations");
        let sys = [eqs[0].clone(), eqs[1].clone()];
        let scores = [
            self.train.rmse(&sys),
            self.train.mae(&sys),
            self.test.rmse(&sys),
            self.test.mae(&sys),
        ];
        (eqs, scores)
    }

    /// One GMR run with the given engine settings. Elite linting follows
    /// the build profile (see [`GmrConfig::lint_elite`]); use
    /// [`Self::run_with_lint`] to choose explicitly.
    pub fn run(&self, gp: &GpConfig) -> GmrResult {
        self.run_with_lint(gp, cfg!(debug_assertions))
    }

    /// One GMR run. With `lint_elite`, each generation's elite phenotypes
    /// pass through the `gmr-lint` battery under the revision policy — a
    /// tripwire for search-layer bugs (a mutated constant escaping its
    /// Table III prior, a lexeme that should never have grounded) — and the
    /// elite's *compiled bytecode* through the abstract interpreter
    /// (`gmr_lint::analyze_system`), so a miscompilation the pipeline's own
    /// debug asserts miss (an unprovable register bound, a state load
    /// hoisted into the prefix) is caught at the generation it appears; an
    /// `Error`-level finding panics.
    pub fn run_with_lint(&self, gp: &GpConfig, lint_elite: bool) -> GmrResult {
        let evaluator = RiverEvaluator::new(self.train.clone());
        let mut engine = Engine::new(
            &self.grammar.grammar,
            &evaluator,
            river_priors(),
            gp.clone(),
        );
        if lint_elite {
            let linter = EquationLinter::river(Policy::Revision);
            engine.set_invariant_hook(move |gen, _, eqs| {
                let report = linter.lint(eqs);
                assert!(
                    report.is_clean(),
                    "generation {gen}: elite phenotype fails static analysis:\n{}",
                    report.render_human()
                );
                let n_vars = linter.intervals.vars.len();
                let n_states = linter.intervals.states.len();
                let sys = gmr_expr::CompiledSystem::compile_checked(
                    eqs,
                    n_vars,
                    n_states,
                    gmr_expr::OptOptions::full(),
                )
                .unwrap_or_else(|e| panic!("generation {gen}: elite does not compile: {e:?}"));
                let analysis = gmr_lint::analyze_system(&sys, &linter.intervals, "elite");
                assert!(
                    analysis.report.is_clean() && analysis.safety.proved(),
                    "generation {gen}: elite bytecode fails verification:\n{}",
                    analysis.report.render_human()
                );
            });
        }
        let report = engine.run();
        let tree = report.best.tree.clone();
        let (equations, [train_rmse, train_mae, test_rmse, test_mae]) = self.score(&tree);
        GmrResult {
            tree,
            equations,
            train_rmse,
            train_mae,
            test_rmse,
            test_mae,
            report,
        }
    }

    /// The paper's multi-run protocol: `cfg.runs` independent runs with
    /// derived seeds. Results are sorted by training RMSE (the selection
    /// criterion available without peeking at the test set).
    pub fn run_many(&self, cfg: &GmrConfig) -> Vec<GmrResult> {
        let mut results: Vec<GmrResult> = (0..cfg.runs.max(1))
            .map(|i| {
                let mut gp = cfg.gp.clone();
                gp.seed = cfg
                    .gp
                    .seed
                    .wrapping_add(0x9e37_79b9u64.wrapping_mul(i as u64 + 1));
                self.run_with_lint(&gp, cfg.lint_elite)
            })
            .collect();
        results.sort_by(|a, b| a.train_rmse.total_cmp(&b.train_rmse));
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_bio::manual::manual_system;
    use gmr_hydro::{generate, SyntheticConfig};

    fn small_dataset() -> gmr_hydro::RiverDataset {
        generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1998,
            train_end_year: 1997,
            ..Default::default()
        })
    }

    fn tiny_gp(seed: u64) -> GpConfig {
        GpConfig {
            pop_size: 16,
            max_gen: 4,
            local_search_steps: 1,
            threads: 2,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn gmr_run_produces_scored_result() {
        let ds = small_dataset();
        let gmr = Gmr::new(&ds);
        let res = gmr.run(&tiny_gp(1));
        assert_eq!(res.equations.len(), 2);
        assert!(res.train_rmse.is_finite());
        assert!(res.test_rmse.is_finite());
        assert!(res.train_rmse > 0.0);
        res.tree.validate(&gmr.grammar.grammar).unwrap();
    }

    #[test]
    fn gmr_beats_or_matches_unrevised_manual_on_training() {
        let ds = small_dataset();
        let gmr = Gmr::new(&ds);
        let manual = manual_system();
        let manual_rmse = gmr.train.rmse(&manual);
        let res = gmr.run(&tiny_gp(2));
        assert!(
            res.train_rmse <= manual_rmse,
            "revision should not be worse than the seed: {} vs {manual_rmse}",
            res.train_rmse
        );
    }

    #[test]
    fn run_many_sorted_by_train_rmse() {
        let ds = small_dataset();
        let gmr = Gmr::new(&ds);
        let cfg = GmrConfig {
            gp: tiny_gp(3),
            runs: 3,
            ..GmrConfig::default()
        };
        let results = gmr.run_many(&cfg);
        assert_eq!(results.len(), 3);
        for w in results.windows(2) {
            assert!(w[0].train_rmse <= w[1].train_rmse);
        }
    }

    #[test]
    fn grammar_lints_are_recorded_and_clean() {
        let ds = small_dataset();
        let gmr = Gmr::new(&ds);
        assert!(
            gmr.grammar_lints.is_clean(),
            "{}",
            gmr.grammar_lints.render_human()
        );
    }

    #[test]
    fn elite_linting_observes_without_perturbing_the_search() {
        let ds = small_dataset();
        let gmr = Gmr::new(&ds);
        let mut gp = tiny_gp(5);
        gp.threads = 1; // exact-trajectory comparison needs determinism
        let linted = gmr.run_with_lint(&gp, true);
        let plain = gmr.run_with_lint(&gp, false);
        assert_eq!(linted.tree, plain.tree);
        assert_eq!(linted.train_rmse, plain.train_rmse);
    }

    #[test]
    fn render_mentions_states() {
        let ds = small_dataset();
        let gmr = Gmr::new(&ds);
        let res = gmr.run(&tiny_gp(4));
        let text = res.render(&gmr.grammar);
        assert!(text.contains("dBPhy/dt ="));
        assert!(text.contains("dBZoo/dt ="));
        assert!(text.contains("BPhy"));
    }
}
