//! Adapters between the river problem and the GP engine.

use gmr_bio::params::{NUM_CALIBRATED, PARAMS};
use gmr_bio::RiverProblem;
use gmr_gp::{Evaluator, ParamPriors, Phenotype};

/// Table III (plus the `R` pseudo-parameter) as GP mutation priors.
pub fn river_priors() -> ParamPriors {
    ParamPriors::new(PARAMS.iter().map(|p| (p.mean, p.min, p.max)))
}

/// Number of calibratable constants, re-exported for the baselines.
pub const NUM_CALIBRATED_PARAMS: usize = NUM_CALIBRATED;

/// [`gmr_gp::Evaluator`] implementation for the two-equation river system.
pub struct RiverEvaluator {
    problem: RiverProblem,
}

impl RiverEvaluator {
    /// Wrap a materialised problem.
    pub fn new(problem: RiverProblem) -> Self {
        RiverEvaluator { problem }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &RiverProblem {
        &self.problem
    }
}

impl Evaluator for RiverEvaluator {
    fn num_equations(&self) -> usize {
        2
    }

    fn num_cases(&self) -> usize {
        self.problem.num_cases()
    }

    fn evaluate(&self, ph: &Phenotype, ctl: &mut dyn FnMut(f64, usize) -> bool) -> (f64, bool) {
        let eqs = ph.eqs();
        debug_assert_eq!(eqs.len(), 2);
        // The engine compiled the system once per genotype; reuse it here
        // instead of recompiling per evaluation.
        self.problem
            .evaluate_precompiled([&eqs[0], &eqs[1]], ph.compiled(), ctl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_bio::manual::manual_system;
    use gmr_hydro::{generate, SyntheticConfig};

    fn evaluator() -> RiverEvaluator {
        let ds = generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1996,
            train_end_year: 1996,
            ..Default::default()
        });
        RiverEvaluator::new(RiverProblem::from_dataset(&ds, ds.train))
    }

    #[test]
    fn priors_cover_all_kinds() {
        let p = river_priors();
        assert_eq!(p.len(), PARAMS.len());
        assert_eq!(p.get(0).mean, 1.89); // CUA
        assert_eq!(p.get(16).max, 1.0); // R
    }

    #[test]
    fn evaluator_matches_direct_rmse() {
        let ev = evaluator();
        let eqs = manual_system();
        let ph = Phenotype::build(eqs.to_vec(), false);
        let (fit, full) = Evaluator::evaluate(&ev, &ph, &mut |_, _| true);
        assert!(full);
        let direct = ev.problem().rmse(&eqs);
        if direct.is_finite() {
            assert!((fit - direct).abs() < 1e-9);
        } else {
            assert_eq!(fit, f64::INFINITY);
        }
    }

    #[test]
    fn shapes() {
        let ev = evaluator();
        assert_eq!(ev.num_equations(), 2);
        assert_eq!(ev.num_cases(), 366);
    }
}
