//! Ecological analysis of revised models (§IV-E, Fig. 9).
//!
//! The paper's headline interpretability claims are quantitative: among the
//! 50 best models, how often is each variable selected, and does perturbing
//! it move the predicted biomass up or down? This module implements both
//! analyses plus a per-model account of which extension points were used.

use gmr_bio::RiverProblem;
use gmr_expr::Expr;
use gmr_tag::{DerivTree, Grammar};

/// Sign of a variable's influence on predicted biomass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correlation {
    /// Increasing the variable increases mean predicted B_Phy.
    Positive,
    /// Increasing the variable decreases mean predicted B_Phy.
    Negative,
    /// No measurable effect (or the variable is unused).
    Uncorrelated,
}

/// Fraction (in percent) of `models` whose phytoplankton equation mentions
/// each variable in `vars`. This is Fig. 9's "selectivity (%) among the N
/// best models".
pub fn selectivity(models: &[Vec<Expr>], vars: &[u8]) -> Vec<f64> {
    if models.is_empty() {
        return vec![0.0; vars.len()];
    }
    vars.iter()
        .map(|v| {
            let hits = models
                .iter()
                .filter(|eqs| eqs.iter().any(|e| e.variables().contains(v)))
                .count();
            100.0 * hits as f64 / models.len() as f64
        })
        .collect()
}

/// Perturbation-based correlation: scale variable `var` by `1 + eps` across
/// the whole forcing record and compare mean predicted biomass.
pub fn perturb_correlation(
    problem: &RiverProblem,
    eqs: &[Expr; 2],
    var: u8,
    eps: f64,
) -> Correlation {
    let base = mean_prediction(problem, eqs);
    let mut perturbed = problem.clone();
    for row in &mut perturbed.forcings {
        row[var as usize] *= 1.0 + eps;
    }
    let moved = mean_prediction(&perturbed, eqs);
    let denom = base.abs().max(1e-9);
    let rel = (moved - base) / denom;
    if rel > 1e-4 {
        Correlation::Positive
    } else if rel < -1e-4 {
        Correlation::Negative
    } else {
        Correlation::Uncorrelated
    }
}

fn mean_prediction(problem: &RiverProblem, eqs: &[Expr; 2]) -> f64 {
    let pred = problem.simulate(eqs);
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().sum::<f64>() / pred.len() as f64
}

/// How many β-trees were adjoined at each extension point, recovered from
/// the derivation tree by reading the root symbols of the adjoined
/// elementary trees (`ExtC_k` = a connector at extension *k*; `ExtE_k` = an
/// extender growing extension *k*'s material).
///
/// Returns `(ext_id, connectors, extenders)` triples for every extension
/// that was touched, sorted by id.
pub fn extension_usage(tree: &DerivTree, grammar: &Grammar) -> Vec<(u8, usize, usize)> {
    let mut counts: Vec<(u8, usize, usize)> = Vec::new();
    for path in tree.paths() {
        if path.is_empty() {
            continue; // the root is the initial process
        }
        let node = tree.node(&path);
        let sym = grammar.tree(node.tree).root_symbol();
        let name = grammar.symbol_name(sym);
        let (is_connector, id) = if let Some(rest) = name.strip_prefix("ExtC") {
            (true, rest.parse::<u8>().ok())
        } else if let Some(rest) = name.strip_prefix("ExtE") {
            (false, rest.parse::<u8>().ok())
        } else {
            (false, None)
        };
        let Some(id) = id else { continue };
        let entry = match counts.iter_mut().find(|(e, _, _)| *e == id) {
            Some(e) => e,
            None => {
                counts.push((id, 0, 0));
                counts.last_mut().expect("just pushed")
            }
        };
        if is_connector {
            entry.1 += 1;
        } else {
            entry.2 += 1;
        }
    }
    counts.sort_by_key(|(id, _, _)| *id);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_bio::manual::manual_system;
    use gmr_bio::river_grammar;
    use gmr_hydro::vars::*;
    use gmr_hydro::{generate, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem() -> RiverProblem {
        let ds = generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1996,
            train_end_year: 1996,
            ..Default::default()
        });
        RiverProblem::from_dataset(&ds, ds.train)
    }

    #[test]
    fn selectivity_counts_mentions() {
        let [phy, zoo] = manual_system();
        let with = vec![phy.clone(), zoo.clone()];
        let without = vec![Expr::Num(0.0), Expr::Num(0.0)];
        let models = vec![with, without];
        let sel = selectivity(&models, &[VLGT, VPH]);
        assert_eq!(sel[0], 50.0); // Vlgt in the manual model only
        assert_eq!(sel[1], 0.0); // Vph in neither
    }

    #[test]
    fn selectivity_empty_models() {
        assert_eq!(selectivity(&[], &[VLGT]), vec![0.0]);
    }

    #[test]
    fn light_positively_correlates_in_manual_model() {
        // Under the Steele response with typical light below the optimum,
        // more light → more growth.
        let p = problem();
        let eqs = manual_system();
        assert_eq!(
            perturb_correlation(&p, &eqs, VLGT, 0.10),
            Correlation::Positive
        );
    }

    #[test]
    fn unused_variable_is_uncorrelated() {
        let p = problem();
        let eqs = manual_system();
        // Vcd does not appear in the manual equations.
        assert_eq!(
            perturb_correlation(&p, &eqs, VCD, 0.10),
            Correlation::Uncorrelated
        );
    }

    #[test]
    fn extension_usage_on_random_revision() {
        let rg = river_grammar();
        let mut rng = StdRng::seed_from_u64(5);
        let t = rg.grammar.random_tree(&mut rng, 6, 12);
        let usage = extension_usage(&t, &rg.grammar);
        let total: usize = usage.iter().map(|(_, c, e)| c + e).sum();
        assert_eq!(
            total,
            t.size() - 1,
            "every non-root node belongs to an extension"
        );
        for (id, _, _) in &usage {
            assert!(matches!(id, 1..=3 | 5..=9));
        }
    }

    #[test]
    fn extension_usage_empty_for_bare_alpha() {
        let rg = river_grammar();
        let mut rng = StdRng::seed_from_u64(1);
        let t = rg.grammar.random_tree(&mut rng, 1, 1);
        assert!(extension_usage(&t, &rg.grammar).is_empty());
    }
}
