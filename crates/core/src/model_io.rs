//! Persisting revised models.
//!
//! A revised model's *phenotype* is just a pair of equations, and the
//! pretty-printer embeds every calibrated constant (`CUA[1.73]`), so the
//! rendered text is a complete, human-readable, re-parseable artifact —
//! the natural interchange format for "ship the model the search found to
//! the operations team". This module writes and reads that format.
//!
//! Format: one equation per line, `dBPhy/dt = …` then `dBZoo/dt = …`;
//! `#`-prefixed comment lines (scores, provenance) are ignored on load.

use crate::gmr::GmrResult;
use gmr_bio::manual::name_table;
use gmr_expr::{parse, Expr, ParseError};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised while loading a model file.
#[derive(Debug)]
pub enum ModelIoError {
    /// Filesystem failure.
    Io(io::Error),
    /// A line did not have the `lhs = rhs` shape.
    MissingEquals { line: usize },
    /// The right-hand side failed to parse.
    Parse { line: usize, err: ParseError },
    /// The file did not contain exactly two equations.
    WrongCount { found: usize },
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "io error: {e}"),
            ModelIoError::MissingEquals { line } => {
                write!(f, "line {line}: expected 'lhs = rhs'")
            }
            ModelIoError::Parse { line, err } => write!(f, "line {line}: {err}"),
            ModelIoError::WrongCount { found } => {
                write!(f, "expected 2 equations, found {found}")
            }
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// Render a model file: provenance comments plus the two equations.
pub fn render_model(result: &GmrResult) -> String {
    let names = name_table();
    let mut out = String::new();
    out.push_str("# genetic model revision — revised river process\n");
    out.push_str(&format!(
        "# train RMSE {:.6}  train MAE {:.6}\n",
        result.train_rmse, result.train_mae
    ));
    out.push_str(&format!(
        "# test RMSE {:.6}  test MAE {:.6}\n",
        result.test_rmse, result.test_mae
    ));
    let labels = ["dBPhy/dt", "dBZoo/dt"];
    for (label, eq) in labels.iter().zip(&result.equations) {
        out.push_str(&format!("{label} = {}\n", eq.display(&names)));
    }
    out
}

/// Write a model file.
pub fn save_model(result: &GmrResult, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    fs::write(path, render_model(result))?;
    Ok(())
}

/// Parse a model file's equations back into `[dBPhy/dt, dBZoo/dt]`.
pub fn parse_model(text: &str) -> Result<[Expr; 2], ModelIoError> {
    let names = name_table();
    let mut eqs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (_, rhs) = line
            .split_once('=')
            .ok_or(ModelIoError::MissingEquals { line: i + 1 })?;
        // Loaded constants carry their embedded values; the default is only
        // used for bare parameter names, which the renderer never emits.
        let eq = parse(rhs.trim(), &names, |k| gmr_bio::params::spec(k).mean)
            .map_err(|err| ModelIoError::Parse { line: i + 1, err })?;
        eqs.push(eq);
    }
    let found = eqs.len();
    let mut it = eqs.into_iter();
    match (it.next(), it.next(), found) {
        (Some(a), Some(b), 2) => Ok([a, b]),
        _ => Err(ModelIoError::WrongCount { found }),
    }
}

/// Read a model file.
pub fn load_model(path: impl AsRef<Path>) -> Result<[Expr; 2], ModelIoError> {
    let text = fs::read_to_string(path)?;
    parse_model(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmr::{Gmr, GmrConfig};
    use gmr_gp::GpConfig;
    use gmr_hydro::{generate, SyntheticConfig};

    fn result() -> (Gmr, GmrResult) {
        let ds = generate(&SyntheticConfig {
            start_year: 1996,
            end_year: 1997,
            train_end_year: 1996,
            ..Default::default()
        });
        let gmr = Gmr::new(&ds);
        let cfg = GmrConfig {
            gp: GpConfig {
                pop_size: 12,
                max_gen: 3,
                local_search_steps: 1,
                threads: 2,
                seed: 5,
                ..GpConfig::default()
            },
            runs: 1,
            ..GmrConfig::default()
        };
        let res = gmr.run_many(&cfg).remove(0);
        (gmr, res)
    }

    #[test]
    fn round_trip_preserves_equations_and_scores() {
        let (gmr, res) = result();
        let text = render_model(&res);
        let loaded = parse_model(&text).expect("model file parses");
        assert_eq!(loaded[0], res.equations[0]);
        assert_eq!(loaded[1], res.equations[1]);
        // The loaded model reproduces the recorded scores exactly.
        assert_eq!(gmr.train.rmse(&loaded), res.train_rmse);
        assert_eq!(gmr.test.rmse(&loaded), res.test_rmse);
    }

    #[test]
    fn file_round_trip() {
        let (_, res) = result();
        let dir = std::env::temp_dir().join("gmr-model-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("revised.gmr");
        save_model(&res, &path).expect("writes");
        let loaded = load_model(&path).expect("reads");
        assert_eq!(loaded[0], res.equations[0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_equation_count() {
        let err = parse_model("dBPhy/dt = BPhy * 1").unwrap_err();
        assert!(matches!(err, ModelIoError::WrongCount { found: 1 }));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            parse_model("no equals sign here"),
            Err(ModelIoError::MissingEquals { line: 1 })
        ));
        assert!(matches!(
            parse_model("a = )(bad"),
            Err(ModelIoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let (_, res) = result();
        let mut text = String::from("\n# a comment\n\n");
        text.push_str(&render_model(&res));
        assert!(parse_model(&text).is_ok());
    }
}
