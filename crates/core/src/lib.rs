//! Genetic Model Revision (GMR) — the paper's primary contribution.
//!
//! This crate ties the stack together into the framework of Fig. 5: the
//! three kinds of prior knowledge (plausible processes, plausible revisions,
//! parameter priors — all compiled by `gmr-bio` into a TAG grammar and
//! priors) govern a TAG3P search (`gmr-gp`) over revisions of the expert
//! river model, evaluated by forward integration against observations
//! (`gmr-bio` + `gmr-hydro`).
//!
//! * [`evaluator`] — the adapter implementing the GP engine's fitness trait
//!   for the river problem;
//! * [`gmr`] — the top-level [`gmr::Gmr`] runner: configure, run (or
//!   run repeatedly with different seeds, as the paper's 60-run protocol
//!   does), obtain revised models with train/test scores;
//! * [`analysis`] — the §IV-E interpretability toolkit: extension usage,
//!   variable selectivity among the best models, and perturbation-based
//!   correlation signs (Fig. 9);
//! * [`model_io`] — save/load revised models as re-parseable equation
//!   files (the interchange artifact for shipping a discovered model).

pub mod analysis;
pub mod evaluator;
pub mod gmr;
pub mod model_io;

/// The workspace's shared zero-dependency JSON module ([`gmr_json`]),
/// re-exported so artifact tooling built on `gmr-core` reaches the same
/// parser the observability and serving layers use.
pub use gmr_json as json;

pub use analysis::{extension_usage, perturb_correlation, selectivity, Correlation};
pub use evaluator::{river_priors, RiverEvaluator};
pub use gmr::{Gmr, GmrConfig, GmrResult};
pub use model_io::{load_model, parse_model, render_model, save_model, ModelIoError};
