//! Ablation benches for the design decisions DESIGN.md calls out:
//!
//! * simplify-before-hash (the cache-hit-rate mechanism) vs hashing raw
//!   trees — measures the extra canonicalisation cost that buys the higher
//!   hit rate;
//! * the connector/extender grammar: derivation→derived-tree construction
//!   and lowering cost as chromosomes grow;
//! * Gaussian mutation with prior-σ vs a naive fixed σ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmr_bio::river_grammar;
use gmr_core::river_priors;
use gmr_expr::simplify;
use gmr_gp::operators::gaussian_mutation;
use gmr_gp::ParamPriors;
use gmr_tag::lower::lower_system;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_simplify_before_hash(c: &mut Criterion) {
    let rg = river_grammar();
    let mut rng = StdRng::seed_from_u64(7);
    let tree = rg.grammar.random_tree(&mut rng, 20, 40);
    let eqs = lower_system(&tree.derived(&rg.grammar), 2).expect("lowers");

    let mut g = c.benchmark_group("cache_key");
    g.bench_function("raw_hash", |b| {
        b.iter(|| {
            let keys: Vec<_> = eqs.iter().map(|e| e.structural_hash()).collect();
            black_box(keys)
        })
    });
    g.bench_function("simplify_then_hash", |b| {
        b.iter(|| {
            let keys: Vec<_> = eqs.iter().map(|e| simplify(e).structural_hash()).collect();
            black_box(keys)
        })
    });
    g.finish();
}

fn bench_derivation_pipeline(c: &mut Criterion) {
    let rg = river_grammar();
    let mut g = c.benchmark_group("derivation_pipeline");
    for size in [2usize, 10, 25, 50] {
        let mut rng = StdRng::seed_from_u64(size as u64);
        let tree = rg.grammar.random_tree(&mut rng, size, size);
        g.bench_with_input(BenchmarkId::new("derive_and_lower", size), &tree, |b, t| {
            b.iter(|| {
                let derived = t.derived(&rg.grammar);
                black_box(lower_system(&derived, 2).expect("lowers"))
            })
        });
    }
    g.finish();
}

fn bench_gaussian_mutation(c: &mut Criterion) {
    let rg = river_grammar();
    let mut rng = StdRng::seed_from_u64(3);
    let tree = rg.grammar.random_tree(&mut rng, 10, 30);
    let prior = river_priors();
    let naive = ParamPriors::new((0..17).map(|_| (0.5, -10.0, 10.0)));

    let mut g = c.benchmark_group("gaussian_mutation");
    g.bench_function("prior_sigma", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            let mut t = tree.clone();
            gaussian_mutation(&mut t, &rg.grammar, &prior, 1.0, &mut rng);
            black_box(t)
        })
    });
    g.bench_function("naive_sigma", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            let mut t = tree.clone();
            gaussian_mutation(&mut t, &rg.grammar, &naive, 1.0, &mut rng);
            black_box(t)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_simplify_before_hash, bench_derivation_pipeline, bench_gaussian_mutation
}
criterion_main!(benches);
