//! Criterion microbenches behind Figure 10: the per-technique cost of one
//! fitness evaluation — interpreted vs compiled simulation, cache-key
//! hashing and cache hits, and short-circuited vs full evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gmr_bio::manual::manual_system;
use gmr_bio::RiverProblem;
use gmr_expr::{simplify, CompiledSystem, OptOptions};
use gmr_gp::cache::{CachedFitness, TreeCache};
use gmr_hydro::{generate, SyntheticConfig};
use std::hint::black_box;

fn problem() -> RiverProblem {
    let ds = generate(&SyntheticConfig {
        start_year: 1996,
        end_year: 1998,
        train_end_year: 1997,
        ..Default::default()
    });
    RiverProblem::from_dataset(&ds, ds.train)
}

fn bench_simulation(c: &mut Criterion) {
    let p = problem();
    let eqs = manual_system();
    let compiled = CompiledSystem::compile(&eqs, OptOptions::full());

    let mut g = c.benchmark_group("simulation");
    g.bench_function("interpreted", |b| {
        b.iter(|| black_box(p.simulate(black_box(&eqs))))
    });
    g.bench_function("compiled", |b| {
        b.iter(|| black_box(p.simulate_compiled(black_box(&compiled))))
    });
    g.bench_function("compile_cost", |b| {
        b.iter(|| black_box(CompiledSystem::compile(black_box(&eqs), OptOptions::full())))
    });
    g.finish();
}

fn bench_short_circuit(c: &mut Criterion) {
    let p = problem();
    let eqs = manual_system();
    let mut g = c.benchmark_group("short_circuit");
    g.bench_function("full_evaluation", |b| {
        b.iter(|| black_box(p.evaluate_with(black_box(&eqs), true, &mut |_, _| true)))
    });
    g.bench_function("stop_after_64_cases", |b| {
        b.iter(|| black_box(p.evaluate_with(black_box(&eqs), true, &mut |_, done| done < 64)))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let eqs = manual_system();
    let simplified: Vec<_> = eqs.iter().map(simplify).collect();
    let keys: Vec<_> = simplified.iter().map(|e| e.structural_hash()).collect();
    let mut g = c.benchmark_group("tree_cache");
    g.bench_function("simplify_and_hash", |b| {
        b.iter(|| {
            let s: Vec<_> = eqs.iter().map(simplify).collect();
            let k: Vec<_> = s.iter().map(|e| e.structural_hash()).collect();
            black_box(TreeCache::system_key(&k))
        })
    });
    g.bench_function("hit", |b| {
        let cache = TreeCache::new(1024);
        let key = TreeCache::system_key(&keys);
        cache.insert(
            key,
            CachedFitness {
                fitness: 1.0,
                full: true,
            },
        );
        b.iter(|| black_box(cache.get(black_box(key))))
    });
    g.bench_function("miss_and_insert", |b| {
        let cache = TreeCache::new(1 << 16);
        let mut i = 0u64;
        b.iter_batched(
            || {
                i += 1;
                (i, i.rotate_left(13))
            },
            |key| {
                let _ = cache.get(key);
                cache.insert(
                    key,
                    CachedFitness {
                        fitness: 1.0,
                        full: true,
                    },
                );
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulation, bench_short_circuit, bench_cache
}
criterion_main!(benches);
