//! Engine-level benches: population initialisation, genetic-operator
//! throughput, and one full generation of the river search (the unit the
//! paper's Fig. 10 wall-clock numbers are built from).

use criterion::{criterion_group, criterion_main, Criterion};
use gmr_bench::{dataset, Scale};
use gmr_bio::river_grammar;
use gmr_bio::RiverProblem;
use gmr_core::{river_priors, RiverEvaluator};
use gmr_gp::operators::{crossover, subtree_mutation};
use gmr_gp::{Engine, GpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_init(c: &mut Criterion) {
    let rg = river_grammar();
    c.bench_function("random_tree_size2_50", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(rg.grammar.random_tree(&mut rng, 2, 50)))
    });
}

fn bench_operators(c: &mut Criterion) {
    let rg = river_grammar();
    let mut rng = StdRng::seed_from_u64(2);
    let a = rg.grammar.random_tree(&mut rng, 10, 30);
    let b_tree = rg.grammar.random_tree(&mut rng, 10, 30);

    let mut g = c.benchmark_group("operators");
    g.bench_function("crossover", |bench| {
        let mut rng = StdRng::seed_from_u64(3);
        bench.iter(|| {
            let mut x = a.clone();
            let mut y = b_tree.clone();
            black_box(crossover(&mut x, &mut y, &rg.grammar, &mut rng, 2, 50, 8))
        })
    });
    g.bench_function("subtree_mutation", |bench| {
        let mut rng = StdRng::seed_from_u64(4);
        bench.iter(|| {
            let mut x = a.clone();
            black_box(subtree_mutation(&mut x, &rg.grammar, &mut rng, 50, 8))
        })
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut scale = Scale::quick();
    scale.end_year = 1997;
    scale.train_end_year = 1996;
    let ds = dataset(&scale);
    let rg = river_grammar();
    let train = RiverProblem::from_dataset(&ds, ds.train);
    let evaluator = RiverEvaluator::new(train);
    let priors = river_priors();

    c.bench_function("one_generation_pop16", |b| {
        b.iter(|| {
            let cfg = GpConfig {
                pop_size: 16,
                max_gen: 1,
                local_search_steps: 1,
                threads: 1,
                seed: 5,
                ..GpConfig::default()
            };
            let engine = Engine::new(&rg.grammar, &evaluator, priors.clone(), cfg);
            black_box(engine.run().best.fitness)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_init, bench_operators, bench_generation
}
criterion_main!(benches);
