//! Generator test: the checked-in `crates/expr/src/fusion_gen.rs` must be
//! exactly what the committed opcode corpus derives — both through the
//! `gmr-expr` selection rule (`FusionTable::from_pair_counts`) and through
//! the `gmr-trace` sibling renderer (`render_fusion_gen`). A drift in
//! either copy of the rule, a hand-edit of the generated file, or a stale
//! corpus all fail here before CI's regenerate-and-diff step runs.

use gmr_expr::fusion::FusionTable;
use gmr_expr::fusion_gen;
use gmr_obsv::opcodes::{render_fusion_gen, OpcodeCorpus, Selection};
use std::path::Path;

fn repo_path(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn committed_corpus() -> OpcodeCorpus {
    let src = std::fs::read_to_string(repo_path("results/OPCODE_corpus.json"))
        .expect("results/OPCODE_corpus.json is committed");
    OpcodeCorpus::parse_json(&src).expect("committed corpus parses as gmr-opcodes/v1")
}

#[test]
fn selected_table_rederives_from_committed_corpus() {
    let corpus = committed_corpus();
    assert_eq!(corpus.total, fusion_gen::CORPUS_TOTAL);
    let pairs: Vec<(&str, &str, char, u64)> = corpus
        .pairs
        .iter()
        .map(|(p, c, pos, n)| (p.as_str(), c.as_str(), *pos, *n))
        .collect();
    let rederived = FusionTable::from_pair_counts(&pairs, corpus.total);
    assert_eq!(
        rederived,
        fusion_gen::SELECTED,
        "fusion_gen::SELECTED no longer matches the committed corpus — \
         regenerate with `gmr-trace opcodes --from-corpus results/OPCODE_corpus.json \
         --fusion-table-out crates/expr/src/fusion_gen.rs`"
    );
}

#[test]
fn generated_file_is_byte_identical_to_both_renderers() {
    let corpus = committed_corpus();
    let committed = std::fs::read_to_string(repo_path("crates/expr/src/fusion_gen.rs"))
        .expect("crates/expr/src/fusion_gen.rs is committed");

    // The gmr-trace renderer (what `--fusion-table-out` writes).
    let via_trace = render_fusion_gen(&corpus, "results/OPCODE_corpus.json");
    assert_eq!(
        via_trace, committed,
        "gmr-trace renderer drifted from the checked-in file"
    );

    // The gmr-expr renderer (the byte-for-byte sibling).
    let pairs: Vec<(&str, &str, char, u64)> = corpus
        .pairs
        .iter()
        .map(|(p, c, pos, n)| (p.as_str(), c.as_str(), *pos, *n))
        .collect();
    let table = FusionTable::from_pair_counts(&pairs, corpus.total);
    let via_expr = table.render_generated(
        "results/OPCODE_corpus.json",
        corpus.elites,
        corpus.total,
        &pairs,
    );
    assert_eq!(
        via_expr, committed,
        "gmr-expr renderer drifted from the checked-in file"
    );
}

#[test]
fn trace_selection_matches_expr_selection() {
    let corpus = committed_corpus();
    let sel = Selection::from_corpus(&corpus);
    let s = fusion_gen::SELECTED;
    assert_eq!(
        (
            sel.mul_add,
            sel.mul_sub,
            sel.sub_mul,
            sel.var_bin,
            sel.const_bin
        ),
        (s.mul_add, s.mul_sub, s.sub_mul, s.var_bin, s.const_bin),
        "gmr-trace's Selection and gmr-expr's FusionTable disagree on the same corpus"
    );
}
