//! Shared CLI plumbing for the experiment binaries.
//!
//! Every `exp_*` binary agrees on three flags, parsed in exactly one
//! place:
//!
//! * `--quiet` / `-q` — warnings only;
//! * `-v` / `--verbose` — diagnostic logging *and* fine span detail
//!   (per-candidate VM spans, per-station network timings);
//! * `--journal PATH` — flush the run journal to `gmr-journal/v1` JSONL
//!   at exit, ready for `gmr-trace summary|chrome|validate`.
//!
//! Binaries call [`init_obsv`] first thing in `main` and [`finish_obsv`]
//! last; [`write_report`] drops a full [`RunReport`] (pool statistics and
//! metric snapshot included) next to an experiment's other `results/`
//! outputs.

use gmr_gp::RunReport;
use gmr_obsv::log::Level;

/// Observability state shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Obsv {
    /// Where `--journal` asked the run journal to be flushed.
    pub journal: Option<String>,
    /// The verbosity the shared flags resolved to.
    pub level: Level,
}

/// Parse the shared observability flags from `std::env::args` and install
/// the global state: log level, journal ring, and span detail (raised to
/// [`gmr_obsv::Detail::Fine`] under `-v`).
pub fn init_obsv() -> Obsv {
    let args: Vec<String> = std::env::args().collect();
    init_obsv_from(&args)
}

/// [`init_obsv`] over an explicit argument list (testable).
pub fn init_obsv_from<S: AsRef<str>>(args: &[S]) -> Obsv {
    let level = gmr_obsv::log::level_from_args(args);
    gmr_obsv::log::set_level(level);
    gmr_obsv::init(gmr_obsv::DEFAULT_CAPACITY);
    if level == Level::Debug {
        gmr_obsv::span::set_detail(gmr_obsv::Detail::Fine);
    }
    let journal = args
        .iter()
        .position(|a| a.as_ref() == "--journal")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_ref().to_string());
    Obsv { journal, level }
}

/// Flush the journal to the `--journal` path, if one was given. Call at
/// the end of `main`, after the last run completed.
pub fn finish_obsv(obsv: &Obsv) {
    let Some(path) = &obsv.journal else { return };
    match gmr_obsv::write_jsonl(path) {
        Ok(()) => gmr_obsv::info!("wrote journal {path}"),
        Err(e) => gmr_obsv::warn!("cannot write journal {path}: {e}"),
    }
}

/// Serialize a [`RunReport`] to `results/<stem>-report.json` — the full
/// picture (per-generation history, pool worker statistics, metric
/// snapshot) behind a table's summary row. Best-effort: experiments never
/// fail over a results directory.
pub fn write_report(stem: &str, report: &RunReport) {
    if std::fs::create_dir_all("results").is_err() {
        return;
    }
    let path = format!("results/{stem}-report.json");
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => gmr_obsv::info!("wrote {path}"),
        Err(e) => gmr_obsv::warn!("cannot write {path}: {e}"),
    }
}

/// Export a finished GMR champion as a `gmr-model/v1` serving artifact at
/// `results/<stem>-model.json` — equations with constants embedded,
/// train/test scores and the journal hash as provenance — ready for
/// `gmr-serve serve --artifacts results/`. Best-effort like
/// [`write_report`].
pub fn write_artifact(stem: &str, result: &gmr_core::GmrResult, seed: u64) {
    if std::fs::create_dir_all("results").is_err() {
        return;
    }
    let artifact = gmr_serve::ModelArtifact::from_gmr(stem, result, seed);
    let path = format!("results/{stem}-model.json");
    match artifact.save(&path) {
        Ok(()) => gmr_obsv::info!("wrote {path}"),
        Err(e) => gmr_obsv::warn!("cannot write {path}: {e}"),
    }
}

/// Lower-case a variant label into a filename stem chunk: alphanumerics
/// kept, everything else collapsed to single dashes.
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_flag_takes_the_following_argument() {
        let o = init_obsv_from(&["exp", "--journal", "run.jsonl", "--quick"]);
        assert_eq!(o.journal.as_deref(), Some("run.jsonl"));
        let o = init_obsv_from(&["exp", "--quick"]);
        assert_eq!(o.journal, None);
    }

    #[test]
    fn slug_collapses_punctuation() {
        assert_eq!(slug("ES opt-1.0"), "es-opt-1-0");
        assert_eq!(slug("paper-letter"), "paper-letter");
        assert_eq!(slug("  TH 0.7  "), "th-0-7");
    }
}
