//! Runners producing one Table V row per method.

use crate::Scale;
use gmr_baselines::arimax::{ArimaxConfig, ArimaxModel};
use gmr_baselines::calibrators::all_calibrators;
use gmr_baselines::gggp::{Gggp, GggpConfig};
use gmr_baselines::lstm::{LstmConfig, LstmModel};
use gmr_baselines::objective::CalibrationProblem;
use gmr_baselines::MethodScore;
use gmr_bio::manual::manual_system;
use gmr_bio::RiverProblem;
use gmr_core::{Gmr, GmrConfig, GmrResult};
use gmr_hydro::network::StationKind;
use gmr_hydro::{RiverDataset, Split, NUM_VARS};

/// Exogenous feature rows over a split: the ten variables at S1 alone, or
/// at all nine measuring stations (the paper's `-S1` / `-All` variants).
pub fn exog_features(ds: &RiverDataset, split: Split, all_stations: bool) -> Vec<Vec<f64>> {
    let station_ids: Vec<usize> = if all_stations {
        ds.network
            .stations()
            .filter(|(_, s)| s.kind == StationKind::Measuring)
            .map(|(id, _)| id.0)
            .collect()
    } else {
        vec![ds.target.0]
    };
    (split.start..split.end)
        .map(|day| {
            let mut row = Vec::with_capacity(station_ids.len() * NUM_VARS);
            for &s in &station_ids {
                row.extend_from_slice(&ds.stations[s].vars[day]);
            }
            row
        })
        .collect()
}

/// The M ANUAL row: the expert equations at their prior means.
pub fn run_manual(train: &RiverProblem, test: &RiverProblem) -> MethodScore {
    MethodScore::from_system("Manual", "Knowledge-driven", &manual_system(), train, test)
}

/// All nine calibration rows. Each method runs `seeds` independent times;
/// the best row by test RMSE is kept, matching the paper's Table V protocol
/// ("best models denote those with the smallest test RMSE").
pub fn run_calibrators(
    train: &RiverProblem,
    test: &RiverProblem,
    budget: usize,
    seeds: usize,
    seed: u64,
) -> Vec<MethodScore> {
    let cp = CalibrationProblem::new(train.clone());
    all_calibrators()
        .iter()
        .map(|c| {
            (0..seeds.max(1))
                .map(|i| {
                    let out = c.calibrate(&cp, budget, seed.wrapping_add(31 * i as u64));
                    let eqs = cp.instantiate(&out.theta);
                    MethodScore::from_system(c.name(), "Model calibration", &eqs, train, test)
                })
                .min_by(|a, b| a.test_rmse.total_cmp(&b.test_rmse))
                .expect("at least one seed")
        })
        .collect()
}

/// The GGGP model-revision row.
pub fn run_gggp(
    train: &RiverProblem,
    test: &RiverProblem,
    scale: &Scale,
    seed: u64,
) -> MethodScore {
    let cfg = GggpConfig {
        pop_size: scale.gggp_pop,
        max_gen: scale.gggp_gen,
        seed,
        ..GggpConfig::default()
    };
    let res = Gggp::new(train, cfg).run();
    MethodScore::from_system("GGGP", "Model revision", &res.equations, train, test)
}

/// The GMR row, plus the full per-run results for downstream analysis
/// (Fig. 9 reuses the finalists). Selection among the independent runs
/// follows the paper's Table V protocol: "best models denote those with the
/// smallest test RMSE".
pub fn run_gmr(ds: &RiverDataset, scale: &Scale, seed: u64) -> (MethodScore, Vec<GmrResult>) {
    let gmr = Gmr::new(ds);
    let cfg = GmrConfig {
        gp: scale.gp_config(seed),
        runs: scale.gmr_runs,
        ..GmrConfig::default()
    };
    let mut results = gmr.run_many(&cfg);
    results.sort_by(|a, b| a.test_rmse.total_cmp(&b.test_rmse));
    let best = results.first().expect("at least one run");
    let score = MethodScore {
        name: "GMR".into(),
        class: "Model revision".into(),
        train_rmse: best.train_rmse,
        train_mae: best.train_mae,
        test_rmse: best.test_rmse,
        test_mae: best.test_mae,
    };
    (score, results)
}

/// One ARIMAX row (`-S1` or `-All`).
pub fn run_arimax(ds: &RiverDataset, all_stations: bool) -> MethodScore {
    let name = if all_stations {
        "ARIMAX-All"
    } else {
        "ARIMAX-S1"
    };
    let y_train = ds.observed(ds.train).to_vec();
    let y_test = ds.observed(ds.test).to_vec();
    let x_train = exog_features(ds, ds.train, all_stations);
    let x_test = exog_features(ds, ds.test, all_stations);
    match ArimaxModel::fit(&y_train, &x_train, &ArimaxConfig::default()) {
        Ok(m) => {
            // Both splits are scored in free-run mode — the information
            // regime every process model operates under. (One-step-ahead
            // "fitted values" on weekly-interpolated chlorophyll are nearly
            // exact by construction and would not be comparable.)
            let seed_len = (2 * (m.p + m.d)).max(4).min(y_train.len() / 2);
            let fitted: Vec<f64> = {
                let mut v: Vec<f64> = y_train[..seed_len].to_vec();
                v.extend(
                    m.forecast(&y_train[..seed_len], &x_train[seed_len..])
                        .iter()
                        .map(|p| p.max(0.0)),
                );
                v
            };
            let forecast: Vec<f64> = m
                .forecast(&y_train, &x_test)
                .iter()
                .map(|v| v.max(0.0))
                .collect();
            MethodScore::from_predictions(
                name,
                "Data-driven",
                &fitted,
                &y_train,
                &forecast,
                &y_test,
            )
        }
        Err(_) => MethodScore {
            name: name.into(),
            class: "Data-driven".into(),
            train_rmse: f64::INFINITY,
            train_mae: f64::INFINITY,
            test_rmse: f64::INFINITY,
            test_mae: f64::INFINITY,
        },
    }
}

/// The chlorophyll measurement cadence at S1 — one week. "The next time
/// step" for the biological target is the next *measurement*, so the RNN
/// (like the paper's) forecasts one cadence step ahead.
pub const RNN_HORIZON: usize = 7;

/// One RNN (LSTM) row (`-S1` or `-All`): "predicting the phytoplankton
/// biomass at S1 at the next time step from observed variables at the
/// current time" — features at day t pair with chlorophyll at day t+7
/// (the weekly measurement cadence).
pub fn run_rnn(ds: &RiverDataset, all_stations: bool, epochs: usize, seed: u64) -> MethodScore {
    let name = if all_stations { "RNN-All" } else { "RNN-S1" };
    let h = RNN_HORIZON;
    let y_train = ds.observed(ds.train)[h..].to_vec();
    let y_test = ds.observed(ds.test)[h..].to_vec();
    let mut x_train = exog_features(ds, ds.train, all_stations);
    x_train.truncate(x_train.len() - h);
    let mut x_test = exog_features(ds, ds.test, all_stations);
    x_test.truncate(x_test.len() - h);
    let cfg = LstmConfig {
        epochs,
        seed,
        ..LstmConfig::default()
    };
    let model = LstmModel::train(&x_train, &y_train, &cfg);
    let train_pred = model.predict(&x_train);
    let test_pred = model.predict(&x_test);
    MethodScore::from_predictions(
        name,
        "Data-driven",
        &train_pred,
        &y_train,
        &test_pred,
        &y_test,
    )
}

/// The full Table V roster, in the paper's row order. Returns the rows plus
/// the GMR finalists for reuse.
pub fn run_all(ds: &RiverDataset, scale: &Scale, seed: u64) -> (Vec<MethodScore>, Vec<GmrResult>) {
    let train = RiverProblem::from_dataset(ds, ds.train);
    let test = RiverProblem::from_dataset(ds, ds.test);
    let mut rows = Vec::new();
    gmr_obsv::info!("[{}] Manual…", scale.name);
    rows.push(run_manual(&train, &test));
    gmr_obsv::info!("[{}] RNN-S1…", scale.name);
    rows.push(run_rnn(ds, false, scale.lstm_epochs_s1, seed));
    gmr_obsv::info!("[{}] RNN-All…", scale.name);
    rows.push(run_rnn(ds, true, scale.lstm_epochs_all, seed));
    gmr_obsv::info!("[{}] ARIMAX-S1…", scale.name);
    rows.push(run_arimax(ds, false));
    gmr_obsv::info!("[{}] ARIMAX-All…", scale.name);
    rows.push(run_arimax(ds, true));
    gmr_obsv::info!("[{}] calibration ×9…", scale.name);
    rows.extend(run_calibrators(
        &train,
        &test,
        scale.calib_budget,
        scale.calib_seeds,
        seed,
    ));
    gmr_obsv::info!("[{}] GGGP…", scale.name);
    rows.push(run_gggp(&train, &test, scale, seed));
    gmr_obsv::info!("[{}] GMR ({} runs)…", scale.name, scale.gmr_runs);
    let (gmr_row, finalists) = run_gmr(ds, scale, seed);
    rows.push(gmr_row);
    (rows, finalists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;

    fn tiny() -> (RiverDataset, Scale) {
        let mut s = Scale::quick();
        s.end_year = 1997;
        s.train_end_year = 1996;
        s.calib_budget = 40;
        s.calib_seeds = 1;
        s.gmr_runs = 1;
        s.gmr_pop = 10;
        s.gmr_gen = 2;
        s.gggp_pop = 10;
        s.gggp_gen = 2;
        s.lstm_epochs_s1 = 1;
        s.lstm_epochs_all = 1;
        (dataset(&s), s)
    }

    #[test]
    fn exog_feature_widths() {
        let (ds, _) = tiny();
        let s1 = exog_features(&ds, ds.train, false);
        let all = exog_features(&ds, ds.train, true);
        assert_eq!(s1[0].len(), NUM_VARS);
        assert_eq!(all[0].len(), 9 * NUM_VARS);
        assert_eq!(s1.len(), ds.train.len());
    }

    #[test]
    fn manual_row_scores_finite_or_lethal() {
        let (ds, _) = tiny();
        let train = RiverProblem::from_dataset(&ds, ds.train);
        let test = RiverProblem::from_dataset(&ds, ds.test);
        let row = run_manual(&train, &test);
        assert_eq!(row.class, "Knowledge-driven");
        assert!(row.train_rmse > 0.0);
    }

    #[test]
    fn arimax_rows_produce_finite_scores() {
        let (ds, _) = tiny();
        let row = run_arimax(&ds, false);
        assert!(row.train_rmse.is_finite(), "{row:?}");
        assert!(row.test_rmse.is_finite());
    }

    #[test]
    fn full_roster_has_sixteen_rows() {
        // 1 knowledge-driven + 4 data-driven + 9 calibration + 2 revision.
        let (ds, scale) = tiny();
        let (rows, finalists) = run_all(&ds, &scale, 0);
        assert_eq!(rows.len(), 16);
        assert_eq!(finalists.len(), 1);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names[0], "Manual");
        assert_eq!(*names.last().expect("non-empty"), "GMR");
        assert!(names.contains(&"DREAM") && names.contains(&"SCE-UA"));
    }
}
