//! Ablation: measure each documented engine deviation (DESIGN.md) by
//! toggling it back to the paper's letter and re-running the same GMR
//! search.
//!
//! Usage: `cargo run --release -p gmr-bench --bin exp_ablation [--quick|--full]`
//!
//! Rows:
//! * `default` — the library configuration;
//! * `paper-gauss` — Gaussian mutation resamples *all* constants
//!   (`p_param_each = 1.0`);
//! * `no-ls-tweak` — local search limited to the paper's
//!   insertion/deletion moves;
//! * `mean-init` — generation zero pinned at the prior means;
//! * `eager-es` — the paper's running-RMSE short-circuit surrogate at
//!   threshold 1.0;
//! * `paper-letter` — all four at once (the paper's exact operator set at
//!   this budget).

use gmr_bench::{cli, dataset, Scale};
use gmr_core::{Gmr, GmrConfig};
use gmr_gp::short_circuit::Extrapolate;
use gmr_gp::GpConfig;

type Tweak = Box<dyn Fn(&mut GpConfig)>;

fn main() {
    let obsv = cli::init_obsv();
    let scale = Scale::from_args();
    gmr_obsv::info!("scale: {} (use --quick / --full to change)", scale.name);
    let ds = dataset(&scale);
    let gmr = Gmr::new(&ds);
    let runs = scale.gmr_runs.clamp(2, 4);

    let variants: Vec<(&'static str, Tweak)> = vec![
        ("default", Box::new(|_: &mut GpConfig| {})),
        (
            "paper-gauss",
            Box::new(|c: &mut GpConfig| c.p_param_each = 1.0),
        ),
        (
            "no-ls-tweak",
            Box::new(|c: &mut GpConfig| c.ls_param_tweak = false),
        ),
        (
            "mean-init",
            Box::new(|c: &mut GpConfig| c.init_params_from_prior = false),
        ),
        (
            "eager-es",
            Box::new(|c: &mut GpConfig| c.extrapolate = Extrapolate::RunningRmse),
        ),
        (
            "paper-letter",
            Box::new(|c: &mut GpConfig| {
                c.p_param_each = 1.0;
                c.ls_param_tweak = false;
                c.init_params_from_prior = false;
                c.extrapolate = Extrapolate::RunningRmse;
            }),
        ),
    ];

    println!("\n=== Ablation of documented engine deviations ({runs} runs each) ===");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "Variant", "best train", "best test", "mean train", "mean test"
    );
    for (label, tweak) in variants {
        gmr_obsv::info!("running {label}…");
        let mut gp = scale.gp_config(777);
        tweak(&mut gp);
        let cfg = GmrConfig {
            gp,
            runs,
            ..GmrConfig::default()
        };
        let results = gmr.run_many(&cfg);
        let n = results.len() as f64;
        let best = &results[0];
        cli::write_report(
            &format!("ablation-{}-{}", scale.name, cli::slug(label)),
            &best.report,
        );
        let mean_train = results.iter().map(|r| r.train_rmse).sum::<f64>() / n;
        let mean_test = results.iter().map(|r| r.test_rmse).sum::<f64>() / n;
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            label, best.train_rmse, best.test_rmse, mean_train, mean_test
        );
    }
    println!(
        "\nReading: each row toggles one deviation back to the paper's letter.\n\
         Larger numbers than 'default' quantify how much that choice buys at\n\
         this budget; 'paper-letter' is the paper's exact operator set, which\n\
         needs its original 7.2M-evaluation budget to shine."
    );
    cli::finish_obsv(&obsv);
}
