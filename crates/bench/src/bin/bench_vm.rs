//! Bytecode-pipeline benchmark: the per-tier cost of one Euler step,
//! measured end to end over the river problem and emitted as
//! machine-readable JSON.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p gmr-bench --bin bench_vm -- [--quick] [--out PATH]
//! cargo run --release -p gmr-bench --bin bench_vm -- --validate PATH
//! # with the AVX2 kernels live:
//! cargo run --release -p gmr-bench --features simd --bin bench_vm
//! ```
//!
//! Six tiers of the same simulation are timed on the Table V expert model
//! and three hand-authored "evolved elite" revisions of it (the shapes the
//! GP engine actually produces: an added state-independent flux, a
//! multiplicative modulation, a coupled second equation):
//!
//! * `naive_stack` — one stack-bytecode program per equation, no
//!   cross-equation sharing (the historical `CompiledExpr` path);
//! * `register`    — whole-system register VM: constant folding, peephole
//!   identities, cross-equation CSE, linear-scan registers;
//! * `fused`       — plus corpus-selected superinstructions (`VarBin`,
//!   `ConstBin`, `MulAdd`, `MulSub`, `SubMul`);
//! * `split`       — plus the state-independent prefix hoisted out of the
//!   sequential loop and swept columnar in 32-lane chunks;
//! * `threaded`    — the split pipeline compiled to threaded code
//!   (monomorphized fn-pointer thunks instead of match dispatch);
//! * `simd`        — threaded code plus AVX2+FMA kernels; its fast
//!   transcendentals are *relaxed* fidelity (~1e-13 relative error), so it
//!   is validated against a trajectory tolerance instead of bit-equality.
//!
//! Two **batch rows** per model (`split_batch`, `simd_batch`) time 32
//! lock-step trajectories through `MultiSession` — one core dispatch per
//! step for all lanes over the SoA lane kernels, the state-independent
//! prefix computed once and shared — in per-trajectory steps/sec. That is
//! the unit of work of the batching server's coalesced sweeps, and where
//! the SoA-SIMD backend pays off fully: every lane is an independent
//! trajectory, so per-trajectory cost drops by the width of the stripe.
//!
//! Every **bit-exact** tier must produce a `==`-identical B_Phy trajectory
//! to the tree interpreter — checked on every run, not just in the test
//! suite. A live `simd` tier (feature compiled in, AVX2+FMA detected)
//! reports `"fidelity": "relaxed-simd"` and its observed `max_rel_err`
//! against the interpreter trajectory, gated at [`REL_TOL`].
//!
//! `--validate` strict-parses an emitted JSON file with `gmr_json` and
//! enforces the acceptance gates: schema tag, equivalence flags, per-tier
//! speedup floors on **all** pinned models, the historical 1.5x split
//! gate, and — when the file was produced with the vector kernels live —
//! the headline targets: best tier at least 10x naive on the Table V
//! model and at least 2x the split tier on every model.

use gmr_bio::{manual, name_table, RiverProblem};
use gmr_expr::{parse, CompiledExpr, CompiledSystem, EvalContext, Expr, Fidelity, Tier, LANES};
use gmr_hydro::{generate, SyntheticConfig};
use gmr_json::{push_escaped, push_f64, Value};
use std::hint::black_box;
use std::time::{Duration, Instant};

const SCHEMA: &str = "gmr-bench-vm/v2";

/// Trajectory tolerance for relaxed-fidelity tiers: max relative error of
/// B_Phy vs the interpreter, pointwise over the whole simulation.
const REL_TOL: f64 = 1e-6;

/// Historical gate: the split tier on the Table V model.
const MIN_SPEEDUP_SPLIT: f64 = 1.5;

/// Per-tier speedup-vs-naive floors, enforced on **every** pinned model.
/// Deliberately below observed numbers: CI machines are noisy, and a
/// regression that halves a tier still trips these. The `*_batch` rows
/// are [`LANES`] lock-step trajectories through `MultiSession` — the
/// workload of the batching server and of lane-striped population
/// evaluation — timed in per-trajectory steps/sec.
const TIER_FLOORS: [(&str, f64); 7] = [
    ("register", 0.6),
    ("fused", 0.7),
    ("split", 1.2),
    ("threaded", 1.3),
    ("simd", 1.3),
    ("split_batch", 3.0),
    ("simd_batch", 3.0),
];

/// Headline gates, applied only when the emitting build had the AVX2
/// kernels live (`"simd_active": true`).
const MIN_BEST_TABLE_V_SIMD: f64 = 10.0;
const MIN_BEST_VS_SPLIT_SIMD: f64 = 2.0;

const MODEL_NAMES: [&str; 4] = [
    "table_v_manual",
    "elite_added_flux",
    "elite_temp_modulated",
    "elite_coupled_zoo",
];

/// One benched model: a name plus its two-equation system.
struct Model {
    name: &'static str,
    eqs: [Expr; 2],
}

fn parse_eq(src: &str) -> Expr {
    let names = name_table();
    parse(src, &names, |kind| gmr_bio::params::spec(kind).mean)
        .unwrap_or_else(|e| panic!("bench model failed to parse: {e}\n{src}"))
}

/// Table V plus three evolved-elite shapes. The elites are hand-authored
/// from the same building blocks the river grammar's connector/extender
/// discipline produces, so the instruction mix matches what the engine
/// compiles millions of times per run.
fn models() -> Vec<Model> {
    let manual = gmr_bio::manual_system();
    let dbphy = manual::dbphy_src();
    let dbzoo = manual::dbzoo_src();
    // Elite 1: an additive state-independent flux (CO2-modulated light
    // term) — the canonical Ext1 revision; maximises prefix work.
    let elite_flux = [
        parse_eq(&format!(
            "({dbphy}) + R * (Vcd / (Vcd + 300)) * ({})",
            manual::F_LIGHT
        )),
        parse_eq(&dbzoo),
    ];
    // Elite 2: multiplicative temperature modulation of the whole growth
    // equation — duplicates the two-optimum response, so CSE must catch it.
    let elite_mod = [
        parse_eq(&format!("({dbphy}) * ({})", manual::H_TEMP)),
        parse_eq(&dbzoo),
    ];
    // Elite 3: nutrient-coupled zooplankton — revision lands in the second
    // equation, sharing λ/g across equations.
    let elite_zoo = [
        parse_eq(&dbphy),
        parse_eq(&format!(
            "({dbzoo}) + CUZ * ({}) * BZoo",
            manual::G_NUTRIENT
        )),
    ];
    vec![
        Model {
            name: MODEL_NAMES[0],
            eqs: manual,
        },
        Model {
            name: MODEL_NAMES[1],
            eqs: elite_flux,
        },
        Model {
            name: MODEL_NAMES[2],
            eqs: elite_mod,
        },
        Model {
            name: MODEL_NAMES[3],
            eqs: elite_zoo,
        },
    ]
}

fn problem(quick: bool) -> RiverProblem {
    let ds = generate(&SyntheticConfig {
        start_year: 1996,
        end_year: if quick { 1997 } else { 1999 },
        train_end_year: if quick { 1996 } else { 1998 },
        ..Default::default()
    });
    RiverProblem::from_dataset(&ds, ds.train)
}

#[inline(always)]
fn sanitise(x: f64, cap: f64) -> f64 {
    if x.is_nan() {
        cap
    } else {
        x.clamp(0.0, cap)
    }
}

/// The naive-stack tier: one independently compiled stack program per
/// equation, evaluated per step — the pre-register-VM shape of the runtime
/// compilation technique.
fn simulate_naive(p: &RiverProblem, compiled: &[CompiledExpr; 2], out: &mut Vec<f64>) {
    out.clear();
    let cap = p.opts.state_cap;
    let dt = p.opts.dt;
    let (mut bphy, mut bzoo) = p.opts.init;
    let mut stack = Vec::new();
    for row in &p.forcings {
        out.push(bphy);
        let state = [bphy, bzoo];
        let ctx = EvalContext {
            vars: row,
            state: &state,
        };
        let dphy = compiled[0].eval_with(&ctx, &mut stack);
        let dzoo = compiled[1].eval_with(&ctx, &mut stack);
        bphy = sanitise(bphy + dt * dphy, cap);
        bzoo = sanitise(bzoo + dt * dzoo, cap);
    }
}

/// All register-VM tiers run through the production path.
fn simulate_vm(p: &RiverProblem, sys: &CompiledSystem, out: &mut Vec<f64>) {
    out.clear();
    out.extend(p.simulate_compiled(sys));
}

/// [`LANES`] identical trajectories in lock-step through `MultiSession`:
/// one core dispatch per step for all lanes, the shared prefix computed
/// once. `out` receives lane 0's B_Phy trajectory (every lane computes the
/// same one, so it must match the single-trajectory reference).
fn simulate_multi(p: &RiverProblem, sys: &CompiledSystem, out: &mut Vec<f64>) {
    let k = LANES;
    let days = p.num_cases();
    let cap = p.opts.state_cap;
    let dt = p.opts.dt;
    let mut ms = sys.multi_session(&p.forcings, k);
    let mut states = vec![0.0f64; k * 2];
    for l in 0..k {
        states[l * 2] = p.opts.init.0;
        states[l * 2 + 1] = p.opts.init.1;
    }
    let mut d = vec![0.0f64; k * 2];
    out.clear();
    for t in 0..days {
        out.push(states[0]);
        ms.step(t, &states, &mut d);
        for l in 0..k {
            states[l * 2] = sanitise(states[l * 2] + dt * d[l * 2], cap);
            states[l * 2 + 1] = sanitise(states[l * 2 + 1] + dt * d[l * 2 + 1], cap);
        }
    }
}

/// Opcode dispatches one full simulation costs at a given tier. The split
/// family dispatches each prefix instruction once per 32-lane *chunk* of
/// the forcing table instead of once per row — that amortisation is the
/// point.
fn dispatches(days: usize, sys: &CompiledSystem) -> u64 {
    let chunks = days.div_ceil(LANES);
    (days * sys.core_len() + chunks * sys.prefix_len()) as u64
}

/// Pointwise max relative error of a trajectory against the reference.
fn max_rel_err(got: &[f64], reference: &[f64]) -> f64 {
    got.iter()
        .zip(reference)
        .map(|(&a, &r)| {
            if a == r || (a.is_nan() && r.is_nan()) {
                0.0
            } else {
                (a - r).abs() / r.abs().max(1e-12)
            }
        })
        .fold(0.0, f64::max)
}

struct TierResult {
    name: &'static str,
    fidelity: Fidelity,
    /// Straight-line instructions executed per Euler step (prefix counted
    /// per-row, i.e. before chunk amortisation).
    instrs_per_step: usize,
    /// Opcode dispatches per full simulation (prefix counted per-chunk).
    dispatch_per_sim: u64,
    steps_per_sec: f64,
    speedup_vs_naive: f64,
    /// Observed max relative trajectory error vs the interpreter (exactly
    /// 0.0 for a bit-identical run).
    max_rel_err: f64,
}

struct ModelResult {
    name: &'static str,
    days: usize,
    tiers: Vec<TierResult>,
    /// Every bit-exact tier reproduced the interpreter trajectory `==`.
    exact_identical: bool,
    /// Every relaxed tier stayed within [`REL_TOL`].
    relaxed_in_tol: bool,
}

/// Time `sim` by running whole simulations until `min_time` elapses.
fn time_sim(mut sim: impl FnMut(&mut Vec<f64>), days: usize, min_time: Duration) -> f64 {
    let mut out = Vec::with_capacity(days);
    // Warm-up: one untimed run to fault in buffers.
    sim(&mut out);
    let start = Instant::now();
    let mut reps = 0u64;
    while start.elapsed() < min_time {
        sim(&mut out);
        black_box(&out);
        reps += 1;
    }
    (days as u64 * reps) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn bench_model(p: &RiverProblem, m: &Model, min_time: Duration) -> ModelResult {
    let days = p.num_cases();
    let reference = p.simulate(&m.eqs);

    let naive = [
        CompiledExpr::compile(&m.eqs[0]),
        CompiledExpr::compile(&m.eqs[1]),
    ];
    let tiers_sys: Vec<CompiledSystem> = Tier::ALL
        .iter()
        .map(|t| CompiledSystem::compile(&m.eqs, t.options()))
        .collect();

    // Equivalence first: bit-exact tiers must match the interpreter `==`;
    // a live relaxed tier must stay inside the trajectory tolerance.
    let mut buf = Vec::with_capacity(days);
    simulate_naive(p, &naive, &mut buf);
    let mut exact_identical = buf == reference;
    let mut relaxed_in_tol = true;
    let mut errs = Vec::with_capacity(tiers_sys.len());
    for sys in &tiers_sys {
        simulate_vm(p, sys, &mut buf);
        let err = max_rel_err(&buf, &reference);
        match sys.fidelity() {
            Fidelity::BitExact => exact_identical &= buf == reference,
            Fidelity::RelaxedSimd => relaxed_in_tol &= err <= REL_TOL,
        }
        errs.push(err);
    }

    let naive_instrs = naive[0].len() + naive[1].len();
    let naive_sps = time_sim(|out| simulate_naive(p, &naive, out), days, min_time);
    let mut tiers = vec![TierResult {
        name: "naive_stack",
        fidelity: Fidelity::BitExact,
        instrs_per_step: naive_instrs,
        dispatch_per_sim: (days * naive_instrs) as u64,
        steps_per_sec: naive_sps,
        speedup_vs_naive: 1.0,
        max_rel_err: 0.0,
    }];
    for ((tier, sys), err) in Tier::ALL.iter().zip(&tiers_sys).zip(errs) {
        let sps = time_sim(|out| simulate_vm(p, sys, out), days, min_time);
        tiers.push(TierResult {
            name: tier.name(),
            fidelity: sys.fidelity(),
            instrs_per_step: sys.core_len() + sys.prefix_len(),
            dispatch_per_sim: dispatches(days, sys),
            steps_per_sec: sps,
            speedup_vs_naive: sps / naive_sps,
            max_rel_err: err,
        });
    }

    // Batched lane stepping: LANES lock-step trajectories, per-trajectory
    // throughput. Lane 0 recomputes exactly the single-trajectory problem,
    // so the same equivalence contract applies.
    for (name, tier) in [("split_batch", Tier::Split), ("simd_batch", Tier::Simd)] {
        let sys = CompiledSystem::compile(&m.eqs, tier.options());
        simulate_multi(p, &sys, &mut buf);
        let err = max_rel_err(&buf, &reference);
        match sys.fidelity() {
            Fidelity::BitExact => exact_identical &= buf == reference,
            Fidelity::RelaxedSimd => relaxed_in_tol &= err <= REL_TOL,
        }
        let sps = time_sim(|out| simulate_multi(p, &sys, out), days, min_time) * LANES as f64;
        tiers.push(TierResult {
            name,
            fidelity: sys.fidelity(),
            instrs_per_step: sys.core_len() + sys.prefix_len(),
            // Dispatches are *shared* across the lanes — that sharing is
            // the entire point of the batch rows.
            dispatch_per_sim: dispatches(days, &sys),
            steps_per_sec: sps,
            speedup_vs_naive: sps / naive_sps,
            max_rel_err: err,
        });
    }
    ModelResult {
        name: m.name,
        days,
        tiers,
        exact_identical,
        relaxed_in_tol,
    }
}

fn tier_speedup(r: &ModelResult, name: &str) -> f64 {
    r.tiers
        .iter()
        .find(|t| t.name == name)
        .map(|t| t.speedup_vs_naive)
        .unwrap_or(0.0)
}

/// Fastest tier's speedup-vs-naive for one model.
fn best_speedup(r: &ModelResult) -> f64 {
    r.tiers
        .iter()
        .map(|t| t.speedup_vs_naive)
        .fold(0.0, f64::max)
}

fn render_json(results: &[ModelResult], quick: bool) -> String {
    let exact_ok = results.iter().all(|r| r.exact_identical);
    let relaxed_ok = results.iter().all(|r| r.relaxed_in_tol);
    let table_v = results.iter().find(|r| r.name == MODEL_NAMES[0]);
    let split_table_v = table_v.map_or(0.0, |r| tier_speedup(r, "split"));
    let best_table_v = table_v.map_or(0.0, best_speedup);
    // Worst-case headroom of the best tier over split, across all models.
    let min_best_vs_split = results
        .iter()
        .map(|r| best_speedup(r) / tier_speedup(r, "split").max(1e-9))
        .fold(f64::INFINITY, f64::min);
    let mut out = String::from("{\n  \"schema\": ");
    push_escaped(&mut out, SCHEMA);
    out.push_str(",\n  \"scale\": ");
    push_escaped(&mut out, if quick { "quick" } else { "default" });
    out.push_str(&format!(",\n  \"lanes\": {LANES},\n"));
    out.push_str(&format!(
        "  \"simd_active\": {},\n",
        gmr_expr::simd::active()
    ));
    out.push_str(&format!(
        "  \"exact_tiers_bit_identical\": {exact_ok},\n  \"relaxed_within_tolerance\": {relaxed_ok},\n"
    ));
    out.push_str("  \"models\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\"model\": ");
        push_escaped(&mut out, r.name);
        out.push_str(&format!(
            ", \"days\": {}, \"bit_identical\": {}, \"relaxed_within_tolerance\": {}, \"tiers\": [\n",
            r.days, r.exact_identical, r.relaxed_in_tol
        ));
        for (j, t) in r.tiers.iter().enumerate() {
            out.push_str("      {\"tier\": ");
            push_escaped(&mut out, t.name);
            out.push_str(", \"fidelity\": ");
            push_escaped(&mut out, t.fidelity.name());
            out.push_str(&format!(
                ", \"instrs_per_step\": {}, \"dispatch_per_sim\": {}, \"steps_per_sec\": ",
                t.instrs_per_step, t.dispatch_per_sim
            ));
            push_f64(&mut out, (t.steps_per_sec * 10.0).round() / 10.0);
            out.push_str(", \"speedup_vs_naive\": ");
            push_f64(&mut out, (t.speedup_vs_naive * 1000.0).round() / 1000.0);
            out.push_str(", \"max_rel_err\": ");
            push_f64(&mut out, t.max_rel_err);
            out.push_str(if j + 1 < r.tiers.len() { "},\n" } else { "}\n" });
        }
        out.push_str(if i + 1 < results.len() {
            "    ]},\n"
        } else {
            "    ]}\n"
        });
    }
    out.push_str("  ],\n  \"split_speedup_table_v\": ");
    push_f64(&mut out, (split_table_v * 1000.0).round() / 1000.0);
    out.push_str(",\n  \"best_speedup_table_v\": ");
    push_f64(&mut out, (best_table_v * 1000.0).round() / 1000.0);
    out.push_str(",\n  \"min_best_vs_split\": ");
    push_f64(&mut out, (min_best_vs_split * 1000.0).round() / 1000.0);
    out.push_str("\n}\n");
    out
}

/// Enforce the acceptance gate on an emitted file. Returns the failures.
fn validate(src: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let doc = match gmr_json::parse(src) {
        Ok(v) => v,
        Err(e) => return vec![format!("not strict JSON: {e}")],
    };
    if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("missing schema tag {SCHEMA:?}"));
    }
    for key in ["exact_tiers_bit_identical", "relaxed_within_tolerance"] {
        if doc.get(key) != Some(&Value::Bool(true)) {
            errs.push(format!("{key} is not true"));
        }
    }
    let simd_active = doc.get("simd_active") == Some(&Value::Bool(true));
    let models = doc.get("models").and_then(Value::as_arr).unwrap_or(&[]);
    for name in MODEL_NAMES {
        let Some(model) = models
            .iter()
            .find(|m| m.get("model").and_then(Value::as_str) == Some(name))
        else {
            errs.push(format!("no entry for model {name:?}"));
            continue;
        };
        let tiers = model.get("tiers").and_then(Value::as_arr).unwrap_or(&[]);
        for (tier, floor) in TIER_FLOORS {
            let Some(t) = tiers
                .iter()
                .find(|t| t.get("tier").and_then(Value::as_str) == Some(tier))
            else {
                errs.push(format!("{name}: no entry for tier {tier:?}"));
                continue;
            };
            match t.get("speedup_vs_naive").and_then(Value::as_f64) {
                Some(s) if s >= floor => {}
                Some(s) => errs.push(format!(
                    "{name}/{tier}: speedup {s:.3} below the {floor}x floor"
                )),
                None => errs.push(format!("{name}/{tier}: speedup_vs_naive missing")),
            }
        }
        if tiers
            .iter()
            .all(|t| t.get("tier").and_then(Value::as_str) != Some("naive_stack"))
        {
            errs.push(format!("{name}: no entry for tier \"naive_stack\""));
        }
    }
    match doc.get("split_speedup_table_v").and_then(Value::as_f64) {
        Some(s) if s >= MIN_SPEEDUP_SPLIT => {}
        Some(s) => errs.push(format!(
            "split_speedup_table_v {s:.3} below the {MIN_SPEEDUP_SPLIT}x gate"
        )),
        None => errs.push("split_speedup_table_v missing or not a number".into()),
    }
    if simd_active {
        match doc.get("best_speedup_table_v").and_then(Value::as_f64) {
            Some(s) if s >= MIN_BEST_TABLE_V_SIMD => {}
            Some(s) => errs.push(format!(
                "best_speedup_table_v {s:.3} below the {MIN_BEST_TABLE_V_SIMD}x simd gate"
            )),
            None => errs.push("best_speedup_table_v missing or not a number".into()),
        }
        match doc.get("min_best_vs_split").and_then(Value::as_f64) {
            Some(s) if s >= MIN_BEST_VS_SPLIT_SIMD => {}
            Some(s) => errs.push(format!(
                "min_best_vs_split {s:.3} below the {MIN_BEST_VS_SPLIT_SIMD}x simd gate"
            )),
            None => errs.push("min_best_vs_split missing or not a number".into()),
        }
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--validate requires a file path");
            std::process::exit(2);
        });
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let errs = validate(&src);
        if errs.is_empty() {
            println!("{path}: OK ({SCHEMA})");
            return;
        }
        for e in &errs {
            eprintln!("{path}: FAIL: {e}");
        }
        std::process::exit(1);
    }

    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_vm.json");
    let min_time = Duration::from_millis(if quick { 120 } else { 400 });

    let p = problem(quick);
    let models = models();
    eprintln!(
        "bench_vm: {} days, {} models, tiers [naive_stack{}], simd_active={}",
        p.num_cases(),
        models.len(),
        Tier::ALL
            .iter()
            .map(|t| format!(", {}", t.name()))
            .collect::<String>(),
        gmr_expr::simd::active()
    );

    // Verify every benched model's bytecode before timing it: an unsound
    // pipeline would make the speedup numbers meaningless, so Error-level
    // abstract-interpretation findings (or an unproved register bound) are
    // a hard failure, same gate the serving registry applies.
    let env = gmr_lint::IntervalEnv::river();
    for m in &models {
        for tier in Tier::ALL {
            let sys = CompiledSystem::compile_checked(&m.eqs, 10, 2, tier.options())
                .unwrap_or_else(|e| panic!("{}: does not compile: {e:?}", m.name));
            let analysis = gmr_lint::analyze_system(&sys, &env, m.name);
            if !analysis.report.is_clean() || !analysis.safety.proved() {
                eprintln!(
                    "FAIL: {} refused by bytecode verification:\n{}",
                    m.name,
                    analysis.report.render_human()
                );
                std::process::exit(1);
            }
        }
    }
    eprintln!("bench_vm: bytecode verification clean for all models/tiers");
    let results: Vec<ModelResult> = models
        .iter()
        .map(|m| {
            let r = bench_model(&p, m, min_time);
            for t in &r.tiers {
                eprintln!(
                    "  {}/{} [{}]: {} instrs/step, {} dispatches/sim, {:.0} steps/s ({:.2}x, max_rel_err {:.2e})",
                    r.name,
                    t.name,
                    t.fidelity.name(),
                    t.instrs_per_step,
                    t.dispatch_per_sim,
                    t.steps_per_sec,
                    t.speedup_vs_naive,
                    t.max_rel_err
                );
            }
            if !r.exact_identical {
                eprintln!("FAIL: {} bit-exact tiers diverged from interpreter", r.name);
            }
            if !r.relaxed_in_tol {
                eprintln!("FAIL: {} relaxed tier outside {REL_TOL:e} tolerance", r.name);
            }
            r
        })
        .collect();

    let json = render_json(&results, quick);
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "wrote {out_path} (split {:.2}x, best {:.2}x on table_v; best/split >= {:.2}x everywhere)",
        results
            .iter()
            .find(|r| r.name == MODEL_NAMES[0])
            .map_or(0.0, |r| tier_speedup(r, "split")),
        results
            .iter()
            .find(|r| r.name == MODEL_NAMES[0])
            .map_or(0.0, best_speedup),
        results
            .iter()
            .map(|r| best_speedup(r) / tier_speedup(r, "split").max(1e-9))
            .fold(f64::INFINITY, f64::min)
    );

    let errs = validate(&json);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("FAIL: {e}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_results() -> Vec<ModelResult> {
        MODEL_NAMES
            .iter()
            .map(|name| {
                let mut tiers = vec![TierResult {
                    name: "naive_stack",
                    fidelity: Fidelity::BitExact,
                    instrs_per_step: 40,
                    dispatch_per_sim: 40_000,
                    steps_per_sec: 1.0e6,
                    speedup_vs_naive: 1.0,
                    max_rel_err: 0.0,
                }];
                for (i, tier) in Tier::ALL.iter().enumerate() {
                    tiers.push(TierResult {
                        name: tier.name(),
                        fidelity: tier.fidelity(),
                        instrs_per_step: 30 - i,
                        dispatch_per_sim: 30_000,
                        steps_per_sec: (2 + i) as f64 * 6.0e6,
                        speedup_vs_naive: (2 + i) as f64 * 6.0,
                        max_rel_err: 0.0,
                    });
                }
                for (i, (batch, tier)) in [("split_batch", Tier::Split), ("simd_batch", Tier::Simd)]
                    .into_iter()
                    .enumerate()
                {
                    tiers.push(TierResult {
                        name: batch,
                        fidelity: tier.fidelity(),
                        instrs_per_step: 26,
                        dispatch_per_sim: 30_000,
                        steps_per_sec: (10 + i) as f64 * 6.0e6,
                        speedup_vs_naive: (10 + i) as f64 * 6.0,
                        max_rel_err: 0.0,
                    });
                }
                ModelResult {
                    name,
                    days: 1000,
                    tiers,
                    exact_identical: true,
                    relaxed_in_tol: true,
                }
            })
            .collect()
    }

    #[test]
    fn rendered_json_strict_reparses_and_validates() {
        let json = render_json(&tiny_results(), true);
        let doc = gmr_json::parse(&json).expect("strict parse");
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some(SCHEMA));
        assert_eq!(
            doc.get("models")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(MODEL_NAMES.len())
        );
        // The synthetic speedups are far above every gate, so a build with
        // live SIMD kernels validates too.
        assert_eq!(validate(&json), Vec::<String>::new());
    }

    #[test]
    fn validate_catches_divergence_and_slow_tiers() {
        let mut results = tiny_results();
        results[0].exact_identical = false;
        let json = render_json(&results, true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("exact_tiers_bit_identical")));

        let mut results = tiny_results();
        for t in &mut results[2].tiers {
            if t.name == "threaded" {
                t.speedup_vs_naive = 0.5;
            }
        }
        let json = render_json(&results, true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("elite_temp_modulated/threaded")));

        assert!(!validate("{ not json").is_empty());
    }
}
