//! Bytecode-pipeline benchmark: the per-tier cost of one Euler step,
//! measured end to end over the river problem and emitted as
//! machine-readable JSON.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p gmr-bench --bin bench_vm -- [--quick] [--out PATH]
//! cargo run --release -p gmr-bench --bin bench_vm -- --validate PATH
//! ```
//!
//! Four tiers of the same simulation are timed on the Table V expert model
//! and three hand-authored "evolved elite" revisions of it (the shapes the
//! GP engine actually produces: an added state-independent flux, a
//! multiplicative modulation, a coupled second equation):
//!
//! * `naive_stack`   — one stack-bytecode program per equation, no
//!   cross-equation sharing (the historical `CompiledExpr` path);
//! * `register`      — whole-system register VM: constant folding,
//!   peephole identities, cross-equation CSE, linear-scan registers;
//! * `register_fused`— plus fused superinstructions (`VarBin`, `ConstBin`,
//!   `MulAdd`) collapsing load/dispatch pairs;
//! * `split`         — plus the state-independent prefix hoisted out of the
//!   sequential loop and swept columnar over the forcing table in
//!   32-lane chunks.
//!
//! Every tier must produce a bit-identical B_Phy trajectory to the tree
//! interpreter — checked on every run, not just in the test suite; the
//! emitted `tiers_bit_identical` flag records it.
//!
//! `--validate` re-opens an emitted JSON file and enforces the acceptance
//! gate: schema tag present, equivalence flag true, and the full pipeline
//! (`split` tier) reaching at least 1.5x the naive-stack steps/sec on the
//! Table V model.

use gmr_bio::{manual, name_table, RiverProblem};
use gmr_expr::{parse, CompiledExpr, CompiledSystem, EvalContext, Expr, OptOptions, LANES};
use gmr_hydro::{generate, SyntheticConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

const SCHEMA: &str = "gmr-bench-vm/v1";
const MIN_SPEEDUP_SPLIT: f64 = 1.5;
const TIER_NAMES: [&str; 4] = ["naive_stack", "register", "register_fused", "split"];

/// One benched model: a name plus its two-equation system.
struct Model {
    name: &'static str,
    eqs: [Expr; 2],
}

fn parse_eq(src: &str) -> Expr {
    let names = name_table();
    parse(src, &names, |kind| gmr_bio::params::spec(kind).mean)
        .unwrap_or_else(|e| panic!("bench model failed to parse: {e}\n{src}"))
}

/// Table V plus three evolved-elite shapes. The elites are hand-authored
/// from the same building blocks the river grammar's connector/extender
/// discipline produces, so the instruction mix matches what the engine
/// compiles millions of times per run.
fn models() -> Vec<Model> {
    let manual = gmr_bio::manual_system();
    let dbphy = manual::dbphy_src();
    let dbzoo = manual::dbzoo_src();
    // Elite 1: an additive state-independent flux (CO2-modulated light
    // term) — the canonical Ext1 revision; maximises prefix work.
    let elite_flux = [
        parse_eq(&format!(
            "({dbphy}) + R * (Vcd / (Vcd + 300)) * ({})",
            manual::F_LIGHT
        )),
        parse_eq(&dbzoo),
    ];
    // Elite 2: multiplicative temperature modulation of the whole growth
    // equation — duplicates the two-optimum response, so CSE must catch it.
    let elite_mod = [
        parse_eq(&format!("({dbphy}) * ({})", manual::H_TEMP)),
        parse_eq(&dbzoo),
    ];
    // Elite 3: nutrient-coupled zooplankton — revision lands in the second
    // equation, sharing λ/g across equations.
    let elite_zoo = [
        parse_eq(&dbphy),
        parse_eq(&format!(
            "({dbzoo}) + CUZ * ({}) * BZoo",
            manual::G_NUTRIENT
        )),
    ];
    vec![
        Model {
            name: "table_v_manual",
            eqs: manual,
        },
        Model {
            name: "elite_added_flux",
            eqs: elite_flux,
        },
        Model {
            name: "elite_temp_modulated",
            eqs: elite_mod,
        },
        Model {
            name: "elite_coupled_zoo",
            eqs: elite_zoo,
        },
    ]
}

fn problem(quick: bool) -> RiverProblem {
    let ds = generate(&SyntheticConfig {
        start_year: 1996,
        end_year: if quick { 1997 } else { 1999 },
        train_end_year: if quick { 1996 } else { 1998 },
        ..Default::default()
    });
    RiverProblem::from_dataset(&ds, ds.train)
}

#[inline(always)]
fn sanitise(x: f64, cap: f64) -> f64 {
    if x.is_nan() {
        cap
    } else {
        x.clamp(0.0, cap)
    }
}

/// The naive-stack tier: one independently compiled stack program per
/// equation, evaluated per step — the pre-register-VM shape of the runtime
/// compilation technique.
fn simulate_naive(p: &RiverProblem, compiled: &[CompiledExpr; 2], out: &mut Vec<f64>) {
    out.clear();
    let cap = p.opts.state_cap;
    let dt = p.opts.dt;
    let (mut bphy, mut bzoo) = p.opts.init;
    let mut stack = Vec::new();
    for row in &p.forcings {
        out.push(bphy);
        let state = [bphy, bzoo];
        let ctx = EvalContext {
            vars: row,
            state: &state,
        };
        let dphy = compiled[0].eval_with(&ctx, &mut stack);
        let dzoo = compiled[1].eval_with(&ctx, &mut stack);
        bphy = sanitise(bphy + dt * dphy, cap);
        bzoo = sanitise(bzoo + dt * dzoo, cap);
    }
}

/// All register-VM tiers run through the production path.
fn simulate_vm(p: &RiverProblem, sys: &CompiledSystem, out: &mut Vec<f64>) {
    out.clear();
    out.extend(p.simulate_compiled(sys));
}

/// Opcode dispatches one full simulation costs at a given tier. The split
/// tier dispatches each prefix instruction once per 32-lane *chunk* of the
/// forcing table instead of once per row — that amortisation is the point.
fn dispatches(days: usize, sys: &CompiledSystem) -> u64 {
    let chunks = days.div_ceil(LANES);
    (days * sys.core_len() + chunks * sys.prefix_len()) as u64
}

struct TierResult {
    name: &'static str,
    /// Straight-line instructions executed per Euler step (prefix counted
    /// per-row, i.e. before chunk amortisation).
    instrs_per_step: usize,
    /// Opcode dispatches per full simulation (prefix counted per-chunk).
    dispatch_per_sim: u64,
    steps_per_sec: f64,
    speedup_vs_naive: f64,
}

struct ModelResult {
    name: &'static str,
    days: usize,
    tiers: Vec<TierResult>,
    tiers_bit_identical: bool,
}

/// Time `sim` by running whole simulations until `min_time` elapses.
fn time_sim(mut sim: impl FnMut(&mut Vec<f64>), days: usize, min_time: Duration) -> f64 {
    let mut out = Vec::with_capacity(days);
    // Warm-up: one untimed run to fault in buffers.
    sim(&mut out);
    let start = Instant::now();
    let mut reps = 0u64;
    while start.elapsed() < min_time {
        sim(&mut out);
        black_box(&out);
        reps += 1;
    }
    (days as u64 * reps) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn bench_model(p: &RiverProblem, m: &Model, min_time: Duration) -> ModelResult {
    let days = p.num_cases();
    let reference = p.simulate(&m.eqs);

    let naive = [
        CompiledExpr::compile(&m.eqs[0]),
        CompiledExpr::compile(&m.eqs[1]),
    ];
    let tiers_sys: Vec<CompiledSystem> = [
        OptOptions::register(),
        OptOptions::fused(),
        OptOptions::full(),
    ]
    .into_iter()
    .map(|o| CompiledSystem::compile(&m.eqs, o))
    .collect();

    // Equivalence first: every tier's trajectory must match the
    // interpreter bit for bit.
    let mut buf = Vec::with_capacity(days);
    simulate_naive(p, &naive, &mut buf);
    let mut identical = buf == reference;
    for sys in &tiers_sys {
        simulate_vm(p, sys, &mut buf);
        identical &= buf == reference;
    }

    let naive_instrs = naive[0].len() + naive[1].len();
    let naive_sps = time_sim(|out| simulate_naive(p, &naive, out), days, min_time);
    let mut tiers = vec![TierResult {
        name: TIER_NAMES[0],
        instrs_per_step: naive_instrs,
        dispatch_per_sim: (days * naive_instrs) as u64,
        steps_per_sec: naive_sps,
        speedup_vs_naive: 1.0,
    }];
    for (i, sys) in tiers_sys.iter().enumerate() {
        let sps = time_sim(|out| simulate_vm(p, sys, out), days, min_time);
        tiers.push(TierResult {
            name: TIER_NAMES[i + 1],
            instrs_per_step: sys.core_len() + sys.prefix_len(),
            dispatch_per_sim: dispatches(days, sys),
            steps_per_sec: sps,
            speedup_vs_naive: sps / naive_sps,
        });
    }
    ModelResult {
        name: m.name,
        days,
        tiers,
        tiers_bit_identical: identical,
    }
}

fn render_json(results: &[ModelResult], quick: bool) -> String {
    let all_identical = results.iter().all(|r| r.tiers_bit_identical);
    let split_speedup_manual = results
        .iter()
        .find(|r| r.name == "table_v_manual")
        .and_then(|r| r.tiers.iter().find(|t| t.name == "split"))
        .map(|t| t.speedup_vs_naive)
        .unwrap_or(0.0);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if quick { "quick" } else { "default" }
    ));
    out.push_str(&format!("  \"lanes\": {LANES},\n"));
    out.push_str(&format!("  \"tiers_bit_identical\": {all_identical},\n"));
    out.push_str("  \"models\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"days\": {}, \"bit_identical\": {}, \"tiers\": [\n",
            r.name, r.days, r.tiers_bit_identical
        ));
        for (j, t) in r.tiers.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"tier\": \"{}\", \"instrs_per_step\": {}, \"dispatch_per_sim\": {}, \
                 \"steps_per_sec\": {:.1}, \"speedup_vs_naive\": {:.3}}}{}\n",
                t.name,
                t.instrs_per_step,
                t.dispatch_per_sim,
                t.steps_per_sec,
                t.speedup_vs_naive,
                if j + 1 < r.tiers.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"split_speedup_table_v\": {split_speedup_manual:.3}\n"
    ));
    out.push_str("}\n");
    out
}

/// Pull the first numeric value following `"key":` out of the emitted JSON.
fn json_number(src: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = src.find(&pat)? + pat.len();
    let rest = src[i..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Enforce the acceptance gate on an emitted file. Returns the failures.
fn validate(src: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !src.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        errs.push(format!("missing schema tag {SCHEMA:?}"));
    }
    for key in [
        "models",
        "tiers",
        "instrs_per_step",
        "dispatch_per_sim",
        "steps_per_sec",
        "speedup_vs_naive",
    ] {
        if !src.contains(&format!("\"{key}\":")) {
            errs.push(format!("missing key {key:?}"));
        }
    }
    if !src.contains("\"tiers_bit_identical\": true") {
        errs.push("tiers_bit_identical is not true".into());
    }
    for tier in TIER_NAMES {
        if !src.contains(&format!("\"tier\": \"{tier}\"")) {
            errs.push(format!("no entry for tier {tier:?}"));
        }
    }
    if !src.contains("\"model\": \"table_v_manual\"") {
        errs.push("no entry for the Table V manual model".into());
    }
    match json_number(src, "split_speedup_table_v") {
        Some(s) if s >= MIN_SPEEDUP_SPLIT => {}
        Some(s) => errs.push(format!(
            "split_speedup_table_v {s:.3} below the {MIN_SPEEDUP_SPLIT}x gate"
        )),
        None => errs.push("split_speedup_table_v missing or not a number".into()),
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--validate requires a file path");
            std::process::exit(2);
        });
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let errs = validate(&src);
        if errs.is_empty() {
            println!("{path}: OK ({SCHEMA})");
            return;
        }
        for e in &errs {
            eprintln!("{path}: FAIL: {e}");
        }
        std::process::exit(1);
    }

    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_vm.json");
    let min_time = Duration::from_millis(if quick { 120 } else { 400 });

    let p = problem(quick);
    let models = models();
    eprintln!(
        "bench_vm: {} days, {} models, tiers {TIER_NAMES:?}",
        p.num_cases(),
        models.len()
    );

    // Verify every benched model's bytecode before timing it: an unsound
    // pipeline would make the speedup numbers meaningless, so Error-level
    // abstract-interpretation findings (or an unproved register bound) are
    // a hard failure, same gate the serving registry applies.
    let env = gmr_lint::IntervalEnv::river();
    for m in &models {
        for opts in [
            OptOptions::register(),
            OptOptions::fused(),
            OptOptions::full(),
        ] {
            let sys = CompiledSystem::compile_checked(&m.eqs, 10, 2, opts)
                .unwrap_or_else(|e| panic!("{}: does not compile: {e:?}", m.name));
            let analysis = gmr_lint::analyze_system(&sys, &env, m.name);
            if !analysis.report.is_clean() || !analysis.safety.proved() {
                eprintln!(
                    "FAIL: {} refused by bytecode verification:\n{}",
                    m.name,
                    analysis.report.render_human()
                );
                std::process::exit(1);
            }
        }
    }
    eprintln!("bench_vm: bytecode verification clean for all models/tiers");
    let results: Vec<ModelResult> = models
        .iter()
        .map(|m| {
            let r = bench_model(&p, m, min_time);
            for t in &r.tiers {
                eprintln!(
                    "  {}/{}: {} instrs/step, {} dispatches/sim, {:.0} steps/s ({:.2}x)",
                    r.name,
                    t.name,
                    t.instrs_per_step,
                    t.dispatch_per_sim,
                    t.steps_per_sec,
                    t.speedup_vs_naive
                );
            }
            if !r.tiers_bit_identical {
                eprintln!("FAIL: {} trajectories diverged across tiers", r.name);
            }
            r
        })
        .collect();

    let json = render_json(&results, quick);
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "wrote {out_path} (split_speedup_table_v = {:.2}x)",
        json_number(&json, "split_speedup_table_v").unwrap_or(0.0)
    );

    let errs = validate(&json);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("FAIL: {e}");
        }
        std::process::exit(1);
    }
}
