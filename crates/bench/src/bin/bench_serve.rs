//! Serving-stack benchmark: batched vs sequential `/simulate` throughput
//! over real loopback HTTP, emitted as machine-readable JSON.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p gmr-bench --bin bench_serve -- [--quick] [--out PATH]
//! cargo run --release -p gmr-bench --bin bench_serve -- --validate PATH
//! ```
//!
//! Two client shapes hit one in-process `gmr-serve` server hosting the
//! Table V model and a synthetic forcing table:
//!
//! * `sequential` — one keep-alive connection issuing summary-mode
//!   `forcings_ref` requests back to back (each simulation runs solo);
//! * `batched` — the same request mix from 16 concurrent keep-alive
//!   connections, which the batcher coalesces into multi-trajectory
//!   register-VM sweeps (shared state-independent prefix, one instruction
//!   dispatch per batch instead of per request).
//!
//! The server runs with a **zero** coalescing window so the comparison
//! isolates work-sharing: jobs batch only when they genuinely queued
//! while a sweep was running, and the sequential baseline pays no
//! deliberate linger latency. The target machines are single-core, so the
//! measured speedup is algorithmic (instruction-dispatch and prefix
//! amortisation), not thread parallelism.
//!
//! Every benched response is checked against in-process evaluation: one
//! series-mode request per phase must be *bit-identical* to
//! `simulate_single`, and each summary response must carry the exact
//! final state of its init's solo trajectory. `--validate` re-opens an
//! emitted file and enforces the gate: schema tag, `bit_identical` true,
//! zero shed/error responses, and batched throughput at least 3x
//! sequential.

use gmr_hydro::{generate, SyntheticConfig, NUM_VARS};
use gmr_json::{push_f64, Value};
use gmr_serve::batch::{simulate_single, HostedTable, Tables};
use gmr_serve::server::{read_response, write_request};
use gmr_serve::{ModelArtifact, ModelRegistry, Server, ServerConfig, ServerHandle};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const SCHEMA: &str = "gmr-bench-serve/v1";
const MIN_SPEEDUP_BATCHED: f64 = 3.0;
const CLIENTS: usize = 16;

struct BenchResult {
    days: usize,
    seq_requests: usize,
    seq_secs: f64,
    con_requests: usize,
    con_secs: f64,
    mean_batch: f64,
    max_batch: u64,
    bit_identical: bool,
    errors: u64,
}

impl BenchResult {
    fn seq_rps(&self) -> f64 {
        self.seq_requests as f64 / self.seq_secs
    }
    fn con_rps(&self) -> f64 {
        self.con_requests as f64 / self.con_secs
    }
    fn speedup(&self) -> f64 {
        self.con_rps() / self.seq_rps()
    }
}

fn forcing_rows(days: usize) -> Vec<[f64; NUM_VARS]> {
    let ds = generate(&SyntheticConfig::default());
    let mut rows = ds.target_series().vars.clone();
    // Tile if the requested horizon outruns the dataset (it never does at
    // the shipped scales, but the flag is user-settable).
    while rows.len() < days {
        rows.extend_from_within(..);
    }
    rows.truncate(days);
    rows
}

fn client_init(c: usize) -> (f64, f64) {
    (4.0 + c as f64 * 0.73, 0.8 + c as f64 * 0.11)
}

fn summary_body(init: (f64, f64)) -> String {
    let mut b = String::from(
        "{\"model\": \"table5-manual\", \"forcings_ref\": \"t\", \"mode\": \"summary\", \"init\": [",
    );
    push_f64(&mut b, init.0);
    b.push_str(", ");
    push_f64(&mut b, init.1);
    b.push_str("]}");
    b
}

/// One keep-alive client issuing `n` summary requests; returns
/// `(batch_sum, max_batch, errors, finals)` where `finals` is the last
/// response's `"final"` pair.
fn run_client(addr: SocketAddr, init: (f64, f64), n: usize) -> (u64, u64, u64, Option<(f64, f64)>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let body = summary_body(init);
    let (mut batch_sum, mut max_batch, mut errors) = (0u64, 0u64, 0u64);
    let mut last_final = None;
    for i in 0..n {
        let close = i + 1 == n;
        write_request(&mut writer, "POST", "/simulate", body.as_bytes(), close).expect("write");
        let (status, bytes) = read_response(&mut reader).expect("read");
        if status != 200 {
            errors += 1;
            continue;
        }
        let v = gmr_json::parse(std::str::from_utf8(&bytes).expect("utf8")).expect("json");
        let b = v.get("batch").and_then(Value::as_u64).unwrap_or(0);
        batch_sum += b;
        max_batch = max_batch.max(b);
        if let Some(f) = v.get("final").and_then(Value::as_arr) {
            if let (Some(p), Some(z)) = (f[0].as_f64(), f[1].as_f64()) {
                last_final = Some((p, z));
            }
        }
    }
    (batch_sum, max_batch, errors, last_final)
}

/// Full-series request checked bit-for-bit against in-process evaluation.
fn check_bit_identity(
    addr: SocketAddr,
    rows: &[[f64; NUM_VARS]],
    sys: &gmr_expr::CompiledSystem,
) -> bool {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let init = client_init(3);
    let mut body =
        String::from("{\"model\": \"table5-manual\", \"forcings_ref\": \"t\", \"init\": [");
    push_f64(&mut body, init.0);
    body.push_str(", ");
    push_f64(&mut body, init.1);
    body.push_str("]}");
    write_request(&mut writer, "POST", "/simulate", body.as_bytes(), true).expect("write");
    let (status, bytes) = read_response(&mut reader).expect("read");
    if status != 200 {
        return false;
    }
    let v = gmr_json::parse(std::str::from_utf8(&bytes).expect("utf8")).expect("json");
    let got: Vec<f64> = v
        .get("bphy")
        .and_then(Value::as_arr)
        .map(|a| a.iter().filter_map(Value::as_f64).collect())
        .unwrap_or_default();
    let (want, _) = simulate_single(sys, rows, init, 1.0, 1e9);
    got == want
}

fn bench(days: usize, seq_requests: usize, per_client: usize) -> BenchResult {
    let mut registry = ModelRegistry::new();
    registry
        .insert(ModelArtifact::builtin_manual())
        .expect("builtin admits");
    let sys = registry.get("table5-manual").unwrap().system.clone();
    let rows = forcing_rows(days);
    let mut tables = Tables::new();
    tables.insert("t", HostedTable::Single(rows.clone()));
    let config = ServerConfig {
        workers: CLIENTS,
        sim_queue: CLIENTS * 4,
        batch_window: Duration::ZERO,
        ..ServerConfig::default()
    };
    let handle: ServerHandle = Server::new(config, registry, tables)
        .start()
        .expect("start");
    let addr = handle.addr();

    let mut bit_identical = check_bit_identity(addr, &rows, &sys);
    let mut errors = 0u64;

    // Warm-up.
    run_client(addr, client_init(0), 5);

    // Phase 1: single-connection sequential.
    let t0 = Instant::now();
    let (_, seq_max_batch, seq_errors, seq_final) = run_client(addr, client_init(0), seq_requests);
    let seq_secs = t0.elapsed().as_secs_f64();
    errors += seq_errors;
    let (want_p, want_z) = {
        let (p, z) = simulate_single(&sys, &rows, client_init(0), 1.0, 1e9);
        (*p.last().unwrap(), *z.last().unwrap())
    };
    if seq_final != Some((want_p, want_z)) {
        bit_identical = false;
    }
    if seq_max_batch > 1 {
        // A lone client must never be held for co-batching.
        errors += 1;
    }

    // Phase 2: concurrent clients, coalesced by the batcher.
    let t0 = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| std::thread::spawn(move || run_client(addr, client_init(c), per_client)))
        .collect();
    let mut batch_sum = 0u64;
    let mut max_batch = 0u64;
    let mut answered = 0u64;
    for (c, t) in threads.into_iter().enumerate() {
        let (bs, mb, errs, last_final) = t.join().expect("client thread");
        batch_sum += bs;
        max_batch = max_batch.max(mb);
        errors += errs;
        answered += per_client as u64 - errs;
        let (p, z) = simulate_single(&sys, &rows, client_init(c), 1.0, 1e9);
        if last_final != Some((*p.last().unwrap(), *z.last().unwrap())) {
            bit_identical = false;
        }
    }
    let con_secs = t0.elapsed().as_secs_f64();
    bit_identical &= check_bit_identity(addr, &rows, &sys);
    handle.shutdown();

    BenchResult {
        days,
        seq_requests,
        seq_secs,
        con_requests: CLIENTS * per_client,
        con_secs,
        mean_batch: batch_sum as f64 / answered.max(1) as f64,
        max_batch,
        bit_identical,
        errors,
    }
}

fn render_json(r: &BenchResult, quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if quick { "quick" } else { "default" }
    ));
    out.push_str("  \"model\": \"table5-manual\",\n");
    out.push_str(&format!("  \"days\": {},\n", r.days));
    out.push_str(&format!("  \"clients\": {CLIENTS},\n"));
    out.push_str(&format!("  \"bit_identical\": {},\n", r.bit_identical));
    out.push_str(&format!("  \"errors\": {},\n", r.errors));
    out.push_str(&format!(
        "  \"sequential\": {{\"requests\": {}, \"secs\": {:.4}, \"rps\": {:.1}}},\n",
        r.seq_requests,
        r.seq_secs,
        r.seq_rps()
    ));
    out.push_str(&format!(
        "  \"batched\": {{\"requests\": {}, \"secs\": {:.4}, \"rps\": {:.1}, \
         \"mean_batch\": {:.2}, \"max_batch\": {}}},\n",
        r.con_requests,
        r.con_secs,
        r.con_rps(),
        r.mean_batch,
        r.max_batch
    ));
    out.push_str(&format!("  \"batched_speedup\": {:.3}\n", r.speedup()));
    out.push_str("}\n");
    out
}

/// Pull the first numeric value following `"key":` out of the emitted JSON.
fn json_number(src: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = src.find(&pat)? + pat.len();
    let rest = src[i..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Enforce the acceptance gate on an emitted file. Returns the failures.
/// The document must strict-reparse under `gmr_json` before any gate is
/// read — a truncated or hand-mangled baseline fails loudly, not by
/// accidentally missing a `contains` probe.
fn validate(src: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if let Err(e) = gmr_json::parse(src) {
        return vec![format!("not strict JSON: {e}")];
    }
    if !src.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        errs.push(format!("missing schema tag {SCHEMA:?}"));
    }
    for key in ["sequential", "batched", "mean_batch", "batched_speedup"] {
        if !src.contains(&format!("\"{key}\":")) {
            errs.push(format!("missing key {key:?}"));
        }
    }
    if !src.contains("\"bit_identical\": true") {
        errs.push("bit_identical is not true — served responses diverged from in-process".into());
    }
    match json_number(src, "errors") {
        Some(0.0) => {}
        Some(e) => errs.push(format!(
            "{e} non-200 or mis-batched responses during the bench"
        )),
        None => errs.push("errors missing".into()),
    }
    match json_number(src, "batched_speedup") {
        Some(s) if s >= MIN_SPEEDUP_BATCHED => {}
        Some(s) => errs.push(format!(
            "batched_speedup {s:.3} below the {MIN_SPEEDUP_BATCHED}x gate"
        )),
        None => errs.push("batched_speedup missing or not a number".into()),
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--validate requires a file path");
            std::process::exit(2);
        });
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let errs = validate(&src);
        if errs.is_empty() {
            println!("{path}: OK ({SCHEMA})");
            return;
        }
        for e in &errs {
            eprintln!("{path}: FAIL: {e}");
        }
        std::process::exit(1);
    }

    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_serve.json");
    // Both scales keep the full 13-year horizon: the gate measures
    // work-sharing, which only shows when simulation dominates the
    // per-request cost. `--quick` trims the request counts, not the days.
    let (days, seq_requests, per_client) = if quick {
        (4748, 120, 20)
    } else {
        (4748, 400, 50)
    };
    eprintln!(
        "bench_serve: {days} days, {seq_requests} sequential, {CLIENTS}x{per_client} batched"
    );
    let r = bench(days, seq_requests, per_client);
    eprintln!(
        "  sequential: {:.1} req/s | batched: {:.1} req/s (mean batch {:.1}, max {}) | {:.2}x",
        r.seq_rps(),
        r.con_rps(),
        r.mean_batch,
        r.max_batch,
        r.speedup()
    );

    let json = render_json(&r, quick);
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote {out_path} (batched_speedup = {:.2}x)", r.speedup());

    let errs = validate(&json);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("FAIL: {e}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_json_strict_reparses_and_validates() {
        let r = BenchResult {
            days: 365,
            seq_requests: 40,
            seq_secs: 0.8,
            con_requests: 160,
            con_secs: 0.8,
            mean_batch: 5.2,
            max_batch: 8,
            bit_identical: true,
            errors: 0,
        };
        let json = render_json(&r, true);
        gmr_json::parse(&json).expect("strict parse");
        assert_eq!(validate(&json), Vec::<String>::new());
        assert!(validate("[1, 2")
            .iter()
            .any(|e| e.contains("not strict JSON")));
    }
}
