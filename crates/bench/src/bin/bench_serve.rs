//! Serving-stack benchmark: solo batched-vs-sequential throughput and
//! sharded-cluster scaling over real loopback HTTP, emitted as
//! machine-readable JSON (`gmr-bench-serve/v2`).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p gmr-bench --bin bench_serve -- [--quick] [--out PATH]
//! cargo run --release -p gmr-bench --bin bench_serve -- --cluster --backends 2 --quick
//! cargo run --release -p gmr-bench --bin bench_serve -- --validate PATH
//! ```
//!
//! **Solo section** (`--solo`, or default): two client shapes hit one
//! in-process `gmr-serve` server hosting the Table V model:
//!
//! * `sequential` — one keep-alive connection issuing summary-mode
//!   `forcings_ref` requests back to back (each simulation runs solo);
//! * `batched` — the same request mix from 16 concurrent keep-alive
//!   connections, which the batcher coalesces into multi-trajectory
//!   register-VM sweeps.
//!
//! The server runs with a **zero** coalescing window so the comparison
//! isolates work-sharing; the gate is `batched_speedup >= 2`.
//!
//! **Cluster section** (`--cluster`, or default): real backend processes
//! (the `gmr-serve` binary, spawned and supervised exactly as
//! `gmr-serve cluster` does) behind the consistent-hash gateway, driven
//! with mixed-model traffic over eight distinct artifacts. Every backend
//! runs with a hot-tier cap of `models - 1`, so a single backend cycling
//! all eight models LRU-misses (recompile + prefix resweep) on every
//! touch, while any sharded tier holds its keyspace fully hot — the
//! cache-locality mechanism the ring exists to protect. The gate is
//! aggregate throughput at the top tier over one backend:
//! `cluster_speedup >= 2.5` at four backends (`>= 1.2` for the 2-backend
//! CI shape). An overload probe (one backend, `--sim-queue 1`) then
//! checks the shed path end to end: at least one `429` must surface
//! through the gateway and every one must carry `Retry-After`.
//!
//! Every benched response is checked against in-process evaluation: the
//! solo phases as in v1, and each cluster response's `"final"` pair must
//! equal the exact solo trajectory of its (model, init) — which also
//! proves the gateway never crossed two models' answers. `--validate`
//! re-opens an emitted file and enforces every gate above on whichever
//! sections are present (at least one must be).
//!
//! **Tracing probe** (always first): the same sequential full-series
//! phase against one server before and after `gmr_obsv::init` installs
//! the process-global journal — the journal is sticky, so the untraced
//! phase must be the first thing the process does. Gates: overhead stays
//! `<= 2%` and the served trajectories are byte-identical with tracing
//! on and off. The solo and cluster sections also report latency
//! quantiles (p50/p90/p99/max, estimated from the log-scaled
//! `serve.latency_us` buckets) and, for the cluster, the gateway's SLO
//! counters — both must be populated, pinning the `/metrics` surface
//! end to end.

use gmr_bio::{manual, name_table};
use gmr_expr::{parse, CompiledSystem, Expr};
use gmr_hydro::{generate, SyntheticConfig, NUM_VARS};
use gmr_json::{push_f64, Value};
use gmr_obsv::metrics::quantile_from_buckets;
use gmr_serve::batch::{simulate_single, HostedTable, Tables};
use gmr_serve::server::{read_response, write_request, Client};
use gmr_serve::{
    Cluster, ClusterConfig, Gateway, GatewayConfig, GatewayHandle, ModelArtifact, ModelRegistry,
    Provenance, Ring, Server, ServerConfig, ServerHandle,
};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SCHEMA: &str = "gmr-bench-serve/v2";
/// Recalibrated from v1's 3.0: the register-VM fast paths sped the
/// sequential baseline more than the coalesced sweep (a lone trajectory
/// gains the most from cheaper scalar stepping), so the same batcher now
/// shows a smaller — but still required — work-sharing ratio.
const MIN_SPEEDUP_BATCHED: f64 = 2.0;
/// Aggregate-throughput floor for the top cluster tier over one backend.
const MIN_CLUSTER_SPEEDUP_FULL: f64 = 2.5; // >= 4 backends
const MIN_CLUSTER_SPEEDUP_SMALL: f64 = 1.2; // 2-3 backends (CI shape)
/// Journal + tracing overhead ceiling: instrumentation only reads clocks
/// and pushes ring-buffer events, so a traced request must cost within
/// 2% of an untraced one.
const MAX_TRACING_OVERHEAD_PCT: f64 = 2.0;
const CLIENTS: usize = 16;
const CLUSTER_CLIENTS: usize = 8;
const CLUSTER_MODELS: usize = 8;
const CLUSTER_DAYS: usize = 3000;
/// Forcing-only light-response terms per model (see [`env_ensemble`]).
const ENV_TERMS: usize = 160;

// ------------------------------------------------------------- latency --

/// Latency quantiles lifted from a `/metrics` response — either estimated
/// from a registry histogram's log-scaled buckets or copied from a
/// gateway quantile summary. Report-only values are machine-dependent;
/// the gate is that they are *populated* (`count >= 1`), which pins the
/// whole metrics surface: recording, snapshot JSON, and (for the fleet
/// view) the gateway's cross-backend bucket merge.
struct Latency {
    count: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
}

impl Latency {
    /// From a histogram snapshot: `{"count", "sum", "buckets": [[i, c]…]}`.
    fn from_histogram(h: &Value) -> Option<Latency> {
        let count = h.get("count").and_then(Value::as_u64)?;
        let buckets: Vec<(usize, u64)> = h
            .get("buckets")
            .and_then(Value::as_arr)?
            .iter()
            .filter_map(|p| {
                let p = p.as_arr()?;
                Some((p.first()?.as_u64()? as usize, p.get(1)?.as_u64()?))
            })
            .collect();
        Some(Latency {
            count,
            p50_us: quantile_from_buckets(&buckets, 0.5),
            p90_us: quantile_from_buckets(&buckets, 0.9),
            p99_us: quantile_from_buckets(&buckets, 0.99),
            max_us: quantile_from_buckets(&buckets, 1.0),
        })
    }

    /// From a gateway quantile summary: `{"count", "p50_us", …}`.
    fn from_summary(v: &Value) -> Option<Latency> {
        Some(Latency {
            count: v.get("count").and_then(Value::as_u64)?,
            p50_us: v.get("p50_us").and_then(Value::as_u64)?,
            p90_us: v.get("p90_us").and_then(Value::as_u64)?,
            p99_us: v.get("p99_us").and_then(Value::as_u64)?,
            max_us: v.get("max_us").and_then(Value::as_u64)?,
        })
    }

    fn render(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.count, self.p50_us, self.p90_us, self.p99_us, self.max_us
        )
    }
}

fn fetch_metrics(addr: SocketAddr) -> Option<Value> {
    let mut client = Client::new(addr);
    let resp = client.request("GET", "/metrics", b"").ok()?;
    if resp.status != 200 {
        return None;
    }
    gmr_json::parse(std::str::from_utf8(&resp.body).ok()?).ok()
}

// ------------------------------------------------------- tracing probe --

/// Journal + tracing overhead, measured on one server: the identical
/// sequential full-series phase with the process-global journal absent,
/// then installed. `requests` counts both phases.
struct TraceProbe {
    days: usize,
    requests: usize,
    reps: usize,
    journal_installed: bool,
    untraced_secs: f64,
    traced_secs: f64,
    bit_identical: bool,
}

impl TraceProbe {
    fn overhead_pct(&self) -> f64 {
        if self.untraced_secs <= 0.0 {
            return 0.0;
        }
        (self.traced_secs / self.untraced_secs - 1.0) * 100.0
    }
}

/// One rep: `requests` full-series requests on one keep-alive connection.
/// Returns `(secs, last response body)`.
fn probe_rep(addr: SocketAddr, requests: usize) -> (f64, Vec<u8>) {
    let body = series_body("table5-manual", "t", client_init(1));
    let mut client = Client::new(addr);
    let mut last = Vec::new();
    let t0 = Instant::now();
    for _ in 0..requests {
        let resp = client
            .request("POST", "/simulate", body.as_bytes())
            .expect("probe request");
        assert_eq!(resp.status, 200, "probe request failed");
        last = resp.body;
    }
    (t0.elapsed().as_secs_f64(), last)
}

/// Best-of-`reps` phase timing (the min absorbs scheduler noise) plus the
/// final response bytes for the bit-identity check.
fn probe_phase(addr: SocketAddr, requests: usize, reps: usize) -> (f64, Vec<u8>) {
    let mut best = f64::INFINITY;
    let mut last = Vec::new();
    for _ in 0..reps {
        let (secs, bytes) = probe_rep(addr, requests);
        best = best.min(secs);
        last = bytes;
    }
    (best, last)
}

/// `gmr_obsv::init` is sticky (first install wins, never uninstalled), so
/// this probe must run before anything else journals — and everything
/// benched after it runs with the journal live, which biases no relative
/// gate (both sides of each ratio are equally traced).
fn tracing_probe(quick: bool) -> TraceProbe {
    let (days, requests, reps) = if quick { (1500, 24, 3) } else { (3000, 60, 3) };
    let mut registry = ModelRegistry::new();
    registry
        .insert(ModelArtifact::builtin_manual())
        .expect("builtin admits");
    let mut tables = Tables::new();
    tables.insert("t", HostedTable::Single(forcing_rows(days)));
    let config = ServerConfig {
        workers: 2,
        batch_window: Duration::ZERO,
        ..ServerConfig::default()
    };
    let handle = Server::new(config, registry, tables)
        .start()
        .expect("start");
    let addr = handle.addr();
    probe_rep(addr, 5); // warm-up
    assert!(
        gmr_obsv::global().is_none(),
        "tracing probe must run before anything installs the journal"
    );
    let (untraced_secs, untraced_bytes) = probe_phase(addr, requests, reps);
    let journal_installed = gmr_obsv::init(gmr_obsv::DEFAULT_CAPACITY);
    let (traced_secs, traced_bytes) = probe_phase(addr, requests, reps);
    handle.shutdown();
    TraceProbe {
        days,
        requests: requests * reps * 2,
        reps,
        journal_installed,
        untraced_secs,
        traced_secs,
        bit_identical: !untraced_bytes.is_empty() && untraced_bytes == traced_bytes,
    }
}

// ---------------------------------------------------------------- solo --

struct BenchResult {
    days: usize,
    seq_requests: usize,
    seq_secs: f64,
    con_requests: usize,
    con_secs: f64,
    mean_batch: f64,
    max_batch: u64,
    bit_identical: bool,
    errors: u64,
    latency: Option<Latency>,
}

impl BenchResult {
    fn seq_rps(&self) -> f64 {
        self.seq_requests as f64 / self.seq_secs
    }
    fn con_rps(&self) -> f64 {
        self.con_requests as f64 / self.con_secs
    }
    fn speedup(&self) -> f64 {
        self.con_rps() / self.seq_rps()
    }
}

fn forcing_rows(days: usize) -> Vec<[f64; NUM_VARS]> {
    let ds = generate(&SyntheticConfig::default());
    let mut rows = ds.target_series().vars.clone();
    // Tile if the requested horizon outruns the dataset (it never does at
    // the shipped scales, but the flag is user-settable).
    while rows.len() < days {
        rows.extend_from_within(..);
    }
    rows.truncate(days);
    rows
}

fn client_init(c: usize) -> (f64, f64) {
    (4.0 + c as f64 * 0.73, 0.8 + c as f64 * 0.11)
}

fn summary_body(model: &str, table: &str, init: (f64, f64)) -> String {
    let mut b = format!("{{\"model\": \"{model}\", \"forcings_ref\": \"{table}\", \"mode\": \"summary\", \"init\": [");
    push_f64(&mut b, init.0);
    b.push_str(", ");
    push_f64(&mut b, init.1);
    b.push_str("]}");
    b
}

fn series_body(model: &str, table: &str, init: (f64, f64)) -> String {
    let mut b = format!("{{\"model\": \"{model}\", \"forcings_ref\": \"{table}\", \"init\": [");
    push_f64(&mut b, init.0);
    b.push_str(", ");
    push_f64(&mut b, init.1);
    b.push_str("]}");
    b
}

/// One keep-alive client issuing `n` summary requests; returns
/// `(batch_sum, max_batch, errors, finals)` where `finals` is the last
/// response's `"final"` pair.
fn run_client(addr: SocketAddr, init: (f64, f64), n: usize) -> (u64, u64, u64, Option<(f64, f64)>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let body = summary_body("table5-manual", "t", init);
    let (mut batch_sum, mut max_batch, mut errors) = (0u64, 0u64, 0u64);
    let mut last_final = None;
    for i in 0..n {
        let close = i + 1 == n;
        write_request(&mut writer, "POST", "/simulate", body.as_bytes(), close).expect("write");
        let (status, bytes) = read_response(&mut reader).expect("read");
        if status != 200 {
            errors += 1;
            continue;
        }
        let v = gmr_json::parse(std::str::from_utf8(&bytes).expect("utf8")).expect("json");
        let b = v.get("batch").and_then(Value::as_u64).unwrap_or(0);
        batch_sum += b;
        max_batch = max_batch.max(b);
        if let Some(f) = v.get("final").and_then(Value::as_arr) {
            if let (Some(p), Some(z)) = (f[0].as_f64(), f[1].as_f64()) {
                last_final = Some((p, z));
            }
        }
    }
    (batch_sum, max_batch, errors, last_final)
}

/// Full-series request checked bit-for-bit against in-process evaluation.
fn check_bit_identity(
    addr: SocketAddr,
    model: &str,
    table: &str,
    rows: &[[f64; NUM_VARS]],
    sys: &CompiledSystem,
) -> bool {
    let init = client_init(3);
    let body = series_body(model, table, init);
    let mut client = Client::new(addr);
    let resp = match client.request("POST", "/simulate", body.as_bytes()) {
        Ok(r) => r,
        Err(_) => return false,
    };
    if resp.status != 200 {
        return false;
    }
    let v = gmr_json::parse(std::str::from_utf8(&resp.body).expect("utf8")).expect("json");
    let got: Vec<f64> = v
        .get("bphy")
        .and_then(Value::as_arr)
        .map(|a| a.iter().filter_map(Value::as_f64).collect())
        .unwrap_or_default();
    let (want, _) = simulate_single(sys, rows, init, 1.0, 1e9);
    got == want
}

fn bench(days: usize, seq_requests: usize, per_client: usize) -> BenchResult {
    let mut registry = ModelRegistry::new();
    registry
        .insert(ModelArtifact::builtin_manual())
        .expect("builtin admits");
    let sys = registry.touch("table5-manual").unwrap().system.clone();
    let rows = forcing_rows(days);
    let mut tables = Tables::new();
    tables.insert("t", HostedTable::Single(rows.clone()));
    let config = ServerConfig {
        workers: CLIENTS,
        sim_queue: CLIENTS * 4,
        batch_window: Duration::ZERO,
        ..ServerConfig::default()
    };
    let handle: ServerHandle = Server::new(config, registry, tables)
        .start()
        .expect("start");
    let addr = handle.addr();

    let mut bit_identical = check_bit_identity(addr, "table5-manual", "t", &rows, &sys);
    let mut errors = 0u64;

    // Warm-up.
    run_client(addr, client_init(0), 5);

    // Phase 1: single-connection sequential.
    let t0 = Instant::now();
    let (_, seq_max_batch, seq_errors, seq_final) = run_client(addr, client_init(0), seq_requests);
    let seq_secs = t0.elapsed().as_secs_f64();
    errors += seq_errors;
    let (want_p, want_z) = {
        let (p, z) = simulate_single(&sys, &rows, client_init(0), 1.0, 1e9);
        (*p.last().unwrap(), *z.last().unwrap())
    };
    if seq_final != Some((want_p, want_z)) {
        bit_identical = false;
    }
    if seq_max_batch > 1 {
        // A lone client must never be held for co-batching.
        errors += 1;
    }

    // Phase 2: concurrent clients, coalesced by the batcher.
    let t0 = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| std::thread::spawn(move || run_client(addr, client_init(c), per_client)))
        .collect();
    let mut batch_sum = 0u64;
    let mut max_batch = 0u64;
    let mut answered = 0u64;
    for (c, t) in threads.into_iter().enumerate() {
        let (bs, mb, errs, last_final) = t.join().expect("client thread");
        batch_sum += bs;
        max_batch = max_batch.max(mb);
        errors += errs;
        answered += per_client as u64 - errs;
        let (p, z) = simulate_single(&sys, &rows, client_init(c), 1.0, 1e9);
        if last_final != Some((*p.last().unwrap(), *z.last().unwrap())) {
            bit_identical = false;
        }
    }
    let con_secs = t0.elapsed().as_secs_f64();
    bit_identical &= check_bit_identity(addr, "table5-manual", "t", &rows, &sys);
    let latency = fetch_metrics(addr)
        .as_ref()
        .and_then(|v| v.get("serve.latency_us"))
        .and_then(Latency::from_histogram);
    handle.shutdown();

    BenchResult {
        days,
        seq_requests,
        seq_secs,
        con_requests: CLIENTS * per_client,
        con_secs,
        mean_batch: batch_sum as f64 / answered.max(1) as f64,
        max_batch,
        bit_identical,
        errors,
        latency,
    }
}

// ------------------------------------------------------------- cluster --

struct TierResult {
    backends: usize,
    requests: usize,
    secs: f64,
}

impl TierResult {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.secs
    }
}

struct ClusterResult {
    models: usize,
    days: usize,
    clients: usize,
    per_client: usize,
    hot_models: usize,
    shards: Vec<usize>,
    bit_identical: bool,
    errors: u64,
    tiers: Vec<TierResult>,
    /// Fleet-merged `serve.latency_us` quantiles from the gateway's
    /// `/metrics`, captured after the top tier's timed phase.
    fleet_latency: Option<Latency>,
    slo_target_ms: u64,
    slo_good: u64,
    slo_total: u64,
    overload_requests: usize,
    overload_shed: u64,
    retry_after_ok: bool,
    overload_errors: u64,
}

impl ClusterResult {
    fn speedup(&self) -> f64 {
        let base = self.tiers.iter().find(|t| t.backends == 1);
        let top = self.tiers.iter().max_by_key(|t| t.backends);
        match (base, top) {
            (Some(b), Some(t)) if b.secs > 0.0 => t.rps() / b.rps(),
            _ => 0.0,
        }
    }
    fn floor(&self) -> f64 {
        scaling_floor(self.tiers.iter().map(|t| t.backends).max().unwrap_or(1))
    }
}

fn scaling_floor(backends: usize) -> f64 {
    if backends >= 4 {
        MIN_CLUSTER_SPEEDUP_FULL
    } else {
        MIN_CLUSTER_SPEEDUP_SMALL
    }
}

fn parse_eq(src: &str) -> Expr {
    let names = name_table();
    parse(src, &names, |kind| gmr_bio::params::spec(kind).mean)
        .unwrap_or_else(|e| panic!("bench model failed to parse: {e}\n{src}"))
}

/// A forcing-only "environment ensemble": `ENV_TERMS` light-response
/// curves with staggered saturation constants, summed. The whole sum
/// reads only forcings, so the compiler hoists it into the state-
/// independent per-day prefix — exactly the work a resident prefix
/// cache amortises across requests and an LRU eviction throws away.
/// Staggering by `seed` keeps the ensembles (and so the trajectories)
/// distinct per model.
fn env_ensemble(seed: usize) -> String {
    let terms: Vec<String> = (0..ENV_TERMS)
        .map(|k| {
            let c = 5.0 + ((seed * ENV_TERMS + k) % 37) as f64;
            format!("(Vlgt / (CBL + {c:.1})) * exp(1 - Vlgt / (CBL + {c:.1}))")
        })
        .collect();
    terms.join(" + ")
}

/// Eight distinct mixed-traffic models: the four shapes the engine
/// produces (Table V, added flux, temperature modulation, coupled
/// zooplankton), each in two variants with a distinct growth multiplier
/// and a per-model [`env_ensemble`] modifier, so every model's
/// trajectory differs — a routing mix-up between any two of them fails
/// the per-response final check — and every model carries a heavy
/// state-independent prefix for the hot tier to keep resident.
fn cluster_models() -> Vec<(String, [Expr; 2])> {
    let dbphy = manual::dbphy_src();
    let dbzoo = manual::dbzoo_src();
    (0..CLUSTER_MODELS)
        .map(|i| {
            let scale = format!("1.000{i}");
            let env = env_ensemble(i);
            let shape = match i % 4 {
                1 => format!(
                    "({dbphy}) + R * (Vcd / (Vcd + 300)) * ({})",
                    manual::F_LIGHT
                ),
                2 => format!("({dbphy}) * ({})", manual::H_TEMP),
                _ => format!("({dbphy})"),
            };
            let eq0 = format!("(({shape})) * {scale} + 0.0002 * ({env}) * BPhy");
            let eq1 = if i % 4 == 3 {
                format!("({dbzoo}) + CUZ * ({}) * BZoo", manual::G_NUTRIENT)
            } else {
                dbzoo.clone()
            };
            (format!("model-{i}"), [parse_eq(&eq0), parse_eq(&eq1)])
        })
        .collect()
}

/// Spawn a supervised cluster of real `gmr-serve` backends plus a
/// gateway, exactly the `gmr-serve cluster` topology.
fn start_cluster(
    serve_bin: &Path,
    dir: PathBuf,
    art_dir: &Path,
    backends: usize,
    hot_models: usize,
    extra: &[&str],
) -> (Cluster, GatewayHandle) {
    let mut config = ClusterConfig::new(backends, serve_bin.to_path_buf(), dir);
    config.backend_args = vec![
        "--artifacts".into(),
        art_dir.display().to_string(),
        "--days".into(),
        CLUSTER_DAYS.to_string(),
        "--hot-models".into(),
        hot_models.to_string(),
        // Capacity rule: backend workers must exceed the gateway's.
        "--workers".into(),
        (GatewayConfig::default().workers + 2).to_string(),
        "--window-ms".into(),
        "0".into(),
    ];
    config
        .backend_args
        .extend(extra.iter().map(|s| s.to_string()));
    let cluster = Cluster::start(config).expect("cluster must start");
    let gateway = Gateway::new(GatewayConfig::default(), cluster.slots())
        .start()
        .expect("gateway must bind");
    (cluster, gateway)
}

/// One timed mixed-model client: draws each request's model from a
/// fleet-wide round-robin counter (uniform keyspace coverage, and the
/// worst case for an undersized LRU — consecutive touches never repeat
/// a model), checking every summary `"final"` against the model's exact
/// solo trajectory. Returns `(errors, wrong)`.
fn run_mixed_client(
    addr: SocketAddr,
    c: usize,
    n: usize,
    next: &AtomicUsize,
    names: &[String],
    finals: &[Vec<(f64, f64)>],
) -> (u64, u64) {
    let mut client = Client::new(addr);
    let (mut errors, mut wrong) = (0u64, 0u64);
    for _ in 0..n {
        let m = next.fetch_add(1, Ordering::Relaxed) % names.len();
        let body = summary_body(&names[m], "target", client_init(c));
        let resp = match client.request("POST", "/simulate", body.as_bytes()) {
            Ok(r) => r,
            Err(_) => {
                errors += 1;
                continue;
            }
        };
        if resp.status != 200 {
            errors += 1;
            continue;
        }
        let v = gmr_json::parse(std::str::from_utf8(&resp.body).expect("utf8")).expect("json");
        let got = v.get("final").and_then(Value::as_arr).and_then(|f| {
            match (f[0].as_f64(), f[1].as_f64()) {
                (Some(p), Some(z)) => Some((p, z)),
                _ => None,
            }
        });
        if got != Some(finals[m][c]) {
            wrong += 1;
        }
    }
    (errors, wrong)
}

fn cluster_bench(quick: bool, backends_max: usize, serve_bin: &Path) -> ClusterResult {
    assert!(backends_max >= 2, "--backends must be at least 2");
    let scratch = std::env::temp_dir().join(format!("gmr-bench-cluster-{}", std::process::id()));
    let art_dir = scratch.join("artifacts");
    std::fs::create_dir_all(&art_dir).expect("scratch dir");

    // Build the artifacts, host them in-process for exact references,
    // and write them to disk for the backends to replicate.
    let models = cluster_models();
    let mut registry = ModelRegistry::new();
    for (name, eqs) in &models {
        let artifact = ModelArtifact::from_equations(
            name,
            eqs,
            Provenance {
                source: "bench".into(),
                ..Provenance::default()
            },
        );
        std::fs::write(art_dir.join(format!("{name}.json")), artifact.to_json())
            .expect("write artifact");
        registry.insert(artifact).expect("bench artifact admits");
    }
    let names: Vec<String> = models.iter().map(|(n, _)| n.clone()).collect();
    let systems: Vec<Arc<CompiledSystem>> = names
        .iter()
        .map(|n| registry.touch(n).unwrap().system.clone())
        .collect();
    let rows = forcing_rows(CLUSTER_DAYS);
    let finals: Vec<Vec<(f64, f64)>> = systems
        .iter()
        .map(|sys| {
            (0..CLUSTER_CLIENTS)
                .map(|c| {
                    let (p, z) = simulate_single(sys, &rows, client_init(c), 1.0, 1e9);
                    (*p.last().unwrap(), *z.last().unwrap())
                })
                .collect()
        })
        .collect();

    // Hot cap `models - 1`: one backend cycling every model misses on
    // every touch; any shard of 2+ backends fits fully hot.
    let hot_models = CLUSTER_MODELS - 1;
    let ring = Ring::new(backends_max);
    let mut shards = vec![0usize; backends_max];
    for name in &names {
        shards[ring.preference(&Ring::key(name, "target"))[0] as usize] += 1;
    }

    let per_client = if quick { 12 } else { 40 };
    let mut bit_identical = true;
    let mut errors = 0u64;
    let mut tiers = Vec::new();
    let mut fleet_latency = None;
    let (mut slo_target_ms, mut slo_good, mut slo_total) = (0u64, 0u64, 0u64);
    for backends in [1, backends_max] {
        let (cluster, gateway) = start_cluster(
            serve_bin,
            scratch.join(format!("tier-{backends}")),
            &art_dir,
            backends,
            hot_models,
            &[],
        );
        let addr = gateway.addr();
        // Bit-identity through the gateway, per model: a full-series
        // response must match in-process evaluation exactly.
        for (m, name) in names.iter().enumerate() {
            bit_identical &= check_bit_identity(addr, name, "target", &rows, &systems[m]);
        }
        // Warm-up pass, then the timed mixed-model phase.
        let next = Arc::new(AtomicUsize::new(0));
        run_mixed_client(addr, 0, names.len(), &next, &names, &finals);
        next.store(0, Ordering::Relaxed);
        let t0 = Instant::now();
        let threads: Vec<_> = (0..CLUSTER_CLIENTS)
            .map(|c| {
                let names = names.clone();
                let finals = finals.clone();
                let next = Arc::clone(&next);
                std::thread::spawn(move || {
                    run_mixed_client(addr, c, per_client, &next, &names, &finals)
                })
            })
            .collect();
        for t in threads {
            let (errs, wrong) = t.join().expect("client thread");
            errors += errs;
            if wrong > 0 {
                bit_identical = false;
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        // The sharded tier is where the fleet view matters: quantiles over
        // every backend's merged buckets, plus the gateway's SLO counters.
        if backends == backends_max {
            if let Some(m) = fetch_metrics(addr) {
                fleet_latency = m
                    .get("latency")
                    .and_then(|l| l.get("fleet"))
                    .and_then(Latency::from_summary);
                if let Some(s) = m.get("slo") {
                    slo_target_ms = s.get("target_ms").and_then(Value::as_u64).unwrap_or(0);
                    slo_good = s.get("good").and_then(Value::as_u64).unwrap_or(0);
                    slo_total = s.get("total").and_then(Value::as_u64).unwrap_or(0);
                }
            }
        }
        gateway.shutdown();
        cluster.shutdown();
        tiers.push(TierResult {
            backends,
            requests: CLUSTER_CLIENTS * per_client,
            secs,
        });
        eprintln!(
            "  cluster tier {backends}: {:.1} req/s ({} requests, {:.3}s)",
            tiers.last().unwrap().rps(),
            CLUSTER_CLIENTS * per_client,
            secs
        );
    }

    // Overload probe: one backend, a one-slot simulation queue, and a
    // model-cycling burst (every group recompiles, so the queue stays
    // full). The shed path must surface through the gateway as 429 +
    // Retry-After, never a hang or a bare 429.
    let (cluster, gateway) = start_cluster(
        serve_bin,
        scratch.join("overload"),
        &art_dir,
        1,
        hot_models,
        &["--sim-queue", "1"],
    );
    let addr = gateway.addr();
    let overload_per_client = 6;
    let threads: Vec<_> = (0..CLUSTER_CLIENTS)
        .map(|c| {
            let names = names.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let (mut shed, mut missing_ra, mut errs) = (0u64, 0u64, 0u64);
                for j in 0..overload_per_client {
                    let m = (c + j) % names.len();
                    let body = summary_body(&names[m], "target", client_init(c));
                    match client.request("POST", "/simulate", body.as_bytes()) {
                        Ok(resp) if resp.status == 429 => {
                            shed += 1;
                            if resp.retry_after.is_none() {
                                missing_ra += 1;
                            }
                        }
                        Ok(resp) if resp.status == 200 => {}
                        _ => errs += 1,
                    }
                }
                (shed, missing_ra, errs)
            })
        })
        .collect();
    let (mut overload_shed, mut missing_ra, mut overload_errors) = (0u64, 0u64, 0u64);
    for t in threads {
        let (s, m, e) = t.join().expect("overload client");
        overload_shed += s;
        missing_ra += m;
        overload_errors += e;
    }
    gateway.shutdown();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);

    ClusterResult {
        models: CLUSTER_MODELS,
        days: CLUSTER_DAYS,
        clients: CLUSTER_CLIENTS,
        per_client,
        hot_models,
        shards,
        bit_identical,
        errors,
        tiers,
        fleet_latency,
        slo_target_ms,
        slo_good,
        slo_total,
        overload_requests: CLUSTER_CLIENTS * overload_per_client,
        overload_shed,
        retry_after_ok: overload_shed > 0 && missing_ra == 0,
        overload_errors,
    }
}

// ----------------------------------------------------------- rendering --

fn render_solo(out: &mut String, r: &BenchResult) {
    out.push_str("  \"solo\": {\n");
    out.push_str("    \"model\": \"table5-manual\",\n");
    out.push_str(&format!("    \"days\": {},\n", r.days));
    out.push_str(&format!("    \"clients\": {CLIENTS},\n"));
    out.push_str(&format!("    \"bit_identical\": {},\n", r.bit_identical));
    out.push_str(&format!("    \"errors\": {},\n", r.errors));
    out.push_str(&format!(
        "    \"sequential\": {{\"requests\": {}, \"secs\": {:.4}, \"rps\": {:.1}}},\n",
        r.seq_requests,
        r.seq_secs,
        r.seq_rps()
    ));
    out.push_str(&format!(
        "    \"batched\": {{\"requests\": {}, \"secs\": {:.4}, \"rps\": {:.1}, \
         \"mean_batch\": {:.2}, \"max_batch\": {}}},\n",
        r.con_requests,
        r.con_secs,
        r.con_rps(),
        r.mean_batch,
        r.max_batch
    ));
    if let Some(l) = &r.latency {
        out.push_str(&format!("    \"latency\": {},\n", l.render()));
    }
    out.push_str(&format!("    \"batched_speedup\": {:.3}\n", r.speedup()));
    out.push_str("  }");
}

fn render_tracing(out: &mut String, p: &TraceProbe) {
    out.push_str("  \"tracing\": {\n");
    out.push_str(&format!("    \"days\": {},\n", p.days));
    out.push_str(&format!("    \"requests\": {},\n", p.requests));
    out.push_str(&format!("    \"reps\": {},\n", p.reps));
    out.push_str(&format!(
        "    \"journal_installed\": {},\n",
        p.journal_installed
    ));
    out.push_str(&format!("    \"untraced_secs\": {:.4},\n", p.untraced_secs));
    out.push_str(&format!("    \"traced_secs\": {:.4},\n", p.traced_secs));
    out.push_str(&format!("    \"overhead_pct\": {:.3},\n", p.overhead_pct()));
    out.push_str(&format!(
        "    \"max_overhead_pct\": {MAX_TRACING_OVERHEAD_PCT:.1},\n"
    ));
    out.push_str(&format!("    \"bit_identical\": {}\n", p.bit_identical));
    out.push_str("  }");
}

fn render_cluster(out: &mut String, r: &ClusterResult) {
    out.push_str("  \"cluster\": {\n");
    out.push_str(&format!("    \"models\": {},\n", r.models));
    out.push_str(&format!("    \"days\": {},\n", r.days));
    out.push_str(&format!("    \"clients\": {},\n", r.clients));
    out.push_str(&format!("    \"per_client\": {},\n", r.per_client));
    out.push_str(&format!("    \"hot_models\": {},\n", r.hot_models));
    out.push_str("    \"shards\": [");
    for (i, s) in r.shards.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&s.to_string());
    }
    out.push_str("],\n");
    out.push_str(&format!("    \"bit_identical\": {},\n", r.bit_identical));
    out.push_str(&format!("    \"errors\": {},\n", r.errors));
    out.push_str("    \"tiers\": [");
    for (i, t) in r.tiers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      {{\"backends\": {}, \"requests\": {}, \"secs\": {:.4}, \"rps\": {:.1}}}",
            t.backends,
            t.requests,
            t.secs,
            t.rps()
        ));
    }
    out.push_str("\n    ],\n");
    out.push_str(&format!("    \"cluster_speedup\": {:.3},\n", r.speedup()));
    out.push_str(&format!("    \"scaling_floor\": {:.1},\n", r.floor()));
    if let Some(l) = &r.fleet_latency {
        out.push_str(&format!("    \"latency\": {},\n", l.render()));
    }
    out.push_str(&format!(
        "    \"slo\": {{\"target_ms\": {}, \"good\": {}, \"total\": {}}},\n",
        r.slo_target_ms, r.slo_good, r.slo_total
    ));
    out.push_str(&format!(
        "    \"overload\": {{\"requests\": {}, \"shed\": {}, \"retry_after_ok\": {}, \"errors\": {}}}\n",
        r.overload_requests, r.overload_shed, r.retry_after_ok, r.overload_errors
    ));
    out.push_str("  }");
}

fn render_json(
    solo: Option<&BenchResult>,
    cluster: Option<&ClusterResult>,
    tracing: Option<&TraceProbe>,
    quick: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"scale\": \"{}\"",
        if quick { "quick" } else { "default" }
    ));
    if let Some(p) = tracing {
        out.push_str(",\n");
        render_tracing(&mut out, p);
    }
    if let Some(r) = solo {
        out.push_str(",\n");
        render_solo(&mut out, r);
    }
    if let Some(r) = cluster {
        out.push_str(",\n");
        render_cluster(&mut out, r);
    }
    out.push_str("\n}\n");
    out
}

// ---------------------------------------------------------- validation --

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn validate_solo(v: &Value, errs: &mut Vec<String>) {
    if v.get("bit_identical").and_then(Value::as_bool) != Some(true) {
        errs.push("solo: bit_identical is not true — served responses diverged".into());
    }
    match num(v, "errors") {
        Some(0.0) => {}
        Some(e) => errs.push(format!("solo: {e} non-200 or mis-batched responses")),
        None => errs.push("solo: errors missing".into()),
    }
    if v.get("batched")
        .and_then(|b| num(b, "mean_batch"))
        .is_none()
    {
        errs.push("solo: batched.mean_batch missing".into());
    }
    match num(v, "batched_speedup") {
        Some(s) if s >= MIN_SPEEDUP_BATCHED => {}
        Some(s) => errs.push(format!(
            "solo: batched_speedup {s:.3} below the {MIN_SPEEDUP_BATCHED}x gate"
        )),
        None => errs.push("solo: batched_speedup missing".into()),
    }
    match v.get("latency").and_then(|l| num(l, "count")) {
        Some(c) if c >= 1.0 => {}
        _ => errs.push("solo: latency quantiles missing — `serve.latency_us` unpopulated".into()),
    }
}

fn validate_tracing(v: &Value, errs: &mut Vec<String>) {
    if v.get("bit_identical").and_then(Value::as_bool) != Some(true) {
        errs.push(
            "tracing: bit_identical is not true — tracing changed a served trajectory".into(),
        );
    }
    match num(v, "overhead_pct") {
        Some(o) if o <= MAX_TRACING_OVERHEAD_PCT => {}
        Some(o) => errs.push(format!(
            "tracing: overhead {o:.3}% above the {MAX_TRACING_OVERHEAD_PCT}% gate"
        )),
        None => errs.push("tracing: overhead_pct missing".into()),
    }
}

fn validate_cluster(v: &Value, errs: &mut Vec<String>) {
    if v.get("bit_identical").and_then(Value::as_bool) != Some(true) {
        errs.push("cluster: bit_identical is not true — a gateway response diverged".into());
    }
    match num(v, "errors") {
        Some(0.0) => {}
        Some(e) => errs.push(format!("cluster: {e} failed responses in the timed phases")),
        None => errs.push("cluster: errors missing".into()),
    }
    let tiers: Vec<(f64, f64)> = v
        .get("tiers")
        .and_then(Value::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(|t| Some((num(t, "backends")?, num(t, "rps")?)))
                .collect()
        })
        .unwrap_or_default();
    let base = tiers.iter().find(|(b, _)| *b == 1.0).map(|(_, r)| *r);
    let top = tiers
        .iter()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .filter(|(b, _)| *b >= 2.0)
        .copied();
    match (base, top) {
        (Some(rps1), Some((backends, rps_top))) if rps1 > 0.0 => {
            let speedup = rps_top / rps1;
            let floor = scaling_floor(backends as usize);
            if speedup < floor {
                errs.push(format!(
                    "cluster: speedup {speedup:.3} at {backends} backends below the {floor}x floor"
                ));
            }
        }
        _ => errs.push("cluster: tiers must cover 1 backend and a sharded tier".into()),
    }
    match v.get("latency").and_then(|l| num(l, "count")) {
        Some(c) if c >= 1.0 => {}
        _ => errs.push(
            "cluster: latency quantiles missing — the gateway's fleet merge is unpopulated".into(),
        ),
    }
    match v.get("slo").and_then(|s| num(s, "total")) {
        Some(t) if t >= 1.0 => {}
        _ => {
            errs.push("cluster: slo.total is zero — the gateway's SLO counters never moved".into())
        }
    }
    match v.get("overload") {
        Some(o) => {
            match num(o, "shed") {
                Some(s) if s >= 1.0 => {}
                _ => errs
                    .push("cluster: overload probe shed no requests — 429 path unexercised".into()),
            }
            if o.get("retry_after_ok").and_then(Value::as_bool) != Some(true) {
                errs.push("cluster: a shed response was missing Retry-After".into());
            }
            match num(o, "errors") {
                Some(0.0) => {}
                _ => errs.push("cluster: overload probe saw non-200/429 responses".into()),
            }
        }
        None => errs.push("cluster: overload section missing".into()),
    }
}

/// Enforce the acceptance gates on an emitted file. Returns the failures.
/// The document must strict-reparse under `gmr_json` before any gate is
/// read — a truncated or hand-mangled baseline fails loudly.
fn validate(src: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let v = match gmr_json::parse(src) {
        Ok(v) => v,
        Err(e) => return vec![format!("not strict JSON: {e}")],
    };
    if v.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("missing schema tag {SCHEMA:?}"));
    }
    let solo = v.get("solo");
    let cluster = v.get("cluster");
    if solo.is_none() && cluster.is_none() {
        errs.push("neither a solo nor a cluster section is present".into());
    }
    if let Some(s) = solo {
        validate_solo(s, &mut errs);
    }
    if let Some(c) = cluster {
        validate_cluster(c, &mut errs);
    }
    if let Some(t) = v.get("tracing") {
        validate_tracing(t, &mut errs);
    }
    errs
}

// ---------------------------------------------------------------- main --

fn default_serve_bin() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("gmr-serve")))
        .unwrap_or_else(|| PathBuf::from("gmr-serve"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--validate requires a file path");
            std::process::exit(2);
        });
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let errs = validate(&src);
        if errs.is_empty() {
            println!("{path}: OK ({SCHEMA})");
            return;
        }
        for e in &errs {
            eprintln!("{path}: FAIL: {e}");
        }
        std::process::exit(1);
    }

    let quick = args.iter().any(|a| a == "--quick");
    let want_solo = args.iter().any(|a| a == "--solo");
    let want_cluster = args.iter().any(|a| a == "--cluster");
    // No section flag selects both (the committed-baseline shape).
    let (want_solo, want_cluster) = if want_solo || want_cluster {
        (want_solo, want_cluster)
    } else {
        (true, true)
    };
    let backends = args
        .iter()
        .position(|a| a == "--backends")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let serve_bin = args
        .iter()
        .position(|a| a == "--serve-bin")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(default_serve_bin);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_serve.json");

    // The probe must be the process's first journal user (`init` is
    // sticky), so it runs before either bench section.
    eprintln!("bench_serve tracing probe: journal overhead + on/off bit-identity");
    let tracing = tracing_probe(quick);
    eprintln!(
        "  untraced {:.4}s | traced {:.4}s | overhead {:.2}% | bit identical: {}",
        tracing.untraced_secs,
        tracing.traced_secs,
        tracing.overhead_pct(),
        tracing.bit_identical
    );

    let solo = want_solo.then(|| {
        // Both scales keep the full 13-year horizon: the gate measures
        // work-sharing, which only shows when simulation dominates the
        // per-request cost. `--quick` trims the request counts.
        let (days, seq_requests, per_client) = if quick {
            (4748, 120, 20)
        } else {
            (4748, 400, 50)
        };
        eprintln!(
            "bench_serve solo: {days} days, {seq_requests} sequential, {CLIENTS}x{per_client} batched"
        );
        let r = bench(days, seq_requests, per_client);
        eprintln!(
            "  sequential: {:.1} req/s | batched: {:.1} req/s (mean batch {:.1}, max {}) | {:.2}x",
            r.seq_rps(),
            r.con_rps(),
            r.mean_batch,
            r.max_batch,
            r.speedup()
        );
        r
    });

    let cluster = want_cluster.then(|| {
        if !serve_bin.is_file() {
            eprintln!(
                "bench_serve: backend binary {} not found — build `-p gmr-serve --release` first \
                 or pass --serve-bin PATH",
                serve_bin.display()
            );
            std::process::exit(2);
        }
        eprintln!(
            "bench_serve cluster: {CLUSTER_MODELS} models, {CLUSTER_DAYS} days, \
             tiers [1, {backends}], {CLUSTER_CLIENTS} clients"
        );
        let r = cluster_bench(quick, backends, &serve_bin);
        eprintln!(
            "  cluster speedup {:.2}x at {} backends (floor {:.1}) | shed {} (retry-after ok: {})",
            r.speedup(),
            backends,
            r.floor(),
            r.overload_shed,
            r.retry_after_ok
        );
        r
    });

    let json = render_json(solo.as_ref(), cluster.as_ref(), Some(&tracing), quick);
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote {out_path}");

    let errs = validate(&json);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("FAIL: {e}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency_result() -> Latency {
        Latency {
            count: 200,
            p50_us: 1800,
            p90_us: 2600,
            p99_us: 3400,
            max_us: 9000,
        }
    }

    fn solo_result() -> BenchResult {
        BenchResult {
            days: 365,
            seq_requests: 40,
            seq_secs: 0.8,
            con_requests: 160,
            con_secs: 0.8,
            mean_batch: 5.2,
            max_batch: 8,
            bit_identical: true,
            errors: 0,
            latency: Some(latency_result()),
        }
    }

    fn cluster_result() -> ClusterResult {
        ClusterResult {
            models: 8,
            days: 365,
            clients: 8,
            per_client: 12,
            hot_models: 7,
            shards: vec![2, 2, 2, 2],
            bit_identical: true,
            errors: 0,
            tiers: vec![
                TierResult {
                    backends: 1,
                    requests: 96,
                    secs: 1.0,
                },
                TierResult {
                    backends: 4,
                    requests: 96,
                    secs: 0.3,
                },
            ],
            fleet_latency: Some(latency_result()),
            slo_target_ms: 250,
            slo_good: 95,
            slo_total: 96,
            overload_requests: 48,
            overload_shed: 17,
            retry_after_ok: true,
            overload_errors: 0,
        }
    }

    fn tracing_result() -> TraceProbe {
        TraceProbe {
            days: 365,
            requests: 144,
            reps: 3,
            journal_installed: true,
            untraced_secs: 1.0,
            traced_secs: 1.005,
            bit_identical: true,
        }
    }

    #[test]
    fn rendered_json_strict_reparses_and_validates() {
        let json = render_json(
            Some(&solo_result()),
            Some(&cluster_result()),
            Some(&tracing_result()),
            true,
        );
        gmr_json::parse(&json).expect("strict parse");
        assert_eq!(validate(&json), Vec::<String>::new());
        assert!(validate("[1, 2")
            .iter()
            .any(|e| e.contains("not strict JSON")));
        assert!(validate("{\"schema\": \"gmr-bench-serve/v2\"}")
            .iter()
            .any(|e| e.contains("neither")));
    }

    #[test]
    fn tracing_gates_catch_overhead_and_divergence() {
        // 5% overhead — over the 2% ceiling.
        let mut p = tracing_result();
        p.traced_secs = 1.05;
        let json = render_json(None, Some(&cluster_result()), Some(&p), true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("above the 2% gate")));
        // A trajectory that changed when tracing was switched on.
        let mut p = tracing_result();
        p.bit_identical = false;
        let json = render_json(None, Some(&cluster_result()), Some(&p), true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("changed a served trajectory")));
        // Negative measured overhead (noise) is not a failure.
        let mut p = tracing_result();
        p.traced_secs = 0.99;
        let json = render_json(None, Some(&cluster_result()), Some(&p), true);
        assert_eq!(validate(&json), Vec::<String>::new());
    }

    #[test]
    fn metrics_surface_gates_catch_unpopulated_sections() {
        // Solo without latency quantiles.
        let mut r = solo_result();
        r.latency = None;
        let json = render_json(Some(&r), None, None, true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("solo: latency quantiles missing")));
        // Cluster without a fleet merge.
        let mut r = cluster_result();
        r.fleet_latency = None;
        let json = render_json(None, Some(&r), None, true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("cluster: latency quantiles missing")));
        // Cluster whose SLO counters never moved.
        let mut r = cluster_result();
        r.slo_total = 0;
        let json = render_json(None, Some(&r), None, true);
        assert!(validate(&json).iter().any(|e| e.contains("slo.total")));
    }

    #[test]
    fn cluster_gates_catch_regressions() {
        // Scaling below the floor.
        let mut r = cluster_result();
        r.tiers[1].secs = 0.9; // 1.11x — under even the small floor
        let json = render_json(None, Some(&r), None, true);
        assert!(validate(&json).iter().any(|e| e.contains("below the")));
        // No shed during the overload probe.
        let mut r = cluster_result();
        r.overload_shed = 0;
        r.retry_after_ok = false;
        let json = render_json(None, Some(&r), None, true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("shed no requests")));
        // A 429 without Retry-After.
        let mut r = cluster_result();
        r.retry_after_ok = false;
        let json = render_json(None, Some(&r), None, true);
        assert!(validate(&json).iter().any(|e| e.contains("Retry-After")));
        // The 2-backend CI shape uses the smaller floor.
        let mut r = cluster_result();
        r.tiers[1].backends = 2;
        r.tiers[1].secs = 0.7; // 1.43x — over 1.2, under 2.5
        let json = render_json(None, Some(&r), None, true);
        assert_eq!(validate(&json), Vec::<String>::new());
    }

    #[test]
    fn solo_gate_catches_slow_batching() {
        let mut r = solo_result();
        r.con_secs = 3.0; // exactly 1x
        let json = render_json(Some(&r), None, None, true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("below the 2x gate")));
    }

    #[test]
    fn cluster_models_are_distinct_and_parse() {
        let models = cluster_models();
        assert_eq!(models.len(), CLUSTER_MODELS);
        let names: std::collections::BTreeSet<_> = models.iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), CLUSTER_MODELS, "names must be unique");
    }
}
