//! Engine throughput benchmark: persistent evaluation pool + phenotype
//! memo, measured end to end and emitted as machine-readable JSON.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p gmr-bench --bin bench_engine -- [--quick] [--out PATH]
//! cargo run --release -p gmr-bench --bin bench_engine -- --validate PATH
//! ```
//!
//! The workload is a *latency-bound* synthetic evaluator: each fitness
//! evaluation sleeps a fixed interval per short-circuit block, modelling a
//! forward integration whose cost is dominated by waiting on memory /
//! solver latency rather than raw arithmetic. That choice is deliberate —
//! CI containers often expose a single core, and a compute-bound workload
//! cannot speed up there no matter how good the scheduler is. A
//! latency-bound one can: sleeping candidates overlap, so the measured
//! speed-up isolates what this benchmark is actually about — the pool's
//! ability to keep `threads` candidates in flight concurrently and claim
//! work dynamically. Compute-bound scaling on real hardware is covered by
//! the Criterion benches (`benches/speedup.rs`).
//!
//! Every thread count runs the identical seeded workload, and the run
//! aborts unless the per-generation best-fitness trajectories are
//! bit-identical across thread counts — the pool's determinism contract,
//! checked on every benchmark run, not just in the test suite.
//!
//! The benchmark doubles as the observability overhead gate: the
//! threads=1 workload runs first with the journal *uninstalled* (every
//! span is one relaxed atomic load) and again with it recording, and the
//! emitted JSON carries the throughput delta as `obsv.overhead_pct`.
//! Trajectories must stay bit-identical across that switch too — the
//! instrumentation reads clocks, never the search state.
//!
//! `--validate` re-opens an emitted JSON file and enforces the acceptance
//! gate: schema tag present, determinism flag true, threads=4 achieving
//! at least 2× the threads=1 candidate throughput, and journal-on
//! overhead within 2%. `--journal PATH` flushes the run journal to
//! `gmr-journal/v1` JSONL for `gmr-trace`.

use gmr_expr::EvalContext;
use gmr_gp::{Engine, Evaluator, GpConfig, ParamPriors, Phenotype, PoolStats};
use gmr_tag::grammar::test_fixtures::tiny_grammar;
use std::time::{Duration, Instant};

const SCHEMA: &str = "gmr-bench-engine/v1";
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const MIN_SPEEDUP_T4: f64 = 2.0;
/// Acceptance ceiling on journal-on vs journal-off throughput loss.
const MAX_OVERHEAD_PCT: f64 = 2.0;
/// Threads=1 repetitions per arm of the overhead comparison (best-of).
const OVERHEAD_REPS: usize = 2;

/// Fit `y = 2x - 1` with a fixed per-block latency. The short-circuit
/// controller is consulted every `CHECK_EVERY` cases; one sleep precedes
/// each block, so a full evaluation costs `blocks × sleep` wall time and a
/// short-circuited one proportionally less — exactly the profile a
/// forward-Euler integration with an expensive RHS would show.
struct SleepyLineFit {
    xs: Vec<f64>,
    ys: Vec<f64>,
    sleep: Duration,
}

const CHECK_EVERY: usize = 8;

impl SleepyLineFit {
    fn new(cases: usize, sleep: Duration) -> Self {
        let xs: Vec<f64> = (0..cases).map(|i| i as f64 / 4.0).collect();
        let ys = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        SleepyLineFit { xs, ys, sleep }
    }
}

impl Evaluator for SleepyLineFit {
    fn num_equations(&self) -> usize {
        1
    }
    fn num_cases(&self) -> usize {
        self.xs.len()
    }
    fn evaluate(&self, ph: &Phenotype, ctl: &mut dyn FnMut(f64, usize) -> bool) -> (f64, bool) {
        let eq = &ph.eqs()[0];
        let comp = ph.compiled();
        let mut scratch = comp.map(|sys| sys.scratch());
        let mut out = [0.0f64];
        let mut sse = 0.0;
        let n = self.xs.len();
        for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
            if i % CHECK_EVERY == 0 {
                std::thread::sleep(self.sleep); // the modelled integration latency
            }
            let state = [x];
            // tiny_grammar's pool includes Var(0); supply its (constant 0.0)
            // slot so arity-checked compiled programs accept the system.
            let ctx = EvalContext {
                vars: &[0.0],
                state: &state,
            };
            let p = match (&comp, &mut scratch) {
                (Some(sys), Some(scratch)) => {
                    sys.eval_step(&ctx, scratch, &mut out);
                    out[0]
                }
                _ => eq.eval(&ctx),
            };
            let d = p - y;
            sse += d * d;
            let done = i + 1;
            if done % CHECK_EVERY == 0 && done < n {
                let running = (sse / done as f64).sqrt();
                if !ctl(running, done) {
                    return (running, false);
                }
            }
        }
        ((sse / n as f64).sqrt(), true)
    }
}

struct Workload {
    name: &'static str,
    pop_size: usize,
    max_gen: usize,
    cases: usize,
    sleep_us: u64,
    seed: u64,
}

impl Workload {
    fn quick() -> Workload {
        Workload {
            name: "quick",
            pop_size: 24,
            max_gen: 6,
            cases: 32,
            sleep_us: 500,
            seed: 11,
        }
    }
    fn default_scale() -> Workload {
        Workload {
            name: "default",
            pop_size: 40,
            max_gen: 12,
            cases: 64,
            sleep_us: 800,
            seed: 11,
        }
    }
    fn cfg(&self, threads: usize) -> GpConfig {
        GpConfig {
            pop_size: self.pop_size,
            max_gen: self.max_gen,
            min_size: 2,
            max_size: 10,
            local_search_steps: 1,
            es_threshold: Some(1.1),
            threads,
            seed: self.seed,
            ..GpConfig::default()
        }
    }
}

#[derive(Clone)]
struct RunResult {
    threads: usize,
    wall: Duration,
    candidates: u64,
    evaluations: u64,
    short_circuited: u64,
    cache_hits: u64,
    cache_misses: u64,
    pheno_builds: u64,
    pheno_reuses: u64,
    compiles: u64,
    pool: PoolStats,
    trajectory: Vec<u64>,
}

impl RunResult {
    fn candidates_per_sec(&self) -> f64 {
        self.candidates as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn run_once(w: &Workload, threads: usize) -> RunResult {
    let (g, _) = tiny_grammar();
    let problem = SleepyLineFit::new(w.cases, Duration::from_micros(w.sleep_us));
    let priors = ParamPriors::new([(2.0, 0.0, 4.0), (0.5, 0.0, 1.0)]);
    let engine = Engine::new(&g, &problem, priors, w.cfg(threads));
    let start = Instant::now();
    let report = engine.run();
    let wall = start.elapsed();
    RunResult {
        threads,
        wall,
        candidates: report.pool.total_candidates(),
        evaluations: report.evaluations,
        short_circuited: report.short_circuited,
        cache_hits: report.cache_hits,
        cache_misses: report.cache_misses,
        pheno_builds: report.pheno_builds,
        pheno_reuses: report.pheno_reuses,
        compiles: report.compiles,
        pool: report.pool,
        trajectory: report.history.iter().map(|s| s.best.to_bits()).collect(),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The journal-on vs journal-off comparison at threads=1.
struct ObsvSection {
    overhead_pct: f64,
    disabled_cps: f64,
    enabled_cps: f64,
    journal_events: usize,
    journal_dropped: u64,
}

fn render_json(
    w: &Workload,
    runs: &[RunResult],
    deterministic: bool,
    speedup_t4: f64,
    obsv: &ObsvSection,
) -> String {
    let base_cps = runs[0].candidates_per_sec();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"scale\": \"{}\",\n", w.name));
    out.push_str(&format!(
        "  \"workload\": {{\"pop_size\": {}, \"max_gen\": {}, \"cases\": {}, \"sleep_us_per_block\": {}, \"seed\": {}}},\n",
        w.pop_size, w.max_gen, w.cases, w.sleep_us, w.seed
    ));
    out.push_str(&format!(
        "  \"deterministic_across_threads\": {deterministic},\n"
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let cps = r.candidates_per_sec();
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_ms\": {:.3}, \"candidates\": {}, \
             \"candidates_per_sec\": {:.3}, \"speedup_vs_1\": {:.3}, \
             \"evaluations\": {}, \"short_circuited\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \
             \"pheno_builds\": {}, \"pheno_reuses\": {}, \"compiles\": {},\n",
            r.threads,
            ms(r.wall),
            r.candidates,
            cps,
            cps / base_cps,
            r.evaluations,
            r.short_circuited,
            r.cache_hits,
            r.cache_misses,
            r.pheno_builds,
            r.pheno_reuses,
            r.compiles,
        ));
        out.push_str(&format!(
            "     \"pool\": {{\"rounds\": {}, \"steals\": {}, \"busy_ms\": {:.3}, \"idle_ms\": {:.3}, \"workers\": [",
            r.pool.rounds,
            r.pool.total_steals(),
            ms(r.pool.total_busy()),
            ms(r.pool.total_idle()),
        ));
        for (j, ws) in r.pool.workers.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"worker\": {}, \"candidates\": {}, \"claims\": {}, \"steals\": {}, \"busy_ms\": {:.3}, \"idle_ms\": {:.3}}}",
                ws.worker, ws.candidates, ws.claims, ws.steals, ms(ws.busy), ms(ws.idle)
            ));
        }
        out.push_str("]}}");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"obsv\": {{\"overhead_pct\": {:.3}, \"disabled_candidates_per_sec\": {:.3}, \
         \"enabled_candidates_per_sec\": {:.3}, \"journal_events\": {}, \"journal_dropped\": {}}},\n",
        obsv.overhead_pct,
        obsv.disabled_cps,
        obsv.enabled_cps,
        obsv.journal_events,
        obsv.journal_dropped,
    ));
    out.push_str(&format!("  \"speedup_threads4\": {speedup_t4:.3}\n"));
    out.push_str("}\n");
    out
}

/// Pull the first numeric value following `"key":` out of the emitted JSON.
fn json_number(src: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = src.find(&pat)? + pat.len();
    let rest = src[i..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Enforce the acceptance gate on an emitted file. Returns the failures.
/// The document must strict-reparse under `gmr_json` before any gate is
/// read — a truncated or hand-mangled baseline fails loudly, not by
/// accidentally missing a `contains` probe.
fn validate(src: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if let Err(e) = gmr_json::parse(src) {
        return vec![format!("not strict JSON: {e}")];
    }
    if !src.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        errs.push(format!("missing schema tag {SCHEMA:?}"));
    }
    for key in [
        "workload",
        "runs",
        "candidates_per_sec",
        "speedup_vs_1",
        "pool",
        "workers",
    ] {
        if !src.contains(&format!("\"{key}\":")) {
            errs.push(format!("missing key {key:?}"));
        }
    }
    if !src.contains("\"deterministic_across_threads\": true") {
        errs.push("deterministic_across_threads is not true".into());
    }
    match json_number(src, "speedup_threads4") {
        Some(s) if s >= MIN_SPEEDUP_T4 => {}
        Some(s) => errs.push(format!(
            "speedup_threads4 {s:.3} below the {MIN_SPEEDUP_T4}x gate"
        )),
        None => errs.push("speedup_threads4 missing or not a number".into()),
    }
    if !src.contains("\"obsv\":") {
        errs.push("missing key \"obsv\"".into());
    }
    match json_number(src, "overhead_pct") {
        Some(o) if o <= MAX_OVERHEAD_PCT => {}
        Some(o) => errs.push(format!(
            "obsv overhead {o:.3}% above the {MAX_OVERHEAD_PCT}% gate"
        )),
        None => errs.push("obsv.overhead_pct missing or not a number".into()),
    }
    for t in THREAD_COUNTS {
        if !src.contains(&format!("\"threads\": {t},")) {
            errs.push(format!("no run entry for threads={t}"));
        }
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--validate requires a file path");
            std::process::exit(2);
        });
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let errs = validate(&src);
        if errs.is_empty() {
            println!("{path}: OK ({SCHEMA})");
            return;
        }
        for e in &errs {
            eprintln!("{path}: FAIL: {e}");
        }
        std::process::exit(1);
    }

    let w = if args.iter().any(|a| a == "--quick") {
        Workload::quick()
    } else {
        Workload::default_scale()
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_engine.json");
    let journal_path = args
        .iter()
        .position(|a| a == "--journal")
        .and_then(|i| args.get(i + 1))
        .cloned();
    gmr_obsv::log::set_level(gmr_obsv::log::level_from_args(&args));

    gmr_obsv::info!(
        "bench_engine: scale={} pop={} gen={} cases={} sleep={}us threads={THREAD_COUNTS:?}",
        w.name,
        w.pop_size,
        w.max_gen,
        w.cases,
        w.sleep_us
    );

    // Overhead arm 1: journal uninstalled — the compiled-in spans cost one
    // relaxed atomic load each. Must run before `gmr_obsv::init`.
    let disabled: Vec<RunResult> = (0..OVERHEAD_REPS).map(|_| run_once(&w, 1)).collect();

    // Everything from here on records into the journal.
    gmr_obsv::init(gmr_obsv::DEFAULT_CAPACITY);
    gmr_obsv::emit(gmr_obsv::Event::Note {
        name: "bench_engine",
        msg: format!(
            "scale={} pop={} gen={} cases={} sleep_us={}",
            w.name, w.pop_size, w.max_gen, w.cases, w.sleep_us
        ),
    });

    // Overhead arm 2: same threads=1 workload with the journal recording.
    let enabled_t1: Vec<RunResult> = (0..OVERHEAD_REPS).map(|_| run_once(&w, 1)).collect();
    let best_cps = |rs: &[RunResult]| {
        rs.iter()
            .map(RunResult::candidates_per_sec)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let disabled_cps = best_cps(&disabled);
    let enabled_cps = best_cps(&enabled_t1);
    let overhead_pct = 100.0 * (disabled_cps / enabled_cps - 1.0);

    let mut runs: Vec<RunResult> = Vec::with_capacity(THREAD_COUNTS.len());
    for &t in &THREAD_COUNTS {
        if t == 1 {
            // Reuse the faster journal-on threads=1 run as the baseline row.
            let best = enabled_t1
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.candidates_per_sec().total_cmp(&b.candidates_per_sec()))
                .map(|(i, _)| i)
                .unwrap_or(0);
            runs.push(enabled_t1[best].clone());
        } else {
            runs.push(run_once(&w, t));
        }
    }

    // The determinism contract covers the obsv switch too: journal-off and
    // journal-on runs at every thread count must agree bit for bit.
    let deterministic = runs
        .iter()
        .chain(&disabled)
        .chain(&enabled_t1)
        .all(|r| r.trajectory == runs[0].trajectory);
    let base = runs[0].candidates_per_sec();
    let speedup_t4 = runs
        .iter()
        .find(|r| r.threads == 4)
        .map(|r| r.candidates_per_sec() / base)
        .unwrap_or(0.0);

    for r in &runs {
        gmr_obsv::info!(
            "  threads={}: {:.1} ms wall, {} candidates ({:.1}/s, {:.2}x), {} steals, {:.1} ms idle",
            r.threads,
            ms(r.wall),
            r.candidates,
            r.candidates_per_sec(),
            r.candidates_per_sec() / base,
            r.pool.total_steals(),
            ms(r.pool.total_idle()),
        );
    }
    gmr_obsv::info!(
        "  obsv overhead at threads=1: {overhead_pct:+.2}% ({disabled_cps:.1}/s off, {enabled_cps:.1}/s on)"
    );
    if !deterministic {
        gmr_obsv::warn!("FAIL: fitness trajectories diverged across thread counts / obsv");
    }

    let (journal_events, journal_dropped) = gmr_obsv::global()
        .map(|j| (j.len(), j.dropped()))
        .unwrap_or((0, 0));
    let obsv = ObsvSection {
        overhead_pct,
        disabled_cps,
        enabled_cps,
        journal_events,
        journal_dropped,
    };
    let json = render_json(&w, &runs, deterministic, speedup_t4, &obsv);
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    gmr_obsv::info!("wrote {out_path} (speedup_threads4 = {speedup_t4:.2}x)");

    if let Some(path) = &journal_path {
        match gmr_obsv::write_jsonl(path) {
            Ok(()) => gmr_obsv::info!("wrote journal {path} ({journal_events} events)"),
            Err(e) => {
                eprintln!("cannot write journal {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let errs = validate(&json);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("FAIL: {e}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_run(threads: usize) -> RunResult {
        RunResult {
            threads,
            wall: Duration::from_millis(100),
            candidates: 960 * threads as u64,
            evaluations: 800,
            short_circuited: 120,
            cache_hits: 40,
            cache_misses: 760,
            pheno_builds: 700,
            pheno_reuses: 260,
            compiles: 700,
            pool: PoolStats {
                workers: (0..threads)
                    .map(|worker| gmr_gp::WorkerStats {
                        worker,
                        candidates: 960,
                        claims: 12,
                        steals: 2,
                        ..Default::default()
                    })
                    .collect(),
                rounds: 24,
            },
            trajectory: vec![1.0f64.to_bits(); 6],
        }
    }

    #[test]
    fn rendered_json_strict_reparses_and_validates() {
        let runs: Vec<RunResult> = THREAD_COUNTS.iter().map(|&t| tiny_run(t)).collect();
        let obsv = ObsvSection {
            overhead_pct: 0.4,
            disabled_cps: 9600.0,
            enabled_cps: 9560.0,
            journal_events: 512,
            journal_dropped: 0,
        };
        let json = render_json(&Workload::quick(), &runs, true, 3.2, &obsv);
        gmr_json::parse(&json).expect("strict parse");
        assert_eq!(validate(&json), Vec::<String>::new());
        assert!(validate("{\"schema\": ")
            .iter()
            .any(|e| e.contains("not strict JSON")));
    }
}
