//! Figure 10: mean runtime per individual under each combination of the
//! three §III-D speed-up techniques — Tree Caching (TC), Evaluation
//! Short-circuiting (ES) and Runtime Compilation (RC).
//!
//! Usage: `cargo run --release -p gmr-bench --bin exp_fig10 [--quick|--full]`
//!
//! Methodology: a *fixed* evaluation workload is generated once — a pool of
//! random revisions plus repeated draws from it, mimicking the revisit
//! pattern a GP population produces (elites, replication, cache-able
//! re-evaluations) — and every combination evaluates the identical sequence
//! single-threaded. ES uses the paper's running-RMSE surrogate with
//! threshold 1.0, with the baseline forming naturally as the sequence
//! progresses. Absolute speed-ups depend on workload size (the paper
//! reports 607× at full scale on an 80-core server); the reproduced shape
//! is each technique helping and the three composing.

use gmr_bench::table::render_kv;
use gmr_bench::{cli, dataset, Scale};
use gmr_core::{river_priors, Gmr, RiverEvaluator};
use gmr_gp::short_circuit::Extrapolate;
use gmr_gp::{Engine, GpConfig};
use gmr_tag::DerivTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Combo {
    label: &'static str,
    tc: bool,
    es: bool,
    rc: bool,
}

const COMBOS: [Combo; 8] = [
    Combo {
        label: "None",
        tc: false,
        es: false,
        rc: false,
    },
    Combo {
        label: "TC",
        tc: true,
        es: false,
        rc: false,
    },
    Combo {
        label: "ES",
        tc: false,
        es: true,
        rc: false,
    },
    Combo {
        label: "RC",
        tc: false,
        es: false,
        rc: true,
    },
    Combo {
        label: "TC+ES",
        tc: true,
        es: true,
        rc: false,
    },
    Combo {
        label: "TC+RC",
        tc: true,
        es: false,
        rc: true,
    },
    Combo {
        label: "ES+RC",
        tc: false,
        es: true,
        rc: true,
    },
    Combo {
        label: "TC+ES+RC",
        tc: true,
        es: true,
        rc: true,
    },
];

fn main() {
    let obsv = cli::init_obsv();
    let scale = Scale::from_args();
    gmr_obsv::info!("scale: {} (use --quick / --full to change)", scale.name);
    let ds = dataset(&scale);
    let gmr = Gmr::new(&ds);
    let evaluator = RiverEvaluator::new(gmr.train.clone());

    // ---- Fixed workload: unique pool + GP-style revisits. ----
    let pool_size = scale.gmr_pop.max(60);
    let workload_len = pool_size * 6;
    let mut rng = StdRng::seed_from_u64(0xF16);
    let pool: Vec<DerivTree> = (0..pool_size)
        .map(|_| gmr.grammar.grammar.random_tree(&mut rng, 2, 50))
        .collect();
    let workload: Vec<&DerivTree> = (0..workload_len)
        .map(|i| {
            if i < pool_size || rng.gen_bool(0.6) {
                // First pass visits everything once; afterwards 60% fresh…
                &pool[i % pool_size]
            } else {
                // …and 40% revisits of an earlier individual (elites,
                // replication, re-converged structures).
                &pool[rng.gen_range(0..pool_size)]
            }
        })
        .collect();
    gmr_obsv::info!(
        "workload: {} evaluations over {} unique individuals, {} fitness cases each",
        workload.len(),
        pool_size,
        gmr.train.num_cases()
    );

    let mut rows: Vec<(String, String)> = Vec::new();
    let mut baseline_per_ind = None;
    println!("\n=== Figure 10: mean runtime per individual ===");
    for combo in &COMBOS {
        let cfg = GpConfig {
            use_cache: combo.tc,
            es_threshold: combo.es.then_some(1.0),
            extrapolate: Extrapolate::RunningRmse,
            use_compiled: combo.rc,
            threads: 1,
            ..GpConfig::default()
        };
        let engine = Engine::new(&gmr.grammar.grammar, &evaluator, river_priors(), cfg);
        let t0 = Instant::now();
        let mut checksum = 0.0f64;
        for tree in &workload {
            let (f, _) = engine.evaluate_tree(tree);
            if f.is_finite() {
                checksum += f.min(1e6);
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let per_ind = elapsed / workload.len() as f64;
        let speedup = match baseline_per_ind {
            None => {
                baseline_per_ind = Some(per_ind);
                1.0
            }
            Some(b) => b / per_ind,
        };
        rows.push((
            combo.label.to_string(),
            format!("{:>10.3} ms/ind   {:>7.1}x speedup", 1e3 * per_ind, speedup),
        ));
        gmr_obsv::info!(
            "{}: {:.3} ms/ind (checksum {:.1})",
            combo.label,
            1e3 * per_ind,
            checksum
        );
    }
    print!("{}", render_kv("speedup combinations", &rows));
    println!(
        "\nNote: absolute speed-ups depend on workload size and hardware; the paper\n\
         reports 607x for TC+ES+RC at full scale on an 80-core server. The shape —\n\
         every technique helps, the three compose — is what this reproduces."
    );
    cli::finish_obsv(&obsv);
}
