//! Scenario-engine benchmark: one `/sweep` request fanning into hundreds
//! of jittered forcing variants versus the same variants issued as solo
//! `/simulate` requests, emitted as machine-readable JSON
//! (`gmr-bench-scenario/v1`).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p gmr-bench --bin bench_scenario -- [--quick] [--out PATH]
//! cargo run --release -p gmr-bench --bin bench_scenario -- --cluster --backends 2 --quick
//! cargo run --release -p gmr-bench --bin bench_scenario -- --validate PATH
//! ```
//!
//! **Sweep section** (`--sweep`, or default): one in-process `gmr-serve`
//! server admits a generated `gmr-scenario/v1` spec (braided topology,
//! climate transforms, one dam control), then two phases run the same
//! 256-variant what-if study end to end — each must produce all 256
//! [`SweepSummary`] records:
//!
//! * `solo` — one keep-alive connection issues 256 full-series
//!   `/simulate` requests, one per `scn:<name>/<variant>` ref, and
//!   reduces each returned trajectory client-side (a summary needs the
//!   whole daily path — peak day and exceedance counting cannot be had
//!   from a final-state response);
//! * `sweep` — a single `POST /sweep` covers all 256 variants through
//!   the batched ensemble lanes, with each trajectory reduced online
//!   server-side so no series is ever rendered or shipped.
//!
//! The gate is `sweep_speedup >= 4`: aggregate variant throughput of the
//! sweep over the solo baseline. Alongside the throughput gate, every
//! variant's sweep summary must be **bit-identical** to the summary the
//! solo phase reduced from that variant's trajectory (floats having
//! round-tripped through JSON text both ways).
//!
//! **Cluster section** (`--cluster`, or default): real backend processes
//! behind the consistent-hash gateway. The spec is admitted once through
//! the gateway — which must broadcast it to *every* backend, because a
//! sweep and its variants' solo refs hash to different ring keys — and
//! the same per-variant bit-identity contract is enforced end to end
//! through gateway routing, including re-admission idempotency and the
//! fleet-wide `409` on a mutated spec.
//!
//! `--validate` re-opens an emitted file and enforces every gate above
//! on whichever sections are present (at least one must be).

use gmr_json::Value;
use gmr_scenario::{reduce_series, ReduceSpec, SweepSummary};
use gmr_serve::batch::Tables;
use gmr_serve::server::Client;
use gmr_serve::{
    Cluster, ClusterConfig, Gateway, GatewayConfig, GatewayHandle, ModelArtifact, ModelRegistry,
    Server, ServerConfig,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const SCHEMA: &str = "gmr-bench-scenario/v1";
/// Aggregate-throughput floor: the sweep must beat 256 solo requests by
/// at least this factor. The win comes from collapsing 256 HTTP
/// round-trips and response renderings into one request whose variants
/// step through shared ensemble lanes with online reduction.
const MIN_SWEEP_SPEEDUP: f64 = 4.0;
/// The issue-level sweep width; `--quick` keeps it (the gate names it)
/// and trims only repetitions and the cluster section.
const SWEEP_VARIANTS: u32 = 256;
const MODEL: &str = "table5-manual";
const THRESHOLD: f64 = 22.5;

// ---------------------------------------------------------------- spec --

/// A deterministic bench scenario: braided topology with climate
/// transforms, plus one dam sited on the last physical non-outlet
/// station — the same construction `gmr-serve scenario-spec` performs,
/// so the bench exercises exactly the spec shape the CLI emits.
fn bench_spec(name: &str, stations: usize) -> String {
    let skeleton = format!(
        r#"{{"schema": "{}", "name": "{name}", "seed": 42,
  "topology": {{"kind": "braided", "stations": {stations}}},
  "years": 1,
  "climate": [{{"kind": "monsoon_shift", "days": 10}},
              {{"kind": "heatwave", "start_day": 185, "length": 15, "amp": 3}},
              {{"kind": "drought", "scale": 0.85}}],
  "spread": 0.25}}"#,
        gmr_scenario::SCHEMA
    );
    let mut spec = gmr_scenario::parse_spec(&skeleton).expect("bench skeleton parses");
    let (net, _envs) = gmr_scenario::topology::build_topology(&spec);
    let outlet = net.outlet();
    let dam_station = net
        .stations()
        .filter(|(sid, st)| *sid != outlet && st.kind != gmr_hydro::StationKind::Virtual)
        .map(|(_, st)| st.name.clone())
        .last()
        .expect("a physical station exists");
    spec.transforms
        .push(gmr_scenario::Transform::Dam(gmr_scenario::DamSpec {
            station: dam_station,
            capacity: 200_000.0,
            release: vec![0.6; 12],
            overflow: 0.75,
        }));
    gmr_scenario::render_spec(&spec)
}

fn sweep_body(scenario: &str, variants: u32) -> String {
    format!(
        r#"{{"scenario": "{scenario}", "model": "{MODEL}", "variants": {variants}, "reduce": {{"threshold": {THRESHOLD}}}}}"#
    )
}

/// Full-series solo request for one variant's `scn:` ref. Init is
/// omitted on purpose: `/simulate` and `/sweep` share the same default,
/// which keeps the two phases simulating identical trajectories.
fn solo_series_body(scenario: &str, variant: u32) -> String {
    format!(r#"{{"model": "{MODEL}", "forcings_ref": "scn:{scenario}/{variant}"}}"#)
}

/// One solo step of the what-if study: fetch the variant's full
/// trajectory and reduce it client-side to the same summary a sweep
/// produces. `None` on any transport, status, or shape failure.
fn solo_variant_summary(client: &mut Client, scenario: &str, variant: u32) -> Option<SweepSummary> {
    let body = solo_series_body(scenario, variant);
    let resp = client.request("POST", "/simulate", body.as_bytes()).ok()?;
    if resp.status != 200 {
        return None;
    }
    let v = gmr_json::parse(std::str::from_utf8(&resp.body).ok()?).ok()?;
    let series = |key: &str| -> Option<Vec<f64>> {
        v.get(key)
            .and_then(Value::as_arr)
            .map(|a| a.iter().filter_map(Value::as_f64).collect())
    };
    let (bphy, bzoo) = (series("bphy")?, series("bzoo")?);
    let reduce = ReduceSpec {
        threshold: THRESHOLD,
    };
    Some(reduce_series(variant, &reduce, &bphy, &bzoo))
}

// ------------------------------------------------------------- helpers --

/// Admit a spec and return the compiled scenario's day count.
fn admit(addr: SocketAddr, spec: &str) -> Result<u64, String> {
    let mut client = Client::new(addr);
    let resp = client
        .request("POST", "/scenarios", spec.as_bytes())
        .map_err(|e| format!("admission transport: {e}"))?;
    let body = String::from_utf8_lossy(&resp.body).into_owned();
    if resp.status != 200 {
        return Err(format!("admission failed: {} {body}", resp.status));
    }
    let v = gmr_json::parse(&body).map_err(|e| format!("admission body: {e}"))?;
    v.get("days")
        .and_then(Value::as_u64)
        .ok_or_else(|| "admission body carries no days".into())
}

/// Parse a `/sweep` response body into its per-variant summaries.
fn parse_summaries(body: &[u8]) -> Option<Vec<SweepSummary>> {
    let v = gmr_json::parse(std::str::from_utf8(body).ok()?).ok()?;
    v.get("summaries")
        .and_then(Value::as_arr)?
        .iter()
        .map(SweepSummary::from_value)
        .collect()
}

/// Re-derive one variant's summary from a full-series solo `/simulate`
/// of its `scn:` ref, and demand bitwise agreement with the sweep's.
/// Returns false on any transport/shape mismatch or float divergence.
fn variant_agrees(addr: SocketAddr, scenario: &str, variant: u32, got: &SweepSummary) -> bool {
    let mut client = Client::new(addr);
    solo_variant_summary(&mut client, scenario, variant).as_ref() == Some(got)
}

// ---------------------------------------------------------------- sweep --

struct SweepBench {
    variants: u32,
    days: u64,
    solo_secs: f64,
    sweep_secs: f64,
    bit_identical: bool,
    errors: u64,
}

impl SweepBench {
    fn solo_rps(&self) -> f64 {
        self.variants as f64 / self.solo_secs
    }
    fn sweep_rps(&self) -> f64 {
        self.variants as f64 / self.sweep_secs
    }
    fn speedup(&self) -> f64 {
        self.sweep_rps() / self.solo_rps()
    }
}

fn sweep_bench(quick: bool) -> SweepBench {
    let reps = if quick { 3 } else { 5 };
    let mut registry = ModelRegistry::new();
    registry
        .insert(ModelArtifact::builtin_manual())
        .expect("builtin admits");
    let config = ServerConfig {
        workers: 4,
        batch_window: Duration::ZERO,
        ..ServerConfig::default()
    };
    let handle = Server::new(config, registry, Tables::new())
        .start()
        .expect("start");
    let addr = handle.addr();

    let scenario = "bench-what-if";
    let days = admit(addr, &bench_spec(scenario, 16)).expect("bench scenario admits");
    let mut errors = 0u64;

    // Warm-up both paths (materialisation, prefix cache, connections).
    let mut client = Client::new(addr);
    for v in 0..4 {
        if solo_variant_summary(&mut client, scenario, v).is_none() {
            errors += 1;
        }
    }
    let warm = sweep_body(scenario, 8);
    if !matches!(client.request("POST", "/sweep", warm.as_bytes()), Ok(r) if r.status == 200) {
        errors += 1;
    }

    // Phase 1: the what-if study as 256 solo requests + client-side
    // reduction, best-of-`reps` on one keep-alive connection. The last
    // rep's summaries are the bit-identity reference.
    let mut solo_secs = f64::INFINITY;
    let mut solo_summaries: Vec<SweepSummary> = Vec::new();
    for _ in 0..reps.min(3) {
        let mut summaries = Vec::with_capacity(SWEEP_VARIANTS as usize);
        let t0 = Instant::now();
        for v in 0..SWEEP_VARIANTS {
            match solo_variant_summary(&mut client, scenario, v) {
                Some(s) => summaries.push(s),
                None => errors += 1,
            }
        }
        solo_secs = solo_secs.min(t0.elapsed().as_secs_f64());
        solo_summaries = summaries;
    }

    // Phase 2: the same study as one `/sweep`, best-of-`reps`. The
    // response is deterministic, so keeping the last body is safe.
    let body = sweep_body(scenario, SWEEP_VARIANTS);
    let mut sweep_secs = f64::INFINITY;
    let mut sweep_bytes = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        match client.request("POST", "/sweep", body.as_bytes()) {
            Ok(r) if r.status == 200 => sweep_bytes = r.body,
            _ => errors += 1,
        }
        sweep_secs = sweep_secs.min(t0.elapsed().as_secs_f64());
    }

    // Bit-identity: the sweep's 256 summaries must equal the solo
    // phase's client-side reductions element-wise, and the jitter must
    // actually spread the variants (all-equal means it is broken).
    let bit_identical = match parse_summaries(&sweep_bytes) {
        Some(s) if s.len() == SWEEP_VARIANTS as usize => {
            s == solo_summaries && s.windows(2).any(|w| w[0] != w[1])
        }
        _ => false,
    };
    handle.shutdown();

    SweepBench {
        variants: SWEEP_VARIANTS,
        days,
        solo_secs,
        sweep_secs,
        bit_identical,
        errors,
    }
}

// -------------------------------------------------------------- cluster --

struct ClusterBench {
    backends: usize,
    variants: u32,
    days: u64,
    broadcast_ok: bool,
    bit_identical: bool,
    errors: u64,
}

fn start_cluster(serve_bin: &Path, dir: PathBuf, backends: usize) -> (Cluster, GatewayHandle) {
    let mut config = ClusterConfig::new(backends, serve_bin.to_path_buf(), dir);
    config.backend_args = vec![
        "--days".into(),
        "365".into(),
        // Capacity rule: backend workers must exceed the gateway's.
        "--workers".into(),
        (GatewayConfig::default().workers + 2).to_string(),
        "--window-ms".into(),
        "0".into(),
    ];
    let cluster = Cluster::start(config).expect("cluster must start");
    let gateway = Gateway::new(GatewayConfig::default(), cluster.slots())
        .start()
        .expect("gateway must bind");
    (cluster, gateway)
}

fn cluster_bench(quick: bool, backends: usize, serve_bin: &Path) -> ClusterBench {
    assert!(backends >= 2, "--backends must be at least 2");
    let variants: u32 = if quick { 16 } else { 64 };
    let scratch = std::env::temp_dir().join(format!("gmr-bench-scenario-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let (cluster, gateway) = start_cluster(serve_bin, scratch.clone(), backends);
    let addr = gateway.addr();
    let mut errors = 0u64;

    let scenario = "bench-cluster";
    let spec = bench_spec(scenario, 12);
    let days = admit(addr, &spec).unwrap_or_else(|e| {
        errors += 1;
        eprintln!("  cluster admission failed: {e}");
        0
    });

    // The gateway must have broadcast the admission to every backend —
    // sweep and solo-variant keys hash differently, so any backend may
    // be asked to serve this scenario.
    let mut broadcast_ok = days > 0;
    for slot in cluster.slots().iter() {
        let Some(backend) = slot.addr() else {
            broadcast_ok = false;
            continue;
        };
        let mut probe = Client::new(backend);
        match probe.request("GET", "/scenarios", b"") {
            Ok(r) if r.status == 200 => {
                if !String::from_utf8_lossy(&r.body).contains(scenario) {
                    broadcast_ok = false;
                }
            }
            _ => broadcast_ok = false,
        }
    }
    // Re-admission is an idempotent broadcast; a mutated spec under the
    // same name is refused fleet-wide.
    let mut client = Client::new(addr);
    if !matches!(client.request("POST", "/scenarios", spec.as_bytes()), Ok(r) if r.status == 200) {
        errors += 1;
    }
    let mutated = spec.replace("\"seed\": 42", "\"seed\": 43");
    if !matches!(client.request("POST", "/scenarios", mutated.as_bytes()), Ok(r) if r.status == 409)
    {
        errors += 1;
    }

    // One sweep through the gateway, then every variant re-derived from
    // a gateway-routed solo trajectory (possibly on another backend).
    let body = sweep_body(scenario, variants);
    let sweep_bytes = match client.request("POST", "/sweep", body.as_bytes()) {
        Ok(r) if r.status == 200 => r.body,
        _ => {
            errors += 1;
            Vec::new()
        }
    };
    let bit_identical = match parse_summaries(&sweep_bytes) {
        Some(s) if s.len() == variants as usize => s
            .iter()
            .enumerate()
            .all(|(v, got)| variant_agrees(addr, scenario, v as u32, got)),
        _ => false,
    };

    gateway.shutdown();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);

    ClusterBench {
        backends,
        variants,
        days,
        broadcast_ok,
        bit_identical,
        errors,
    }
}

// ----------------------------------------------------------- rendering --

fn render_sweep(out: &mut String, r: &SweepBench) {
    out.push_str("  \"sweep\": {\n");
    out.push_str(&format!("    \"model\": \"{MODEL}\",\n"));
    out.push_str(&format!("    \"variants\": {},\n", r.variants));
    out.push_str(&format!("    \"days\": {},\n", r.days));
    out.push_str(&format!("    \"threshold\": {THRESHOLD},\n"));
    out.push_str(&format!(
        "    \"solo\": {{\"requests\": {}, \"secs\": {:.4}, \"rps\": {:.1}}},\n",
        r.variants,
        r.solo_secs,
        r.solo_rps()
    ));
    out.push_str(&format!(
        "    \"swept\": {{\"secs\": {:.4}, \"variants_per_sec\": {:.1}}},\n",
        r.sweep_secs,
        r.sweep_rps()
    ));
    out.push_str(&format!("    \"bit_identical\": {},\n", r.bit_identical));
    out.push_str(&format!("    \"errors\": {},\n", r.errors));
    out.push_str(&format!("    \"speedup_floor\": {MIN_SWEEP_SPEEDUP:.1},\n"));
    out.push_str(&format!("    \"sweep_speedup\": {:.3}\n", r.speedup()));
    out.push_str("  }");
}

fn render_cluster(out: &mut String, r: &ClusterBench) {
    out.push_str("  \"cluster\": {\n");
    out.push_str(&format!("    \"backends\": {},\n", r.backends));
    out.push_str(&format!("    \"variants\": {},\n", r.variants));
    out.push_str(&format!("    \"days\": {},\n", r.days));
    out.push_str(&format!("    \"broadcast_ok\": {},\n", r.broadcast_ok));
    out.push_str(&format!("    \"bit_identical\": {},\n", r.bit_identical));
    out.push_str(&format!("    \"errors\": {}\n", r.errors));
    out.push_str("  }");
}

fn render_json(sweep: Option<&SweepBench>, cluster: Option<&ClusterBench>, quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"scale\": \"{}\"",
        if quick { "quick" } else { "default" }
    ));
    if let Some(r) = sweep {
        out.push_str(",\n");
        render_sweep(&mut out, r);
    }
    if let Some(r) = cluster {
        out.push_str(",\n");
        render_cluster(&mut out, r);
    }
    out.push_str("\n}\n");
    out
}

// ---------------------------------------------------------- validation --

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn validate_sweep(v: &Value, errs: &mut Vec<String>) {
    if v.get("bit_identical").and_then(Value::as_bool) != Some(true) {
        errs.push(
            "sweep: bit_identical is not true — a sweep summary diverged from its solo trajectory"
                .into(),
        );
    }
    match num(v, "errors") {
        Some(0.0) => {}
        Some(e) => errs.push(format!("sweep: {e} failed requests")),
        None => errs.push("sweep: errors missing".into()),
    }
    match num(v, "variants") {
        Some(n) if n >= SWEEP_VARIANTS as f64 => {}
        Some(n) => errs.push(format!(
            "sweep: only {n} variants — the gate names {SWEEP_VARIANTS}"
        )),
        None => errs.push("sweep: variants missing".into()),
    }
    match num(v, "sweep_speedup") {
        Some(s) if s >= MIN_SWEEP_SPEEDUP => {}
        Some(s) => errs.push(format!(
            "sweep: sweep_speedup {s:.3} below the {MIN_SWEEP_SPEEDUP}x gate"
        )),
        None => errs.push("sweep: sweep_speedup missing".into()),
    }
}

fn validate_cluster(v: &Value, errs: &mut Vec<String>) {
    if v.get("broadcast_ok").and_then(Value::as_bool) != Some(true) {
        errs.push("cluster: broadcast_ok is not true — a backend missed the admission".into());
    }
    if v.get("bit_identical").and_then(Value::as_bool) != Some(true) {
        errs.push("cluster: bit_identical is not true — a gateway-routed variant diverged".into());
    }
    match num(v, "errors") {
        Some(0.0) => {}
        Some(e) => errs.push(format!("cluster: {e} failed requests")),
        None => errs.push("cluster: errors missing".into()),
    }
    match num(v, "variants") {
        Some(n) if n >= 1.0 => {}
        _ => errs.push("cluster: variants missing or zero".into()),
    }
}

/// Enforce the acceptance gates on an emitted file. Returns the failures.
/// The document must strict-reparse under `gmr_json` before any gate is
/// read — a truncated or hand-mangled baseline fails loudly.
fn validate(src: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let v = match gmr_json::parse(src) {
        Ok(v) => v,
        Err(e) => return vec![format!("not strict JSON: {e}")],
    };
    if v.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("missing schema tag {SCHEMA:?}"));
    }
    let sweep = v.get("sweep");
    let cluster = v.get("cluster");
    if sweep.is_none() && cluster.is_none() {
        errs.push("neither a sweep nor a cluster section is present".into());
    }
    if let Some(s) = sweep {
        validate_sweep(s, &mut errs);
    }
    if let Some(c) = cluster {
        validate_cluster(c, &mut errs);
    }
    errs
}

// ---------------------------------------------------------------- main --

fn default_serve_bin() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("gmr-serve")))
        .unwrap_or_else(|| PathBuf::from("gmr-serve"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--validate requires a file path");
            std::process::exit(2);
        });
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let errs = validate(&src);
        if errs.is_empty() {
            println!("{path}: OK ({SCHEMA})");
            return;
        }
        for e in &errs {
            eprintln!("{path}: FAIL: {e}");
        }
        std::process::exit(1);
    }

    let quick = args.iter().any(|a| a == "--quick");
    let want_sweep = args.iter().any(|a| a == "--sweep");
    let want_cluster = args.iter().any(|a| a == "--cluster");
    // No section flag selects both (the committed-baseline shape).
    let (want_sweep, want_cluster) = if want_sweep || want_cluster {
        (want_sweep, want_cluster)
    } else {
        (true, true)
    };
    let backends = args
        .iter()
        .position(|a| a == "--backends")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2usize);
    let serve_bin = args
        .iter()
        .position(|a| a == "--serve-bin")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(default_serve_bin);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_scenario.json");

    let sweep = want_sweep.then(|| {
        eprintln!("bench_scenario sweep: {SWEEP_VARIANTS} variants, solo vs one /sweep");
        let r = sweep_bench(quick);
        eprintln!(
            "  solo: {:.1} var/s ({:.3}s) | sweep: {:.1} var/s ({:.3}s) | {:.2}x | bit identical: {}",
            r.solo_rps(),
            r.solo_secs,
            r.sweep_rps(),
            r.sweep_secs,
            r.speedup(),
            r.bit_identical
        );
        r
    });

    let cluster = want_cluster.then(|| {
        if !serve_bin.is_file() {
            eprintln!(
                "bench_scenario: backend binary {} not found — build `-p gmr-serve --release` \
                 first or pass --serve-bin PATH",
                serve_bin.display()
            );
            std::process::exit(2);
        }
        eprintln!("bench_scenario cluster: {backends} backends, broadcast + gateway bit-identity");
        let r = cluster_bench(quick, backends, &serve_bin);
        eprintln!(
            "  {} variants | broadcast ok: {} | bit identical: {} | errors: {}",
            r.variants, r.broadcast_ok, r.bit_identical, r.errors
        );
        r
    });

    let json = render_json(sweep.as_ref(), cluster.as_ref(), quick);
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote {out_path}");

    let errs = validate(&json);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("FAIL: {e}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_result() -> SweepBench {
        SweepBench {
            variants: SWEEP_VARIANTS,
            days: 366,
            solo_secs: 2.0,
            sweep_secs: 0.25,
            bit_identical: true,
            errors: 0,
        }
    }

    fn cluster_result() -> ClusterBench {
        ClusterBench {
            backends: 2,
            variants: 64,
            days: 366,
            broadcast_ok: true,
            bit_identical: true,
            errors: 0,
        }
    }

    #[test]
    fn rendered_json_strict_reparses_and_validates() {
        let json = render_json(Some(&sweep_result()), Some(&cluster_result()), true);
        gmr_json::parse(&json).expect("strict parse");
        assert_eq!(validate(&json), Vec::<String>::new());
        assert!(validate("[1, 2")
            .iter()
            .any(|e| e.contains("not strict JSON")));
        assert!(validate("{\"schema\": \"gmr-bench-scenario/v1\"}")
            .iter()
            .any(|e| e.contains("neither")));
    }

    #[test]
    fn sweep_gates_catch_regressions() {
        // Throughput below the 4x floor.
        let mut r = sweep_result();
        r.sweep_secs = 0.6; // 3.33x
        let json = render_json(Some(&r), None, true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("below the 4x gate")));
        // A diverged summary.
        let mut r = sweep_result();
        r.bit_identical = false;
        let json = render_json(Some(&r), None, true);
        assert!(validate(&json).iter().any(|e| e.contains("diverged")));
        // An undersized sweep cannot satisfy the 256-variant gate.
        let mut r = sweep_result();
        r.variants = 128;
        let json = render_json(Some(&r), None, true);
        assert!(validate(&json).iter().any(|e| e.contains("gate names 256")));
        // Failed requests surface.
        let mut r = sweep_result();
        r.errors = 3;
        let json = render_json(Some(&r), None, true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("3 failed requests")));
    }

    #[test]
    fn cluster_gates_catch_regressions() {
        // A backend that missed the admission broadcast.
        let mut r = cluster_result();
        r.broadcast_ok = false;
        let json = render_json(None, Some(&r), true);
        assert!(validate(&json)
            .iter()
            .any(|e| e.contains("missed the admission")));
        // A gateway-routed variant that diverged.
        let mut r = cluster_result();
        r.bit_identical = false;
        let json = render_json(None, Some(&r), true);
        assert!(validate(&json).iter().any(|e| e.contains("diverged")));
    }

    #[test]
    fn bench_spec_is_deterministic_and_compiles() {
        let a = bench_spec("x", 16);
        assert_eq!(a, bench_spec("x", 16), "spec must be a pure function");
        assert!(
            a.contains("\"dams\"") || a.contains("dam"),
            "dam sited: {a}"
        );
        let spec = gmr_scenario::parse_spec(&a).expect("rendered spec reparses");
        gmr_scenario::compile(&spec).expect("and compiles");
    }
}
