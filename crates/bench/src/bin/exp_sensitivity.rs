//! Robustness of the headline result to the data-generating regime.
//!
//! Usage: `cargo run --release -p gmr-bench --bin exp_sensitivity [--quick]`
//!
//! The paper's claim — knowledge-guided revision beats pure calibration —
//! is evaluated here on a *synthetic* river (see DESIGN.md). This
//! experiment checks the claim is not an artifact of one generator setting:
//! it sweeps the observation-noise level and the latent (unobservable)
//! process-noise level, and re-measures GMR against the strongest single
//! calibration baseline (SCE-UA) on each regenerated world.
//!
//! Expected shape: the margin narrows as noise grows (everyone approaches
//! the noise floor) but the *ordering* — revision ≤ calibration on test
//! RMSE — holds across the sweep.

use gmr_baselines::calibrators::SceUa;
use gmr_baselines::objective::CalibrationProblem;
use gmr_baselines::Calibrator;
use gmr_bench::cli;
use gmr_bio::RiverProblem;
use gmr_core::{Gmr, GmrConfig};
use gmr_hydro::{generate, SyntheticConfig};

fn main() {
    let obsv = cli::init_obsv();
    let quick = std::env::args().any(|a| a == "--quick");
    let (end_year, train_end, runs, budget) = if quick {
        (1999, 1998, 2, 400)
    } else {
        (2008, 2005, 3, 2500)
    };

    let cells: [(&str, f64, f64); 4] = [
        ("baseline", 0.10, 0.07),
        ("low-noise", 0.05, 0.03),
        ("noisy-obs", 0.25, 0.07),
        ("wild-latent", 0.10, 0.15),
    ];

    println!("\n=== Sensitivity of the revision-vs-calibration margin ===");
    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>14} {:>10}",
        "Regime", "obs sd", "proc sd", "GMR test", "SCE-UA test", "margin"
    );
    for (label, obs, proc) in cells {
        gmr_obsv::info!("regime {label}…");
        let ds = generate(&SyntheticConfig {
            end_year,
            train_end_year: train_end,
            obs_noise: obs,
            process_noise: proc,
            ..SyntheticConfig::default()
        });
        let gmr = Gmr::new(&ds);
        let mut gp = gmr_gp::GpConfig {
            pop_size: if quick { 24 } else { 80 },
            max_gen: if quick { 8 } else { 40 },
            local_search_steps: 2,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 7,
            ..gmr_gp::GpConfig::default()
        };
        gp.sigma_ramp_last = (gp.max_gen / 5).max(1);
        let mut results = gmr.run_many(&GmrConfig {
            gp,
            runs,
            ..GmrConfig::default()
        });
        results.sort_by(|a, b| a.test_rmse.total_cmp(&b.test_rmse));
        let gmr_test = results[0].test_rmse;
        cli::write_report(
            &format!("sensitivity-{}", cli::slug(label)),
            &results[0].report,
        );

        let train = RiverProblem::from_dataset(&ds, ds.train);
        let test = RiverProblem::from_dataset(&ds, ds.test);
        let cp = CalibrationProblem::new(train);
        let out = SceUa::default().calibrate(&cp, budget, 7);
        let cal_test = test.rmse(&cp.instantiate(&out.theta));

        println!(
            "{:<12} {:>9.2} {:>9.2} {:>12.3} {:>14.3} {:>9.1}%",
            label,
            obs,
            proc,
            gmr_test,
            cal_test,
            100.0 * (cal_test - gmr_test) / cal_test
        );
    }
    println!(
        "\nmargin = how much lower GMR's test RMSE is than the calibrated\n\
         expert model's; positive across the sweep = the headline ordering\n\
         is not an artifact of one generator configuration."
    );
    cli::finish_obsv(&obsv);
}
