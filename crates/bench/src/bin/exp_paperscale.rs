//! GMR at the paper's Appendix B engine settings (population 200,
//! 100 generations, 5 local-search steps), with a configurable number of
//! independent runs — the paper uses 60; pass `--runs N` (default 8).
//!
//! Usage: `cargo run --release -p gmr-bench --bin exp_paperscale -- [--runs N]`

use gmr_bench::{cli, dataset, Scale};
use gmr_core::{Gmr, GmrConfig};
use gmr_gp::GpConfig;

fn main() {
    let obsv = cli::init_obsv();
    let args: Vec<String> = std::env::args().collect();
    let runs = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8);

    let scale = Scale::default_scale();
    let ds = dataset(&scale);
    let gmr = Gmr::new(&ds);

    let gp = GpConfig {
        pop_size: 200,
        max_gen: 100,
        local_search_steps: 5,
        sigma_ramp_last: 20,
        threads: scale.threads,
        seed: 20260708,
        ..GpConfig::default()
    };
    gmr_obsv::info!(
        "paper-scale GMR: pop {} × gen {} × LS {} × {} runs (paper: 60 runs)",
        gp.pop_size,
        gp.max_gen,
        gp.local_search_steps,
        runs
    );
    let t0 = std::time::Instant::now();
    let mut results = gmr.run_many(&GmrConfig {
        gp,
        runs,
        ..GmrConfig::default()
    });
    results.sort_by(|a, b| a.test_rmse.total_cmp(&b.test_rmse));

    println!("\n=== GMR at paper engine settings ({runs} runs) ===");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "run", "train RMSE", "train MAE", "test RMSE", "test MAE", "size", "evals"
    );
    for (i, r) in results.iter().enumerate() {
        println!(
            "{:>4} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>8} {:>10}",
            i + 1,
            r.train_rmse,
            r.train_mae,
            r.test_rmse,
            r.test_mae,
            r.tree.size(),
            r.report.evaluations
        );
    }
    let best = &results[0];
    println!(
        "\nbest (paper protocol, smallest test RMSE): train {:.3}/{:.3}, test {:.3}/{:.3}",
        best.train_rmse, best.train_mae, best.test_rmse, best.test_mae
    );
    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
    println!("\n=== Best revised model ===");
    print!("{}", best.render(&gmr.grammar));
    cli::write_report("paperscale", &best.report);
    cli::write_artifact("paperscale", best, 20260708);
    cli::finish_obsv(&obsv);
}
