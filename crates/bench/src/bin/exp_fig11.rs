//! Figure 11: effect of the evaluation short-circuiting threshold.
//!
//! Usage: `cargo run --release -p gmr-bench --bin exp_fig11 [--quick|--full]`
//!
//! Runs the same GMR search under five ES settings — disabled, the
//! production default (optimistic extrapolation, threshold 1.0), and the
//! paper's eager running-RMSE surrogate at thresholds 0.7 / 1.0 / 1.3 —
//! reporting the figure's four quantities relative to the default: number
//! of evaluated time steps, train RMSE, test RMSE, and the fraction of the
//! best models that were fully evaluated.
//!
//! Reproduction note (see EXPERIMENTS.md): at the paper's 7.2M-evaluation
//! budget the eager surrogate is reported as accuracy-neutral; at laptop
//! budgets it is not — candidates whose running RMSE spikes transiently are
//! mis-scored and the search stalls. The optimistic projection keeps almost
//! all of the step savings without that bias, which is why it is the
//! library default.

use gmr_bench::{cli, dataset, Scale};
use gmr_core::{Gmr, GmrConfig};
use gmr_gp::short_circuit::Extrapolate;

struct Row {
    label: &'static str,
    steps: f64,
    train: f64,
    test: f64,
    full_frac: f64,
}

fn main() {
    let obsv = cli::init_obsv();
    let scale = Scale::from_args();
    gmr_obsv::info!("scale: {} (use --quick / --full to change)", scale.name);
    let ds = dataset(&scale);
    let gmr = Gmr::new(&ds);

    let settings: [(&'static str, Option<f64>, Extrapolate); 5] = [
        ("No ES", None, Extrapolate::Optimistic),
        ("ES opt-1.0", Some(1.0), Extrapolate::Optimistic),
        ("ES TH-0.7", Some(0.7), Extrapolate::RunningRmse),
        ("ES TH-1.0", Some(1.0), Extrapolate::RunningRmse),
        ("ES TH-1.3", Some(1.3), Extrapolate::RunningRmse),
    ];

    let mut rows = Vec::new();
    for (label, th, extrapolate) in settings {
        gmr_obsv::info!("running {label}…");
        let mut gp = scale.gp_config(4242);
        gp.es_threshold = th;
        gp.extrapolate = extrapolate;
        let cfg = GmrConfig {
            gp,
            runs: scale.gmr_runs.clamp(1, 4),
            ..GmrConfig::default()
        };
        let results = gmr.run_many(&cfg);
        let n = results.len() as f64;
        let steps = results
            .iter()
            .map(|r| r.report.evaluated_steps as f64)
            .sum::<f64>()
            / n;
        let train = results.iter().map(|r| r.train_rmse).sum::<f64>() / n;
        let test = results.iter().map(|r| r.test_rmse).sum::<f64>() / n;
        let full_frac = results
            .iter()
            .map(|r| r.report.top_full_fraction)
            .sum::<f64>()
            / n;
        if let Some(best) = results
            .iter()
            .min_by(|a, b| a.test_rmse.total_cmp(&b.test_rmse))
        {
            cli::write_report(
                &format!("fig11-{}-{}", scale.name, cli::slug(label)),
                &best.report,
            );
        }
        rows.push(Row {
            label,
            steps,
            train,
            test,
            full_frac,
        });
    }

    let reference = rows
        .iter()
        .find(|r| r.label == "ES opt-1.0")
        .expect("reference present");
    let (rs, rtr, rte) = (reference.steps, reference.train, reference.test);

    println!("\n=== Figure 11: evaluation short-circuiting (relative to ES opt-1.0) ===");
    println!(
        "{:<11} {:>16} {:>13} {:>13} {:>18}",
        "Setting", "# Eval. steps", "RMSE (train)", "RMSE (test)", "% fully eval. best"
    );
    for r in &rows {
        println!(
            "{:<11} {:>15.3}x {:>12.3}x {:>12.3}x {:>17.1}%",
            r.label,
            r.steps / rs,
            r.train / rtr,
            r.test / rte,
            100.0 * r.full_frac
        );
    }
    println!(
        "\nAbsolute reference (ES opt-1.0): {:.0} steps, train RMSE {:.3}, test RMSE {:.3}, {:.0}% of best fully evaluated",
        rs,
        rtr,
        rte,
        100.0 * reference.full_frac
    );
    println!(
        "\nExpected shape: ES saves evaluated time steps; eager running-RMSE\n\
         thresholds save more steps at an accuracy cost (substantial at laptop\n\
         budgets — see the reproduction note in EXPERIMENTS.md); nearly 100%\n\
         of the best models are fully evaluated."
    );
    cli::finish_obsv(&obsv);
}
