//! Figure 9 + the §IV-E case study: variable selectivity among the best
//! models, perturbation-based correlation signs, and the revisions GMR
//! actually made (cf. eqs. 7–8).
//!
//! Usage: `cargo run --release -p gmr-bench --bin exp_fig9 [--quick|--full]`

use gmr_bench::{cli, dataset, Scale};
use gmr_bio::RiverProblem;
use gmr_core::{extension_usage, perturb_correlation, selectivity, Correlation, Gmr, GmrConfig};
use gmr_hydro::vars::{self, VALK, VCD, VDO, VLGT, VPH, VTMP};

fn main() {
    let obsv = cli::init_obsv();
    let scale = Scale::from_args();
    gmr_obsv::info!("scale: {} (use --quick / --full to change)", scale.name);
    let ds = dataset(&scale);
    let gmr = Gmr::new(&ds);

    // The paper analyses the 50 best models from its 60 runs; we analyse
    // however many finalists the scale affords.
    let runs = scale.gmr_runs.max(2);
    gmr_obsv::info!("running GMR {} times…", runs);
    let cfg = GmrConfig {
        gp: scale.gp_config(909),
        runs,
        ..GmrConfig::default()
    };
    let results = gmr.run_many(&cfg);
    let keep = results.len().min(50);
    let finalists = &results[..keep];

    let models: Vec<Vec<gmr_expr::Expr>> = finalists.iter().map(|r| r.equations.clone()).collect();
    let fig9_vars = [VLGT, VTMP, VPH, VALK, VCD, VDO];
    let sel = selectivity(&models, &fig9_vars);

    let train = RiverProblem::from_dataset(&ds, ds.train);
    println!("\n=== Figure 9: selectivity among the {keep} best models ===");
    println!("{:<6} {:>12} {:>16}", "Var", "Selected %", "Correlation");
    for (v, s) in fig9_vars.iter().zip(&sel) {
        // Majority correlation sign across every finalist that uses the
        // variable (as the paper aggregates over its 50 best models).
        let (mut pos, mut neg, mut zero) = (0usize, 0usize, 0usize);
        for r in finalists
            .iter()
            .filter(|r| r.equations.iter().any(|e| e.variables().contains(v)))
        {
            let eqs = [r.equations[0].clone(), r.equations[1].clone()];
            match perturb_correlation(&train, &eqs, *v, 0.10) {
                Correlation::Positive => pos += 1,
                Correlation::Negative => neg += 1,
                Correlation::Uncorrelated => zero += 1,
            }
        }
        let corr_s = if pos + neg + zero == 0 {
            "-".to_string()
        } else if pos >= neg && pos >= zero {
            format!("correlated ({pos}/{})", pos + neg + zero)
        } else if neg >= pos && neg >= zero {
            format!("inversely corr. ({neg}/{})", pos + neg + zero)
        } else {
            format!("uncorrelated ({zero}/{})", pos + neg + zero)
        };
        println!(
            "{:<6} {:>11.1}% {:>22}",
            vars::NAMES[*v as usize],
            s,
            corr_s
        );
    }

    println!("\n=== Case study: revisions in the best model ===");
    let best = &finalists[0];
    println!(
        "train RMSE {:.3}  test RMSE {:.3}  (chromosome size {})",
        best.train_rmse,
        best.test_rmse,
        best.tree.size()
    );
    let usage = extension_usage(&best.tree, &gmr.grammar.grammar);
    if usage.is_empty() {
        println!("no structural revisions (parameters only)");
    } else {
        for (ext, conn, extd) in usage {
            println!("Ext{ext}: {conn} connector(s), {extd} extender(s)");
        }
    }
    print!("{}", best.render(&gmr.grammar));
    println!("\nderivation structure (Fig. 4 view):");
    print!("{}", best.tree.describe(&gmr.grammar.grammar));
    cli::write_report(&format!("fig9-{}", scale.name), &best.report);
    cli::finish_obsv(&obsv);
}
