//! Table V + Figure 1: forecasting accuracy of all fifteen methods.
//!
//! Usage: `cargo run --release -p gmr-bench --bin exp_table5 [--quick|--full]`
//!
//! Reproduces the paper's headline comparison: train (1996–2005) and test
//! (2006–2008) RMSE/MAE for the knowledge-driven, data-driven, calibration
//! and revision method families on the synthetic Nakdong dataset, plus the
//! Fig. 1 margins (GMR vs. runner-up, GMR vs. best calibration).

use gmr_bench::methods::run_all;
use gmr_bench::table::{render_csv, render_fig1, render_table5};
use gmr_bench::{cli, dataset, Scale};

fn main() {
    let obsv = cli::init_obsv();
    let scale = Scale::from_args();
    gmr_obsv::info!("scale: {} (use --quick / --full to change)", scale.name);
    let ds = dataset(&scale);
    gmr_obsv::info!(
        "dataset: {} days over {} stations, train {} days, test {} days",
        ds.days,
        ds.stations.len(),
        ds.train.len(),
        ds.test.len()
    );
    let (rows, finalists) = run_all(&ds, &scale, 20260708);
    println!("\n=== Table V: forecasting accuracy ===");
    print!("{}", render_table5(&rows));
    println!("\n=== Figure 1: margins ===");
    print!("{}", render_fig1(&rows));
    if std::fs::create_dir_all("results").is_ok() {
        let path = format!("results/table5-{}.csv", scale.name);
        if std::fs::write(&path, render_csv(&rows)).is_ok() {
            gmr_obsv::info!("wrote {path}");
        }
    }
    if let Some(best) = finalists.first() {
        cli::write_report(&format!("table5-{}", scale.name), &best.report);
        cli::write_artifact(&format!("table5-{}", scale.name), best, 20260708);
        println!("\n=== Best revised model (GMR) ===");
        let gmr = gmr_core::Gmr::new(&ds);
        print!("{}", best.render(&gmr.grammar));
    }
    cli::finish_obsv(&obsv);
}
