//! Plain-text rendering of experiment tables (the rows the paper reports).

use gmr_baselines::MethodScore;

fn fmt(v: f64) -> String {
    if !v.is_finite() {
        "inf".into()
    } else if v >= 1e6 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Render Table V: train/test RMSE and MAE per method, best test scores
/// marked.
pub fn render_table5(rows: &[MethodScore]) -> String {
    let best_rmse = rows
        .iter()
        .map(|r| r.test_rmse)
        .fold(f64::INFINITY, f64::min);
    let best_mae = rows
        .iter()
        .map(|r| r.test_mae)
        .fold(f64::INFINITY, f64::min);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:<18} {:>12} {:>12} {:>12} {:>12}\n",
        "Class", "Method", "Train RMSE", "Train MAE", "Test RMSE", "Test MAE"
    ));
    out.push_str(&"-".repeat(90));
    out.push('\n');
    for r in rows {
        let mark_rmse = if r.test_rmse == best_rmse { "*" } else { " " };
        let mark_mae = if r.test_mae == best_mae { "*" } else { " " };
        out.push_str(&format!(
            "{:<18} {:<18} {:>12} {:>12} {:>11}{} {:>11}{}\n",
            r.class,
            r.name,
            fmt(r.train_rmse),
            fmt(r.train_mae),
            fmt(r.test_rmse),
            mark_rmse,
            fmt(r.test_mae),
            mark_mae,
        ));
    }
    out
}

/// Render the Fig. 1 summary: best vs. second-best test scores and the
/// model-revision vs. best-calibration gap.
pub fn render_fig1(rows: &[MethodScore]) -> String {
    let mut by_rmse: Vec<&MethodScore> = rows.iter().collect();
    by_rmse.sort_by(|a, b| a.test_rmse.total_cmp(&b.test_rmse));
    let mut by_mae: Vec<&MethodScore> = rows.iter().collect();
    by_mae.sort_by(|a, b| a.test_mae.total_cmp(&b.test_mae));
    let mut out = String::new();
    if by_rmse.len() >= 2 {
        let (a, b) = (by_rmse[0], by_rmse[1]);
        out.push_str(&format!(
            "Test RMSE: best {} ({}), runner-up {} ({}), margin {:.1}%\n",
            a.name,
            fmt(a.test_rmse),
            b.name,
            fmt(b.test_rmse),
            100.0 * (b.test_rmse - a.test_rmse) / b.test_rmse
        ));
        let (a, b) = (by_mae[0], by_mae[1]);
        out.push_str(&format!(
            "Test MAE : best {} ({}), runner-up {} ({}), margin {:.1}%\n",
            a.name,
            fmt(a.test_mae),
            b.name,
            fmt(b.test_mae),
            100.0 * (b.test_mae - a.test_mae) / b.test_mae
        ));
    }
    let best_cal = rows
        .iter()
        .filter(|r| r.class == "Model calibration")
        .map(|r| r.test_mae)
        .fold(f64::INFINITY, f64::min);
    if let Some(gmr) = rows.iter().find(|r| r.name == "GMR") {
        if best_cal.is_finite() {
            out.push_str(&format!(
                "GMR vs best calibration (test MAE): {} vs {} ({:.1}% smaller)\n",
                fmt(gmr.test_mae),
                fmt(best_cal),
                100.0 * (best_cal - gmr.test_mae) / best_cal
            ));
        }
    }
    out
}

/// Render rows as CSV (`class,method,train_rmse,train_mae,test_rmse,
/// test_mae`), for downstream plotting.
pub fn render_csv(rows: &[MethodScore]) -> String {
    let mut out = String::from("class,method,train_rmse,train_mae,test_rmse,test_mae\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.class, r.name, r.train_rmse, r.train_mae, r.test_rmse, r.test_mae
        ));
    }
    out
}

/// A simple aligned key/value block used by the Fig. 10/11 binaries.
pub fn render_kv(title: &str, pairs: &[(String, String)]) -> String {
    let width = pairs.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = format!("== {title} ==\n");
    for (k, v) in pairs {
        out.push_str(&format!("{k:<width$}  {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, class: &str, t: f64) -> MethodScore {
        MethodScore {
            name: name.into(),
            class: class.into(),
            train_rmse: t,
            train_mae: t,
            test_rmse: t,
            test_mae: t,
        }
    }

    #[test]
    fn table_marks_best() {
        let rows = vec![
            row("A", "Model calibration", 2.0),
            row("GMR", "Model revision", 1.0),
        ];
        let t = render_table5(&rows);
        assert!(t.contains("GMR"));
        assert!(t.lines().any(|l| l.contains("GMR") && l.contains('*')));
    }

    #[test]
    fn fig1_reports_margin() {
        let rows = vec![
            row("GGGP", "Model revision", 2.0),
            row("GMR", "Model revision", 1.0),
            row("LHS", "Model calibration", 3.0),
        ];
        let f = render_fig1(&rows);
        assert!(f.contains("best GMR"));
        assert!(f.contains("margin 50.0%"));
        assert!(f.contains("66.7% smaller"));
    }

    #[test]
    fn csv_rows_round_trip_fields() {
        let rows = vec![row("GMR", "Model revision", 1.5)];
        let csv = render_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "class,method,train_rmse,train_mae,test_rmse,test_mae"
        );
        assert_eq!(lines.next().unwrap(), "Model revision,GMR,1.5,1.5,1.5,1.5");
    }

    #[test]
    fn huge_and_infinite_values_render() {
        assert_eq!(fmt(f64::INFINITY), "inf");
        assert!(fmt(2.79e9).contains('e'));
        assert_eq!(fmt(12.3456), "12.346");
    }
}
