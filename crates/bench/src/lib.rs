//! Shared experiment harness for regenerating every table and figure in the
//! paper's evaluation (§IV). Each `src/bin/exp_*.rs` binary drives one
//! experiment; this library holds the common pieces: scale presets, dataset
//! construction, the method roster, and table rendering.
//!
//! Scales: experiments accept `--quick` (seconds; CI smoke), the default
//! (minutes on a laptop), and `--full` (the paper's Appendix B settings —
//! hours). Shapes — method ordering, who wins, roughly by how much — are
//! stable across scales; absolute numbers tighten as the budget grows.

pub mod cli;
pub mod methods;
pub mod table;

use gmr_gp::GpConfig;
use gmr_hydro::{generate, RiverDataset, SyntheticConfig};

/// Budget preset for an experiment run.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Preset name, echoed in output.
    pub name: &'static str,
    /// GMR population size.
    pub gmr_pop: usize,
    /// GMR generations.
    pub gmr_gen: usize,
    /// GMR local-search steps.
    pub gmr_ls: usize,
    /// Independent GMR runs.
    pub gmr_runs: usize,
    /// Evaluation budget per calibration method.
    pub calib_budget: usize,
    /// Independent seeds per calibration method (best by test RMSE kept,
    /// matching the paper's "best models" protocol).
    pub calib_seeds: usize,
    /// GGGP population (paper: 1200 to budget-match GMR's local search).
    pub gggp_pop: usize,
    /// GGGP generations.
    pub gggp_gen: usize,
    /// LSTM epochs for the S1 variant.
    pub lstm_epochs_s1: usize,
    /// LSTM epochs for the All variant (9× wider input).
    pub lstm_epochs_all: usize,
    /// Dataset final year (1996..=year; 2008 = the paper's full record).
    pub end_year: i32,
    /// Last training year.
    pub train_end_year: i32,
    /// Evaluation worker threads for the GP engine.
    pub threads: usize,
}

impl Scale {
    /// Seconds-scale smoke preset.
    pub fn quick() -> Scale {
        Scale {
            name: "quick",
            gmr_pop: 24,
            gmr_gen: 8,
            gmr_ls: 1,
            gmr_runs: 2,
            calib_budget: 300,
            calib_seeds: 1,
            gggp_pop: 24,
            gggp_gen: 8,
            lstm_epochs_s1: 4,
            lstm_epochs_all: 2,
            end_year: 1999,
            train_end_year: 1998,
            threads: threads(),
        }
    }

    /// Minutes-scale default preset over the full 13-year record.
    pub fn default_scale() -> Scale {
        Scale {
            name: "default",
            gmr_pop: 120,
            gmr_gen: 60,
            gmr_ls: 3,
            gmr_runs: 6,
            calib_budget: 2500,
            calib_seeds: 3,
            gggp_pop: 240,
            gggp_gen: 40,
            lstm_epochs_s1: 30,
            lstm_epochs_all: 10,
            end_year: 2008,
            train_end_year: 2005,
            threads: threads(),
        }
    }

    /// The paper's Appendix B settings (hours).
    pub fn full() -> Scale {
        Scale {
            name: "full",
            gmr_pop: 200,
            gmr_gen: 100,
            gmr_ls: 5,
            gmr_runs: 60,
            calib_budget: 120_000,
            calib_seeds: 5,
            gggp_pop: 1200,
            gggp_gen: 100,
            lstm_epochs_s1: 1000,
            lstm_epochs_all: 200,
            end_year: 2008,
            train_end_year: 2005,
            threads: threads(),
        }
    }

    /// Parse the scale from CLI arguments (`--quick` / `--full`; default
    /// otherwise).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::quick()
        } else if args.iter().any(|a| a == "--full") {
            Scale::full()
        } else {
            Scale::default_scale()
        }
    }

    /// The GP configuration this scale implies (paper defaults otherwise).
    pub fn gp_config(&self, seed: u64) -> GpConfig {
        GpConfig {
            pop_size: self.gmr_pop,
            max_gen: self.gmr_gen,
            local_search_steps: self.gmr_ls,
            threads: self.threads,
            seed,
            sigma_ramp_last: (self.gmr_gen / 5).max(1),
            ..GpConfig::default()
        }
    }
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The canonical dataset for a scale (fixed seed: every experiment sees the
/// same river).
pub fn dataset(scale: &Scale) -> RiverDataset {
    generate(&SyntheticConfig {
        end_year: scale.end_year,
        train_end_year: scale.train_end_year,
        ..SyntheticConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_budget() {
        let q = Scale::quick();
        let d = Scale::default_scale();
        let f = Scale::full();
        assert!(q.gmr_pop < d.gmr_pop && d.gmr_pop < f.gmr_pop);
        assert!(q.calib_budget < d.calib_budget && d.calib_budget < f.calib_budget);
        assert_eq!(f.gmr_pop, 200);
        assert_eq!(f.gmr_gen, 100);
        assert_eq!(f.gmr_runs, 60);
    }

    #[test]
    fn dataset_respects_scale_years() {
        let ds = dataset(&Scale::quick());
        assert_eq!(ds.days, gmr_hydro::data::days_in_range(1996, 1999));
        assert_eq!(ds.train.len(), gmr_hydro::data::days_in_range(1996, 1998));
    }

    #[test]
    fn gp_config_inherits_paper_defaults() {
        let cfg = Scale::quick().gp_config(1);
        assert_eq!(cfg.tournament, 5);
        assert_eq!(cfg.elite, 2);
        assert!((cfg.p_crossover - 0.3).abs() < 1e-12);
    }
}
