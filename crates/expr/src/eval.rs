//! Tree-walking evaluation with protected numeric semantics.
//!
//! Evolved expressions are arbitrary compositions of arithmetic and
//! transcendental operators, so naive IEEE semantics would regularly produce
//! `inf`/`NaN` (division by a vanishing denominator, `exp` of a huge evolved
//! exponent, `log` of a negative nutrient residual, …) and poison an entire
//! multi-year simulation. Standard GP practice — and what the GMR system
//! needs for its fitness landscape to stay informative — is *protected*
//! operators:
//!
//! * `protected_div(x, y)` returns `0` when `|y|` underflows,
//! * `protected_log(x)` evaluates `ln(max(|x|, ε))`,
//! * `protected_exp(x)` clamps the exponent so the result stays finite.
//!
//! Both the interpreter here and the bytecode VM in [`crate::compile`] use
//! exactly the same three functions, which is what makes the
//! compile-vs-interpret equivalence property (tested with proptest) hold
//! bit-for-bit.

use crate::ast::{BinOp, Expr, UnOp};

/// Smallest denominator magnitude before division is considered singular.
pub const DIV_EPS: f64 = 1e-12;
/// Floor applied inside `protected_log`.
pub const LOG_EPS: f64 = 1e-12;
/// Clamp applied to the argument of `protected_exp` (e^50 ≈ 5.18e21 keeps
/// downstream arithmetic finite without distorting plausible dynamics).
pub const EXP_CLAMP: f64 = 50.0;

/// Division that returns `0` for singular denominators.
#[inline(always)]
pub fn protected_div(x: f64, y: f64) -> f64 {
    if y.abs() < DIV_EPS {
        0.0
    } else {
        x / y
    }
}

/// Natural log of `max(|x|, ε)` — total on all of ℝ.
#[inline(always)]
pub fn protected_log(x: f64) -> f64 {
    x.abs().max(LOG_EPS).ln()
}

/// `exp` with the argument clamped to `[-EXP_CLAMP, EXP_CLAMP]`.
#[inline(always)]
pub fn protected_exp(x: f64) -> f64 {
    x.clamp(-EXP_CLAMP, EXP_CLAMP).exp()
}

/// Protected power: `|x|^y`, guarded against overflow like `protected_exp`.
#[inline(always)]
pub fn protected_pow(x: f64, y: f64) -> f64 {
    let base = x.abs().max(LOG_EPS);
    protected_exp(y * base.ln())
}

/// Apply a binary operator with protected semantics.
#[inline(always)]
pub fn apply_bin(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => protected_div(a, b),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        BinOp::Pow => protected_pow(a, b),
    }
}

/// Apply a unary operator with protected semantics.
#[inline(always)]
pub fn apply_un(op: UnOp, a: f64) -> f64 {
    match op {
        UnOp::Neg => -a,
        UnOp::Log => protected_log(a),
        UnOp::Exp => protected_exp(a),
    }
}

/// Per-step evaluation context: the temporal forcing vector (one slot per
/// [`Expr::Var`] index) and the integrated state vector (one slot per
/// [`Expr::State`] index).
#[derive(Debug, Clone, Copy)]
pub struct EvalContext<'a> {
    /// Temporal variable values at the current time step.
    pub vars: &'a [f64],
    /// State variable values at the current time step.
    pub state: &'a [f64],
}

impl Expr {
    /// Evaluate the tree under `ctx`.
    ///
    /// ```
    /// use gmr_expr::{parse, EvalContext, NameTable};
    ///
    /// let names = NameTable::new(&["Vtmp"], &["BPhy"], &["CUA"]);
    /// let eq = parse("BPhy * (CUA[0.5] - Vtmp / 40)", &names, |_| 0.0).unwrap();
    /// let ctx = EvalContext { vars: &[20.0], state: &[10.0] };
    /// assert_eq!(eq.eval(&ctx), 10.0 * (0.5 - 0.5));
    /// ```
    ///
    /// Out-of-range variable or state indices evaluate to `0.0`; the domain
    /// layer validates index ranges when it builds grammars, so an
    /// out-of-range read here indicates a mis-assembled context and `0` keeps
    /// the simulation well-defined rather than panicking mid-run.
    pub fn eval(&self, ctx: &EvalContext<'_>) -> f64 {
        match self {
            Expr::Num(v) => *v,
            Expr::Param(p) => p.value,
            Expr::Var(i) => ctx.vars.get(*i as usize).copied().unwrap_or(0.0),
            Expr::State(i) => ctx.state.get(*i as usize).copied().unwrap_or(0.0),
            Expr::Unary(op, a) => apply_un(*op, a.eval(ctx)),
            Expr::Binary(op, a, b) => apply_bin(*op, a.eval(ctx), b.eval(ctx)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ParamSlot;

    const CTX: EvalContext<'static> = EvalContext {
        vars: &[10.0, 20.0, 30.0],
        state: &[2.0, 4.0],
    };

    #[test]
    fn literals_and_leaves() {
        assert_eq!(Expr::Num(3.5).eval(&CTX), 3.5);
        assert_eq!(Expr::Var(1).eval(&CTX), 20.0);
        assert_eq!(Expr::State(0).eval(&CTX), 2.0);
        assert_eq!(
            Expr::Param(ParamSlot {
                kind: 0,
                value: 0.19
            })
            .eval(&CTX),
            0.19
        );
    }

    #[test]
    fn arithmetic() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::Var(0),
            Expr::bin(BinOp::Add, Expr::State(1), Expr::Num(1.0)),
        );
        assert_eq!(e.eval(&CTX), 10.0 * 5.0);
    }

    #[test]
    fn protected_division_by_zero() {
        let e = Expr::bin(BinOp::Div, Expr::Num(7.0), Expr::Num(0.0));
        assert_eq!(e.eval(&CTX), 0.0);
        assert_eq!(protected_div(7.0, 1e-13), 0.0);
        assert_eq!(protected_div(7.0, 2.0), 3.5);
    }

    #[test]
    fn protected_log_of_nonpositive() {
        assert!(protected_log(0.0).is_finite());
        assert!(protected_log(-5.0).is_finite());
        assert_eq!(protected_log(-5.0), 5.0_f64.ln());
    }

    #[test]
    fn protected_exp_never_overflows() {
        assert!(protected_exp(1e9).is_finite());
        assert!(protected_exp(-1e9) > 0.0);
        assert_eq!(protected_exp(1.0), 1.0_f64.exp());
    }

    #[test]
    fn protected_pow_stays_finite() {
        assert!(protected_pow(1e10, 1e10).is_finite());
        assert!((protected_pow(2.0, 3.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn min_max() {
        let lo = Expr::bin(BinOp::Min, Expr::Var(0), Expr::Var(1));
        let hi = Expr::bin(BinOp::Max, Expr::Var(0), Expr::Var(1));
        assert_eq!(lo.eval(&CTX), 10.0);
        assert_eq!(hi.eval(&CTX), 20.0);
    }

    #[test]
    fn out_of_range_indices_read_zero() {
        assert_eq!(Expr::Var(200).eval(&CTX), 0.0);
        assert_eq!(Expr::State(200).eval(&CTX), 0.0);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(Expr::un(UnOp::Neg, Expr::Num(2.0)).eval(&CTX), -2.0);
        assert_eq!(Expr::un(UnOp::Exp, Expr::Num(0.0)).eval(&CTX), 1.0);
        assert_eq!(Expr::un(UnOp::Log, Expr::Num(1.0)).eval(&CTX), 0.0);
    }

    #[test]
    fn deep_nesting_stays_finite() {
        // exp(exp(exp(x))) must not overflow thanks to clamping.
        let e = Expr::un(
            UnOp::Exp,
            Expr::un(UnOp::Exp, Expr::un(UnOp::Exp, Expr::Num(10.0))),
        );
        assert!(e.eval(&CTX).is_finite());
    }
}
