//! Structural hashing for fitness-cache keys.
//!
//! The tree cache in the GP engine (paper §III-D, "Tree Caching") maps a
//! *canonical* expression to its previously computed fitness. The key must be
//! cheap to compute — it is taken once per fitness evaluation — so we use an
//! FxHash-style multiply-xor mix rather than SipHash, hand-rolled here to
//! avoid a dependency. Collisions only cost a wrong cache hit; keys are
//! 128 bits (two independent mixes) which makes that astronomically unlikely
//! for cache populations in the millions.

use crate::ast::Expr;

const SEED1: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const SEED2: u64 = 0x9e_37_79_b9_7f_4a_7c_15;

#[inline(always)]
fn mix(h: u64, v: u64, k: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(k)
}

/// 128-bit structural hash of an expression (including parameter kinds and
/// the bit patterns of all embedded numeric values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeKey(pub u64, pub u64);

impl Expr {
    /// Compute the [`TreeKey`] for this tree. Two structurally identical
    /// trees always produce the same key; value changes (e.g. Gaussian
    /// mutation of a parameter) produce a different key.
    pub fn structural_hash(&self) -> TreeKey {
        let mut h1 = 0xcbf2_9ce4_8422_2325;
        let mut h2 = 0x6a09_e667_f3bc_c909;
        self.hash_into(&mut h1, &mut h2);
        TreeKey(h1, h2)
    }

    fn hash_into(&self, h1: &mut u64, h2: &mut u64) {
        let tag: u64 = match self {
            Expr::Num(v) => 0x10 ^ v.to_bits(),
            Expr::Param(p) => 0x20 ^ ((p.kind as u64) << 1) ^ p.value.to_bits().rotate_left(17),
            Expr::Var(i) => 0x30 ^ ((*i as u64) << 8),
            Expr::State(i) => 0x40 ^ ((*i as u64) << 8),
            Expr::Unary(op, _) => 0x50 ^ ((*op as u64) << 8),
            Expr::Binary(op, _, _) => 0x60 ^ ((*op as u64) << 8),
        };
        *h1 = mix(*h1, tag, SEED1);
        *h2 = mix(*h2, tag, SEED2);
        match self {
            Expr::Unary(_, a) => a.hash_into(h1, h2),
            Expr::Binary(_, a, b) => {
                a.hash_into(h1, h2);
                // Separator so that ((a b) c) and (a (b c)) shaped trees
                // cannot collide by concatenation.
                *h1 = mix(*h1, 0x2c, SEED1);
                *h2 = mix(*h2, 0x2c, SEED2);
                b.hash_into(h1, h2);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, ParamSlot, UnOp};

    #[test]
    fn identical_trees_hash_equal() {
        let a = Expr::bin(BinOp::Add, Expr::Var(0), Expr::Num(1.0));
        let b = Expr::bin(BinOp::Add, Expr::Var(0), Expr::Num(1.0));
        assert_eq!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn operand_order_matters() {
        let a = Expr::bin(BinOp::Add, Expr::Var(0), Expr::Var(1));
        let b = Expr::bin(BinOp::Add, Expr::Var(1), Expr::Var(0));
        assert_ne!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn param_value_changes_key() {
        let a = Expr::Param(ParamSlot {
            kind: 2,
            value: 1.0,
        });
        let b = Expr::Param(ParamSlot {
            kind: 2,
            value: 1.0000001,
        });
        assert_ne!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn variant_confusion_is_impossible() {
        assert_ne!(
            Expr::Var(0).structural_hash(),
            Expr::State(0).structural_hash()
        );
        assert_ne!(
            Expr::Num(0.0).structural_hash(),
            Expr::Var(0).structural_hash()
        );
        assert_ne!(
            Expr::un(UnOp::Log, Expr::Var(0)).structural_hash(),
            Expr::un(UnOp::Exp, Expr::Var(0)).structural_hash()
        );
    }

    #[test]
    fn association_shape_matters() {
        // (a+b)+c vs a+(b+c): same leaf sequence, different shape.
        let left = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::Var(0), Expr::Var(1)),
            Expr::Var(2),
        );
        let right = Expr::bin(
            BinOp::Add,
            Expr::Var(0),
            Expr::bin(BinOp::Add, Expr::Var(1), Expr::Var(2)),
        );
        assert_ne!(left.structural_hash(), right.structural_hash());
    }
}
