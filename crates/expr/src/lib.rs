//! Expression-tree substrate for dynamic process equations.
//!
//! This crate is the lowest layer of the GMR reproduction. A dynamic process
//! (a differential equation such as the phytoplankton model in the paper's
//! eq. 1) is *lowered* from a TAG derivation tree into an [`Expr`]: a plain
//! expression AST over
//!
//! * numeric literals,
//! * **constant parameters** ([`Expr::Param`]) — physiological rates such as
//!   the maximum phytoplankton growth rate, carrying a mutable value that
//!   Gaussian mutation updates,
//! * **temporal variables** ([`Expr::Var`]) — external forcings (light,
//!   temperature, nutrients, …) read from the observed data at each step,
//! * **state variables** ([`Expr::State`]) — the integrated quantities
//!   (phytoplankton and zooplankton biomass),
//! * unary and binary operators (including the `min`/`max` forms the expert
//!   model uses for Liebig-style nutrient limitation).
//!
//! On top of the AST the crate provides:
//!
//! * [`eval`](Expr::eval) — a straightforward tree-walking interpreter with
//!   *protected* semantics for division, logarithm and exponentiation so that
//!   evolved expressions can never poison a simulation with `inf`/`NaN`;
//! * [`simplify()`](simplify::simplify) — algebraic simplification and canonical ordering of
//!   commutative operators, which both shrinks evolved trees and raises the
//!   hit rate of the fitness cache (§III-D of the paper);
//! * [`mod@compile`] — lowering to a flat stack-VM bytecode, the Rust substitute
//!   for the paper's G++ runtime compilation (same shape: pay once per tree,
//!   then evaluate thousands of time steps cheaply);
//! * a canonical structural [`hash`](Expr::structural_hash) used as the
//!   fitness-cache key;
//! * a [`parser`](parse::parse()) and pretty [`printer`](display) for human
//!   round-tripping in examples and tests.

pub mod ast;
pub mod compile;
pub mod display;
pub mod eval;
pub mod fastmath;
pub mod fusion;
pub mod fusion_gen;
pub mod hash;
pub mod opstats;
pub mod parse;
pub mod simd;
pub mod simplify;
mod threaded;
pub mod vm;

pub use ast::{BinOp, Expr, ParamSlot, UnOp};
pub use compile::{check_arity, CompileError, CompiledExpr, Instr};
pub use display::NameTable;
pub use eval::{protected_div, protected_exp, protected_log, EvalContext};
pub use fusion::FusionTable;
pub use hash::TreeKey;
pub use opstats::{pair_counts, total_pairs, PairCount};
pub use parse::{parse, ParseError};
pub use simplify::simplify;
pub use vm::{
    CompiledSystem, EnsembleSession, Exec, Fidelity, FidelityPolicy, MultiSession, OptOptions,
    PrefixTable, RInstr, RegProgram, SystemScratch, SystemSession, Tier, LANES,
};
