//! Human-readable rendering of expression trees.
//!
//! The paper's headline advantage over black-box models is interpretability:
//! a revised model *is* an equation an ecologist can read (eqs. 7–8 show two
//! such revisions). This module renders an [`Expr`] as infix text given a
//! [`NameTable`] that maps variable/state/parameter indices to their domain
//! names. Output round-trips through [`crate::parse`](mod@crate::parse).
//!
//! Parameters render as `name[value]` so a revised model displays both the
//! structure and the calibrated constants, e.g.
//! `BPhy * (CUA[1.89] - 1.5)`.

use crate::ast::{BinOp, Expr, UnOp};
use std::fmt;

/// Maps expression indices to display names. The domain layer (gmr-bio)
/// provides the canonical table for the river model.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    /// Names for temporal-variable indices (`Expr::Var`).
    pub vars: Vec<String>,
    /// Names for state-variable indices (`Expr::State`).
    pub states: Vec<String>,
    /// Names for parameter kinds (`Expr::Param`).
    pub params: Vec<String>,
}

impl NameTable {
    /// Build a table from string slices.
    pub fn new(vars: &[&str], states: &[&str], params: &[&str]) -> Self {
        NameTable {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            states: states.iter().map(|s| s.to_string()).collect(),
            params: params.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn var(&self, i: u8) -> String {
        self.vars
            .get(i as usize)
            .cloned()
            .unwrap_or_else(|| format!("V#{i}"))
    }

    fn state(&self, i: u8) -> String {
        self.states
            .get(i as usize)
            .cloned()
            .unwrap_or_else(|| format!("S#{i}"))
    }

    fn param(&self, k: u16) -> String {
        self.params
            .get(k as usize)
            .cloned()
            .unwrap_or_else(|| format!("C#{k}"))
    }

    /// Find a variable index by name.
    pub fn var_index(&self, name: &str) -> Option<u8> {
        self.vars.iter().position(|v| v == name).map(|i| i as u8)
    }

    /// Find a state index by name.
    pub fn state_index(&self, name: &str) -> Option<u8> {
        self.states.iter().position(|v| v == name).map(|i| i as u8)
    }

    /// Find a parameter kind by name.
    pub fn param_kind(&self, name: &str) -> Option<u16> {
        self.params.iter().position(|v| v == name).map(|i| i as u16)
    }
}

/// Operator precedence for minimal parenthesisation.
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Add | BinOp::Sub => 1,
        BinOp::Mul | BinOp::Div => 2,
        // Function-call syntax; never needs parens around itself.
        BinOp::Min | BinOp::Max | BinOp::Pow => 3,
    }
}

/// Display adapter tying an expression to a name table.
pub struct ExprDisplay<'a> {
    expr: &'a Expr,
    names: &'a NameTable,
}

impl Expr {
    /// Render with the given name table: `expr.display(&names).to_string()`.
    pub fn display<'a>(&'a self, names: &'a NameTable) -> ExprDisplay<'a> {
        ExprDisplay { expr: self, names }
    }
}

fn write_expr(
    f: &mut fmt::Formatter<'_>,
    e: &Expr,
    names: &NameTable,
    parent_prec: u8,
    is_right: bool,
) -> fmt::Result {
    match e {
        Expr::Num(v) => write!(f, "{v}"),
        Expr::Param(p) => write!(f, "{}[{}]", names.param(p.kind), p.value),
        Expr::Var(i) => write!(f, "{}", names.var(*i)),
        Expr::State(i) => write!(f, "{}", names.state(*i)),
        Expr::Unary(UnOp::Neg, a) => {
            // A negated literal must not print as `-3` — that would re-parse
            // as a literal, not a Neg node; use function syntax instead.
            if matches!(**a, Expr::Num(_)) {
                write!(f, "neg(")?;
                write_expr(f, a, names, 0, false)?;
                return write!(f, ")");
            }
            write!(f, "-")?;
            // Negation binds tighter than +/- but looser than a leaf;
            // always parenthesise compound operands for clarity.
            if matches!(**a, Expr::Binary(..)) {
                write!(f, "(")?;
                write_expr(f, a, names, 0, false)?;
                write!(f, ")")
            } else {
                write_expr(f, a, names, 3, false)
            }
        }
        Expr::Unary(op, a) => {
            write!(f, "{}(", op.symbol())?;
            write_expr(f, a, names, 0, false)?;
            write!(f, ")")
        }
        Expr::Binary(op @ (BinOp::Min | BinOp::Max | BinOp::Pow), a, b) => {
            write!(f, "{}(", op.symbol())?;
            write_expr(f, a, names, 0, false)?;
            write!(f, ", ")?;
            write_expr(f, b, names, 0, false)?;
            write!(f, ")")
        }
        Expr::Binary(op, a, b) => {
            let p = prec(*op);
            // Need parens when we bind looser than the parent, or equally
            // tight on the right of a non-associative operator (a - (b - c)).
            let needs = p < parent_prec || (p == parent_prec && is_right);
            if needs {
                write!(f, "(")?;
            }
            write_expr(f, a, names, p, false)?;
            write!(f, " {} ", op.symbol())?;
            write_expr(
                f,
                b,
                names,
                p + u8::from(matches!(op, BinOp::Sub | BinOp::Div)),
                true,
            )?;
            if needs {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self.expr, self.names, 0, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ParamSlot;

    fn names() -> NameTable {
        NameTable::new(&["Vlgt", "Vtmp"], &["BPhy", "BZoo"], &["CUA", "CBRA"])
    }

    #[test]
    fn renders_leaves() {
        let n = names();
        assert_eq!(Expr::Var(0).display(&n).to_string(), "Vlgt");
        assert_eq!(Expr::State(1).display(&n).to_string(), "BZoo");
        assert_eq!(
            Expr::Param(ParamSlot {
                kind: 0,
                value: 1.89
            })
            .display(&n)
            .to_string(),
            "CUA[1.89]"
        );
        assert_eq!(Expr::Num(2.5).display(&n).to_string(), "2.5");
    }

    #[test]
    fn precedence_parens() {
        let n = names();
        let e = Expr::bin(
            BinOp::Mul,
            Expr::State(0),
            Expr::bin(BinOp::Sub, Expr::Var(1), Expr::Num(1.5)),
        );
        assert_eq!(e.display(&n).to_string(), "BPhy * (Vtmp - 1.5)");
        let e2 = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Var(0), Expr::Var(1)),
            Expr::Num(1.0),
        );
        assert_eq!(e2.display(&n).to_string(), "Vlgt * Vtmp + 1");
    }

    #[test]
    fn non_associative_right_operand() {
        let n = names();
        // a - (b - c) must keep its parens.
        let e = Expr::bin(
            BinOp::Sub,
            Expr::Var(0),
            Expr::bin(BinOp::Sub, Expr::Var(1), Expr::Num(1.0)),
        );
        assert_eq!(e.display(&n).to_string(), "Vlgt - (Vtmp - 1)");
        // (a - b) - c prints without parens.
        let e2 = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::Var(0), Expr::Var(1)),
            Expr::Num(1.0),
        );
        assert_eq!(e2.display(&n).to_string(), "Vlgt - Vtmp - 1");
    }

    #[test]
    fn function_syntax() {
        let n = names();
        let e = Expr::bin(BinOp::Min, Expr::Var(0), Expr::Var(1));
        assert_eq!(e.display(&n).to_string(), "min(Vlgt, Vtmp)");
        let l = Expr::un(UnOp::Log, Expr::Var(0));
        assert_eq!(l.display(&n).to_string(), "log(Vlgt)");
    }

    #[test]
    fn negation() {
        let n = names();
        let e = Expr::un(
            UnOp::Neg,
            Expr::bin(BinOp::Add, Expr::Var(0), Expr::Num(1.0)),
        );
        assert_eq!(e.display(&n).to_string(), "-(Vlgt + 1)");
        let simple = Expr::un(UnOp::Neg, Expr::Var(0));
        assert_eq!(simple.display(&n).to_string(), "-Vlgt");
    }

    #[test]
    fn unknown_indices_fall_back() {
        let n = names();
        assert_eq!(Expr::Var(9).display(&n).to_string(), "V#9");
        assert_eq!(Expr::State(9).display(&n).to_string(), "S#9");
    }
}
