//! Operator-pair co-occurrence statistics over expression trees.
//!
//! The fuel for corpus-driven superinstruction selection
//! ([`crate::fusion`]): for every operator node in an elite's equations,
//! count the `(parent op, child label, position)` pair of each operand.
//! The GP engine journals these counts per elite (pre-aggregated, so the
//! journal stays expression-free), `gmr-trace opcodes` sums them across
//! runs into a `gmr-opcodes/v1` corpus, and the fuser's peephole table
//! is regenerated from that corpus.
//!
//! Child labels are the parent-facing identity of the operand: another
//! operator's name, or one of the leaf kinds `"var"`, `"state"`,
//! `"const"` (numeric literals and parameters alike — both lower to
//! pinned constants in the VM). Positions are `'l'`/`'r'` for binary
//! operands and `'u'` for the unary operand. Output order is
//! deterministic (sorted by parent, child, position), independent of
//! traversal order and hash state.

use crate::ast::{BinOp, Expr, UnOp};
use std::collections::HashMap;

/// Operator name used in opcode-pair statistics (lower-case, matches the
/// `gmr-opcodes/v1` schema and the fusion selection rule).
pub fn bin_op_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::Pow => "pow",
    }
}

/// Operator name for unary ops (see [`bin_op_name`]).
pub fn un_op_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Log => "log",
        UnOp::Exp => "exp",
    }
}

fn label(e: &Expr) -> &'static str {
    match e {
        Expr::Num(_) | Expr::Param(_) => "const",
        Expr::Var(_) => "var",
        Expr::State(_) => "state",
        Expr::Unary(op, _) => un_op_name(*op),
        Expr::Binary(op, ..) => bin_op_name(*op),
    }
}

/// One aggregated operand pair: `parent` operator, `child` label,
/// operand `pos` (`'l'`/`'r'`/`'u'`) and its occurrence `count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairCount {
    pub parent: &'static str,
    pub child: &'static str,
    pub pos: char,
    pub count: u64,
}

/// Count operand pairs over a system of equations. Deterministic order:
/// sorted by `(parent, child, pos)`.
pub fn pair_counts(eqs: &[Expr]) -> Vec<PairCount> {
    let mut acc: HashMap<(&'static str, &'static str, char), u64> = HashMap::new();
    fn walk(e: &Expr, acc: &mut HashMap<(&'static str, &'static str, char), u64>) {
        match e {
            Expr::Unary(op, a) => {
                *acc.entry((un_op_name(*op), label(a), 'u')).or_insert(0) += 1;
                walk(a, acc);
            }
            Expr::Binary(op, a, b) => {
                *acc.entry((bin_op_name(*op), label(a), 'l')).or_insert(0) += 1;
                *acc.entry((bin_op_name(*op), label(b), 'r')).or_insert(0) += 1;
                walk(a, acc);
                walk(b, acc);
            }
            _ => {}
        }
    }
    for eq in eqs {
        walk(eq, &mut acc);
    }
    let mut out: Vec<PairCount> = acc
        .into_iter()
        .map(|((parent, child, pos), count)| PairCount {
            parent,
            child,
            pos,
            count,
        })
        .collect();
    out.sort_by(|a, b| {
        a.parent
            .cmp(b.parent)
            .then(a.child.cmp(b.child))
            .then(a.pos.cmp(&b.pos))
    });
    out
}

/// Total operand pairs (the denominator of the fusion support rule).
pub fn total_pairs(counts: &[PairCount]) -> u64 {
    counts.iter().map(|c| c.count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ParamSlot;

    #[test]
    fn counts_pairs_with_positions() {
        // add(mul(var, const), state) + neg(var)
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Mul,
                Expr::Var(0),
                Expr::Param(ParamSlot {
                    kind: 0,
                    value: 2.0,
                }),
            ),
            Expr::State(0),
        );
        let e2 = Expr::un(UnOp::Neg, Expr::Var(1));
        let counts = pair_counts(&[e, e2]);
        let get = |p: &str, c: &str, pos: char| {
            counts
                .iter()
                .find(|x| x.parent == p && x.child == c && x.pos == pos)
                .map(|x| x.count)
                .unwrap_or(0)
        };
        assert_eq!(get("add", "mul", 'l'), 1);
        assert_eq!(get("add", "state", 'r'), 1);
        assert_eq!(get("mul", "var", 'l'), 1);
        assert_eq!(get("mul", "const", 'r'), 1);
        assert_eq!(get("neg", "var", 'u'), 1);
        assert_eq!(total_pairs(&counts), 5);
        // Deterministic order.
        let again = pair_counts(&[
            Expr::bin(
                BinOp::Add,
                Expr::bin(
                    BinOp::Mul,
                    Expr::Var(0),
                    Expr::Param(ParamSlot {
                        kind: 0,
                        value: 2.0,
                    }),
                ),
                Expr::State(0),
            ),
            Expr::un(UnOp::Neg, Expr::Var(1)),
        ]);
        assert_eq!(counts, again);
    }
}
