//! Algebraic simplification and canonicalisation.
//!
//! Simplification serves two purposes in the GMR system (paper §III-D):
//! evolved trees accumulate dead weight (`x + 0`, doubled negations, fully
//! numeric subtrees) which slows every subsequent fitness evaluation, and the
//! fitness cache is keyed by tree structure, so semantically equal trees must
//! be normalised to the same key for the cache to hit ("GMR improves the hit
//! rate by algebraically simplifying the trees before they are evaluated").
//!
//! Every rule here is *sound under the protected semantics* of
//! [`crate::eval`]: we deliberately do **not** apply textbook identities that
//! fail for non-finite intermediates (`x * 0 → 0`, `x - x → 0`,
//! `log(exp(x)) → x`), so `simplify` never changes the value of a tree on any
//! input. A proptest in `tests/` checks exactly that.
//!
//! Rules applied (bottom-up, to a local fixpoint at each node):
//!
//! * numeric folding of `Num`-only subtrees (via the protected operators);
//! * `x + 0 → x`, `x - 0 → x`, `0 - x → -x`;
//! * `x * 1 → x`, `x / 1 → x`;
//! * `--x → x`, `-(c) → (-c)`;
//! * `min(x, x) → x`, `max(x, x) → x` for structurally identical operands;
//! * commutative operands sorted into a canonical order.
//!
//! `Param` leaves are *never* folded: their values are live targets of
//! Gaussian mutation and must stay addressable in the tree.

use crate::ast::{BinOp, Expr, UnOp};
use crate::eval::{apply_bin, apply_un};
use std::cmp::Ordering;

/// Total, deterministic structural order on expressions, used to
/// canonicalise commutative operands. Parameters order by kind then value
/// bits; floats by their bit pattern (total order, NaN-safe).
pub fn cmp_expr(a: &Expr, b: &Expr) -> Ordering {
    fn rank(e: &Expr) -> u8 {
        match e {
            Expr::Num(_) => 0,
            Expr::Param(_) => 1,
            Expr::Var(_) => 2,
            Expr::State(_) => 3,
            Expr::Unary(..) => 4,
            Expr::Binary(..) => 5,
        }
    }
    match (a, b) {
        (Expr::Num(x), Expr::Num(y)) => x.total_cmp(y),
        (Expr::Param(x), Expr::Param(y)) => x
            .kind
            .cmp(&y.kind)
            .then_with(|| x.value.total_cmp(&y.value)),
        (Expr::Var(x), Expr::Var(y)) => x.cmp(y),
        (Expr::State(x), Expr::State(y)) => x.cmp(y),
        (Expr::Unary(op1, a1), Expr::Unary(op2, a2)) => op1.cmp(op2).then_with(|| cmp_expr(a1, a2)),
        (Expr::Binary(op1, a1, b1), Expr::Binary(op2, a2, b2)) => op1
            .cmp(op2)
            .then_with(|| cmp_expr(a1, a2))
            .then_with(|| cmp_expr(b1, b2)),
        _ => rank(a).cmp(&rank(b)),
    }
}

/// Structural equality that treats `-0.0 == 0.0` as distinct (bit equality),
/// matching the cache-key hash.
fn same(a: &Expr, b: &Expr) -> bool {
    cmp_expr(a, b) == Ordering::Equal
}

fn is_num(e: &Expr, v: f64) -> bool {
    matches!(e, Expr::Num(x) if *x == v)
}

/// Simplify one node, assuming children are already simplified. Returns the
/// rewritten node and whether anything changed.
fn step(e: Expr) -> (Expr, bool) {
    match e {
        Expr::Unary(op, a) => {
            // Numeric folding.
            if let Expr::Num(v) = *a {
                return (Expr::Num(apply_un(op, v)), true);
            }
            // --x → x
            if op == UnOp::Neg {
                if let Expr::Unary(UnOp::Neg, inner) = *a {
                    return (*inner, true);
                }
                return (Expr::Unary(UnOp::Neg, a), false);
            }
            (Expr::Unary(op, a), false)
        }
        Expr::Binary(op, a, b) => {
            if let (Expr::Num(x), Expr::Num(y)) = (&*a, &*b) {
                return (Expr::Num(apply_bin(op, *x, *y)), true);
            }
            match op {
                BinOp::Add => {
                    if is_num(&a, 0.0) {
                        return (*b, true);
                    }
                    if is_num(&b, 0.0) {
                        return (*a, true);
                    }
                }
                BinOp::Sub => {
                    if is_num(&b, 0.0) {
                        return (*a, true);
                    }
                    if is_num(&a, 0.0) {
                        return (Expr::Unary(UnOp::Neg, b), true);
                    }
                }
                BinOp::Mul => {
                    if is_num(&a, 1.0) {
                        return (*b, true);
                    }
                    if is_num(&b, 1.0) {
                        return (*a, true);
                    }
                }
                BinOp::Div => {
                    if is_num(&b, 1.0) {
                        return (*a, true);
                    }
                }
                BinOp::Min | BinOp::Max => {
                    if same(&a, &b) {
                        return (*a, true);
                    }
                }
                BinOp::Pow => {}
            }
            // Canonical operand order for commutative operators.
            if op.commutative() && cmp_expr(&a, &b) == Ordering::Greater {
                return (Expr::Binary(op, b, a), true);
            }
            (Expr::Binary(op, a, b), false)
        }
        leaf => (leaf, false),
    }
}

/// Simplify a tree bottom-up, iterating each node to a local fixpoint.
///
/// ```
/// use gmr_expr::{parse, simplify, NameTable};
///
/// let names = NameTable::new(&["x"], &[], &[]);
/// let e = parse("(x + 0) * 1 + (2 * 3)", &names, |_| 0.0).unwrap();
/// let s = simplify(&e);
/// // Numeric subtrees fold and commutative operands are canonically
/// // ordered (literals first).
/// assert_eq!(s.display(&names).to_string(), "6 + x");
/// ```
pub fn simplify(e: &Expr) -> Expr {
    fn go(e: &Expr) -> Expr {
        let rebuilt = match e {
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(go(a))),
            Expr::Binary(op, a, b) => Expr::Binary(*op, Box::new(go(a)), Box::new(go(b))),
            leaf => leaf.clone(),
        };
        let mut cur = rebuilt;
        loop {
            let (next, changed) = step(cur);
            if !changed {
                return next;
            }
            // A rewrite may expose a new root shape (e.g. folding produced a
            // Num operand) but children are already simplified, so looping on
            // the root alone reaches the fixpoint. The exception is a rewrite
            // that *lifts* a child to the root (x+0 → x) — already simplified.
            cur = next;
        }
    }
    go(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ParamSlot;
    use crate::eval::EvalContext;

    fn p(kind: u16, value: f64) -> Expr {
        Expr::Param(ParamSlot { kind, value })
    }

    #[test]
    fn folds_numeric_subtrees() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Num(2.0),
            Expr::bin(BinOp::Mul, Expr::Num(3.0), Expr::Num(4.0)),
        );
        assert_eq!(simplify(&e), Expr::Num(14.0));
    }

    #[test]
    fn does_not_fold_params() {
        let e = Expr::bin(BinOp::Add, p(0, 2.0), Expr::Num(0.0));
        assert_eq!(simplify(&e), p(0, 2.0));
        let e2 = Expr::bin(BinOp::Add, p(0, 2.0), Expr::Num(3.0));
        // Param + 3 must stay a tree: the param is a mutation target.
        assert_eq!(e2.size(), 3);
        assert_eq!(simplify(&e2).size(), 3);
    }

    #[test]
    fn additive_identities() {
        let x = Expr::Var(0);
        assert_eq!(
            simplify(&Expr::bin(BinOp::Add, x.clone(), Expr::Num(0.0))),
            x
        );
        assert_eq!(
            simplify(&Expr::bin(BinOp::Add, Expr::Num(0.0), x.clone())),
            x
        );
        assert_eq!(
            simplify(&Expr::bin(BinOp::Sub, x.clone(), Expr::Num(0.0))),
            x
        );
        assert_eq!(
            simplify(&Expr::bin(BinOp::Sub, Expr::Num(0.0), x.clone())),
            Expr::un(UnOp::Neg, x)
        );
    }

    #[test]
    fn multiplicative_identities() {
        let x = Expr::Var(3);
        assert_eq!(
            simplify(&Expr::bin(BinOp::Mul, x.clone(), Expr::Num(1.0))),
            x
        );
        assert_eq!(
            simplify(&Expr::bin(BinOp::Mul, Expr::Num(1.0), x.clone())),
            x
        );
        assert_eq!(
            simplify(&Expr::bin(BinOp::Div, x.clone(), Expr::Num(1.0))),
            x
        );
    }

    #[test]
    fn mul_by_zero_is_not_folded() {
        // Unsound under protected semantics if the other side is non-finite;
        // we keep the tree as-is.
        let e = Expr::bin(BinOp::Mul, Expr::Var(0), Expr::Num(0.0));
        assert_eq!(simplify(&e).size(), 3);
    }

    #[test]
    fn double_negation() {
        let x = Expr::Var(1);
        let e = Expr::un(UnOp::Neg, Expr::un(UnOp::Neg, x.clone()));
        assert_eq!(simplify(&e), x);
    }

    #[test]
    fn idempotent_min_max() {
        let x = Expr::bin(BinOp::Add, Expr::Var(0), Expr::Var(1));
        assert_eq!(
            simplify(&Expr::bin(BinOp::Min, x.clone(), x.clone())),
            simplify(&x)
        );
        assert_eq!(
            simplify(&Expr::bin(BinOp::Max, x.clone(), x.clone())),
            simplify(&x)
        );
    }

    #[test]
    fn commutative_canonical_order() {
        let a = Expr::bin(BinOp::Add, Expr::Var(5), Expr::Var(2));
        let b = Expr::bin(BinOp::Add, Expr::Var(2), Expr::Var(5));
        assert_eq!(simplify(&a), simplify(&b));
        // Non-commutative operands must NOT be swapped.
        let s = Expr::bin(BinOp::Sub, Expr::Var(5), Expr::Var(2));
        assert_eq!(simplify(&s), s);
    }

    #[test]
    fn simplify_is_idempotent() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Num(1.0), Expr::Var(7)),
            Expr::bin(
                BinOp::Sub,
                Expr::Num(0.0),
                Expr::un(UnOp::Neg, Expr::Var(3)),
            ),
        );
        let once = simplify(&e);
        let twice = simplify(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn preserves_value_on_sample_inputs() {
        let e = Expr::bin(
            BinOp::Div,
            Expr::bin(BinOp::Add, Expr::Var(0), Expr::Num(0.0)),
            Expr::bin(
                BinOp::Mul,
                Expr::Num(1.0),
                Expr::bin(BinOp::Sub, Expr::State(0), Expr::Num(0.0)),
            ),
        );
        let s = simplify(&e);
        let ctx = EvalContext {
            vars: &[4.0, 5.0],
            state: &[2.0],
        };
        assert_eq!(e.eval(&ctx), s.eval(&ctx));
        assert!(s.size() < e.size());
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let exprs = [
            Expr::Num(1.0),
            p(0, 1.0),
            Expr::Var(0),
            Expr::State(0),
            Expr::un(UnOp::Log, Expr::Var(0)),
            Expr::bin(BinOp::Add, Expr::Var(0), Expr::Var(1)),
        ];
        for (i, a) in exprs.iter().enumerate() {
            assert_eq!(cmp_expr(a, a), Ordering::Equal);
            for b in &exprs[i + 1..] {
                assert_eq!(cmp_expr(a, b), cmp_expr(b, a).reverse());
            }
        }
    }
}
